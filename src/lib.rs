//! # psm — the Production System Machine, in Rust
//!
//! A full reproduction of Gupta, Forgy, Newell & Wedig, *"Parallel
//! Algorithms and Architectures for Rule-Based Systems"* (ISCA 1986).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`ops5`] — the OPS5 language: parser, working memory, conflict
//!   resolution, recognize–act interpreter.
//! * [`rete`] — the sequential Rete match network with instrumentation.
//! * [`baselines`] — TREAT, naive, and Oflazer-style matchers.
//! * [`core`] — the parallel Rete engine (node-activation granularity).
//! * [`fault`] — fault injection, checkpoint/WAL recovery, and the
//!   supervised match cycle with graceful degradation.
//! * [`sim`] — the trace-driven multiprocessor simulator and the PSM,
//!   DADO, NON-VON, and Oflazer machine models.
//! * [`workloads`] — synthetic production-system generators and classic
//!   OPS5 programs.
//! * [`obs`] — zero-dependency observability: metrics registry, span
//!   timers, event ring, Chrome-trace export, and the workspace PRNG.
//! * [`analyze`] — static lints (`psmlint`) and the §3.2/§4 cost model
//!   for OPS5 programs and compiled Rete networks.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-vs-
//! measured record of every table and figure.

pub use baselines;
pub use ops5;
pub use psm_analyze as analyze;
pub use psm_core as core;
pub use psm_fault as fault;
pub use psm_obs as obs;
pub use psm_sim as sim;
pub use psm_telemetry as telemetry;
pub use rete;
pub use workloads;
