//! Randomized conjugate-pair property: matchers stay equivalent on
//! programs where the *same class* feeds both negated and positive CEs.
//!
//! The hardest Rete consistency bug in this codebase (see
//! `shared_class_negative_and_join_stay_consistent` in `rete::runtime`)
//! involved one WME right-activating a negative node and the join
//! directly downstream of it in the same change. That regression test
//! pins one hand-built instance; this property test generates many
//! random programs of the same conjugate shape — every production has a
//! negated CE whose class also appears in a positive CE, joined on a
//! shared variable — and checks Rete, TREAT, and the naive matcher
//! produce identical conflict-set deltas on random add/remove streams.

use psm::baselines::{NaiveMatcher, TreatMatcher};
use psm::obs::Rng64;
use psm::ops5::{parse_program, Change, Matcher, Program, Value, Wme, WorkingMemory};
use psm::rete::{MatchStats, ReteMatcher};
use psm::workloads::{GeneratedWorkload, Preset, WorkloadDriver};

const CLASSES: [&str; 2] = ["s", "t"];
const VALUE_DOMAIN: i64 = 3;

/// Generates a program of conjugate-shaped productions: each has a
/// negated CE over a class that some positive CE also tests, all joined
/// on the production's single variable so one WME can flip a negation
/// and a join in the same change.
fn gen_program(rng: &mut Rng64, productions: usize) -> String {
    let mut src = String::new();
    for i in 0..productions {
        let cls = *rng.choose(&CLASSES);
        src.push_str(&format!("(p gen-{i} ({cls} ^a0 <v>)"));
        // The conjugate pair: a negation on the same class (different
        // attribute), then a positive CE on that class again.
        src.push_str(&format!(" - ({cls} ^a1 <v>)"));
        src.push_str(&format!(" ({cls} ^a2 <v>)"));
        // Optional extra CE to vary chain depth and cross-class joins.
        if rng.gen_bool(0.5) {
            let other = *rng.choose(&CLASSES);
            if rng.gen_bool(0.3) {
                src.push_str(&format!(" - ({other} ^a0 <v>)"));
            } else {
                src.push_str(&format!(" ({other} ^a1 <v>)"));
            }
        }
        src.push_str(" --> (halt))\n");
    }
    src
}

/// A random WME over the shared vocabulary: one class, a random subset
/// of the three attributes, values from a tiny domain so negations
/// block and unblock constantly.
fn gen_wme(rng: &mut Rng64, program: &mut Program) -> Wme {
    let cls_name = *rng.choose(&CLASSES);
    let cls = program.symbols.intern(cls_name);
    let mut attrs = Vec::new();
    for attr in ["a0", "a1", "a2"] {
        if rng.gen_bool(0.6) {
            let a = program.symbols.intern(attr);
            attrs.push((a, Value::Int(rng.gen_range(0..VALUE_DOMAIN))));
        }
    }
    Wme::new(cls, attrs)
}

/// Strips the scan-count fields that legitimately differ between the
/// Linear and Hashed memory strategies: a bucket probe scans (and
/// join-tests) only the candidates whose key matches, while a linear
/// scan visits the whole opposite memory. Every other counter — change
/// and activation flow, memory ops, tokens created, residency peaks,
/// conflict changes, phantom removes — must be byte-identical across
/// strategies.
fn normalized(mut stats: MatchStats) -> MatchStats {
    stats.join_tests = 0;
    stats.pairs_scanned = 0;
    stats
}

/// Drives Rete (hashed default), Rete (linear ablation), TREAT, and
/// naive through the same random change stream, asserting identical
/// canonicalized deltas on every batch. Returns the Rete matcher after
/// the working memory has been fully drained.
fn run_property(seed: u64, batches: usize) {
    let mut rng = Rng64::new(seed);
    let src = gen_program(&mut rng, 6);
    let mut program = parse_program(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));

    let mut rete = ReteMatcher::compile(&program).expect("rete compiles");
    let mut linear = ReteMatcher::compile_linear(&program).expect("linear rete compiles");
    let mut treat = TreatMatcher::compile(&program).expect("treat compiles");
    let mut naive = NaiveMatcher::new(&program);

    let mut wm = WorkingMemory::new();
    let mut live: Vec<psm::ops5::WmeId> = Vec::new();

    let check = |wm: &WorkingMemory,
                 batch: &[Change],
                 rete: &mut ReteMatcher,
                 linear: &mut ReteMatcher,
                 treat: &mut TreatMatcher,
                 naive: &mut NaiveMatcher,
                 step: usize| {
        let mut dr = rete.process(wm, batch);
        let mut dl = linear.process(wm, batch);
        let mut dt = treat.process(wm, batch);
        let mut dn = naive.process(wm, batch);
        dr.canonicalize();
        dl.canonicalize();
        dt.canonicalize();
        dn.canonicalize();
        assert_eq!(dr, dl, "seed {seed} batch {step}: hashed vs linear\n{src}");
        assert_eq!(dr, dt, "seed {seed} batch {step}: rete vs treat\n{src}");
        assert_eq!(dr, dn, "seed {seed} batch {step}: rete vs naive\n{src}");
        // The two strategies walk identical activation paths — only the
        // scan counts (stripped by `normalized`) may differ, and hashed
        // may never scan *more* than linear.
        assert_eq!(
            normalized(rete.stats()),
            normalized(linear.stats()),
            "seed {seed} batch {step}: strategy-sensitive MatchStats\n{src}"
        );
        assert!(
            rete.stats().pairs_scanned <= linear.stats().pairs_scanned,
            "seed {seed} batch {step}: hashed scanned more than linear"
        );
        assert_eq!(
            rete.resident_tokens(),
            linear.resident_tokens(),
            "seed {seed} batch {step}: resident-token divergence"
        );
    };

    for step in 0..batches {
        let mut batch = Vec::new();
        // Snapshot so a WME added in this batch is not also removed by it.
        let removable = live.clone();
        let mut removed_this_batch = Vec::new();
        for _ in 0..rng.gen_range(1..=3usize) {
            let cap_reached = live.len() >= 40;
            if !removable.is_empty() && (cap_reached || rng.gen_bool(0.4)) {
                let id = *rng.choose(&removable);
                if removed_this_batch.contains(&id) {
                    continue;
                }
                removed_this_batch.push(id);
                live.retain(|&l| l != id);
                batch.push(Change::Remove(id));
            } else {
                let (id, _) = wm.add(gen_wme(&mut rng, &mut program));
                live.push(id);
                batch.push(Change::Add(id));
            }
        }
        check(
            &wm,
            &batch,
            &mut rete,
            &mut linear,
            &mut treat,
            &mut naive,
            step,
        );
        for &c in &batch {
            if let Change::Remove(id) = c {
                wm.remove(id);
            }
        }
    }

    // Drain: retracting everything must empty all matcher state the
    // same way, leaving Rete with zero resident tokens and — for the
    // hashed default — zero resident index entries and buckets (the
    // empty-bucket pruning invariant).
    while !live.is_empty() {
        let n = live.len().min(3);
        let batch: Vec<Change> = live.drain(..n).map(Change::Remove).collect();
        check(
            &wm,
            &batch,
            &mut rete,
            &mut linear,
            &mut treat,
            &mut naive,
            usize::MAX,
        );
        for &c in &batch {
            if let Change::Remove(id) = c {
                wm.remove(id);
            }
        }
    }
    assert_eq!(rete.resident_tokens(), 0, "seed {seed}: tokens leaked");
    assert_eq!(
        rete.resident_index_entries(),
        0,
        "seed {seed}: hash-index entries leaked"
    );
    assert_eq!(
        rete.resident_index_buckets(),
        0,
        "seed {seed}: empty hash-index buckets not pruned"
    );
    assert_eq!(
        rete.stats().phantom_removes,
        0,
        "seed {seed}: phantom removes on a healthy run"
    );
}

#[test]
fn conjugate_pair_programs_keep_matchers_equivalent() {
    for seed in 0..8 {
        run_property(seed, 60);
    }
}

#[test]
fn conjugate_pair_long_run_single_seed() {
    run_property(101, 250);
}

/// The deferred negative-node ordering case under both memory
/// strategies: one WME that blocks a negative CE *and* feeds the join
/// directly downstream of it in the same change. The runtime defers the
/// negative node's right activation so the block lands before the join
/// sees the candidate; hashed bucket probing must preserve exactly that
/// ordering (and its stats), not just the final conflict set.
#[test]
fn deferred_negative_ordering_matches_across_strategies() {
    let src = "(p r (a ^x <v>) - (b ^block <v>) (b ^val <v>) --> (remove 1))";
    let program = parse_program(src).expect("parses");
    let mut hashed = ReteMatcher::compile(&program).expect("hashed compiles");
    let mut linear = ReteMatcher::compile_linear(&program).expect("linear compiles");
    let mut wm = WorkingMemory::new();
    let mut syms = program.symbols.clone();
    let step = |wm: &mut WorkingMemory,
                hashed: &mut ReteMatcher,
                linear: &mut ReteMatcher,
                batch: Vec<Change>| {
        let mut dh = hashed.process(wm, &batch);
        let mut dl = linear.process(wm, &batch);
        for c in &batch {
            if let Change::Remove(id) = c {
                wm.remove(*id);
            }
        }
        dh.canonicalize();
        dl.canonicalize();
        assert_eq!(dh, dl, "strategy divergence");
        assert_eq!(normalized(hashed.stats()), normalized(linear.stats()));
        (dh.added.len(), dh.removed.len())
    };
    let mut add = |wm: &mut WorkingMemory, lit: &str| {
        let (id, _) = wm.add(psm::ops5::parse_wme(lit, &mut syms).expect("wme parses"));
        id
    };

    let ia = add(&mut wm, "(a ^x 1)");
    assert_eq!(
        step(&mut wm, &mut hashed, &mut linear, vec![Change::Add(ia)]),
        (0, 0)
    );
    // The conjugate WME: blocks the negation and satisfies the positive
    // CE in one change — net nothing, in both directions.
    let w1 = add(&mut wm, "(b ^block 1 ^val 1)");
    assert_eq!(
        step(&mut wm, &mut hashed, &mut linear, vec![Change::Add(w1)]),
        (0, 0)
    );
    assert_eq!(
        step(&mut wm, &mut hashed, &mut linear, vec![Change::Remove(w1)]),
        (0, 0)
    );
    // Pure candidate fires; pure blocker retracts; unblocking re-fires.
    let c = add(&mut wm, "(b ^val 1)");
    assert_eq!(
        step(&mut wm, &mut hashed, &mut linear, vec![Change::Add(c)]),
        (1, 0)
    );
    let bl = add(&mut wm, "(b ^block 1)");
    assert_eq!(
        step(&mut wm, &mut hashed, &mut linear, vec![Change::Add(bl)]),
        (0, 1)
    );
    assert_eq!(
        step(&mut wm, &mut hashed, &mut linear, vec![Change::Remove(bl)]),
        (1, 0)
    );
    // Drain and check the purge invariants on both.
    assert_eq!(
        step(
            &mut wm,
            &mut hashed,
            &mut linear,
            vec![Change::Remove(ia), Change::Remove(c)]
        ),
        (0, 1)
    );
    assert_eq!(hashed.resident_tokens(), 0);
    assert_eq!(linear.resident_tokens(), 0);
    assert_eq!(hashed.resident_index_entries(), 0);
    assert_eq!(hashed.resident_index_buckets(), 0);
}

/// All six presets, driven through identical synthetic change streams
/// under both strategies: the per-cycle firing sequences (canonicalized
/// conflict-set deltas, in order), normalized MatchStats, and resident
/// token counts must be identical, and the drained hashed matcher must
/// return its index to the empty baseline.
#[test]
fn presets_fire_identically_under_both_strategies() {
    for preset in Preset::all() {
        let workload = GeneratedWorkload::generate(preset.spec_small()).expect("generates");
        let mut hashed = ReteMatcher::compile(&workload.program).expect("hashed compiles");
        let mut linear = ReteMatcher::compile_linear(&workload.program).expect("linear compiles");
        // Two drivers with the same seed replay the same stream into
        // two independent working memories with identical WME ids.
        let mut dh = WorkloadDriver::new(workload.clone(), 0xD1FF);
        let mut dl = WorkloadDriver::new(workload, 0xD1FF);
        dh.init(&mut hashed);
        dl.init(&mut linear);
        for cycle in 0..40u32 {
            let bh = dh.next_batch();
            let bl = dl.next_batch();
            assert_eq!(bh, bl, "{}: driver streams diverged", preset.name());
            let mut delta_h = hashed.process(dh.working_memory(), &bh);
            let mut delta_l = linear.process(dl.working_memory(), &bl);
            dh.commit_batch(&bh);
            dl.commit_batch(&bl);
            delta_h.canonicalize();
            delta_l.canonicalize();
            assert_eq!(
                delta_h,
                delta_l,
                "{} cycle {cycle}: firing sequence divergence",
                preset.name()
            );
            assert_eq!(
                hashed.resident_tokens(),
                linear.resident_tokens(),
                "{} cycle {cycle}: token-count divergence",
                preset.name()
            );
        }
        assert_eq!(
            normalized(hashed.stats()),
            normalized(linear.stats()),
            "{}: strategy-sensitive MatchStats",
            preset.name()
        );
        assert!(
            hashed.stats().pairs_scanned <= linear.stats().pairs_scanned,
            "{}: hashed scanned more than linear",
            preset.name()
        );
        // Full churn: retract every live WME and require the index to
        // return to its empty baseline.
        let drain: Vec<Change> = dh
            .working_memory()
            .iter()
            .map(|(id, _, _)| Change::Remove(id))
            .collect();
        let mut delta_h = hashed.process(dh.working_memory(), &drain);
        let mut delta_l = linear.process(dl.working_memory(), &drain);
        delta_h.canonicalize();
        delta_l.canonicalize();
        assert_eq!(delta_h, delta_l, "{}: drain divergence", preset.name());
        assert_eq!(hashed.resident_tokens(), 0, "{}", preset.name());
        assert_eq!(hashed.resident_index_entries(), 0, "{}", preset.name());
        assert_eq!(hashed.resident_index_buckets(), 0, "{}", preset.name());
        assert_eq!(hashed.stats().phantom_removes, 0, "{}", preset.name());
    }
}
