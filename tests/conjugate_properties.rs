//! Randomized conjugate-pair property: matchers stay equivalent on
//! programs where the *same class* feeds both negated and positive CEs.
//!
//! The hardest Rete consistency bug in this codebase (see
//! `shared_class_negative_and_join_stay_consistent` in `rete::runtime`)
//! involved one WME right-activating a negative node and the join
//! directly downstream of it in the same change. That regression test
//! pins one hand-built instance; this property test generates many
//! random programs of the same conjugate shape — every production has a
//! negated CE whose class also appears in a positive CE, joined on a
//! shared variable — and checks Rete, TREAT, and the naive matcher
//! produce identical conflict-set deltas on random add/remove streams.

use psm::baselines::{NaiveMatcher, TreatMatcher};
use psm::obs::Rng64;
use psm::ops5::{parse_program, Change, Matcher, Program, Value, Wme, WorkingMemory};
use psm::rete::ReteMatcher;

const CLASSES: [&str; 2] = ["s", "t"];
const VALUE_DOMAIN: i64 = 3;

/// Generates a program of conjugate-shaped productions: each has a
/// negated CE over a class that some positive CE also tests, all joined
/// on the production's single variable so one WME can flip a negation
/// and a join in the same change.
fn gen_program(rng: &mut Rng64, productions: usize) -> String {
    let mut src = String::new();
    for i in 0..productions {
        let cls = *rng.choose(&CLASSES);
        src.push_str(&format!("(p gen-{i} ({cls} ^a0 <v>)"));
        // The conjugate pair: a negation on the same class (different
        // attribute), then a positive CE on that class again.
        src.push_str(&format!(" - ({cls} ^a1 <v>)"));
        src.push_str(&format!(" ({cls} ^a2 <v>)"));
        // Optional extra CE to vary chain depth and cross-class joins.
        if rng.gen_bool(0.5) {
            let other = *rng.choose(&CLASSES);
            if rng.gen_bool(0.3) {
                src.push_str(&format!(" - ({other} ^a0 <v>)"));
            } else {
                src.push_str(&format!(" ({other} ^a1 <v>)"));
            }
        }
        src.push_str(" --> (halt))\n");
    }
    src
}

/// A random WME over the shared vocabulary: one class, a random subset
/// of the three attributes, values from a tiny domain so negations
/// block and unblock constantly.
fn gen_wme(rng: &mut Rng64, program: &mut Program) -> Wme {
    let cls_name = *rng.choose(&CLASSES);
    let cls = program.symbols.intern(cls_name);
    let mut attrs = Vec::new();
    for attr in ["a0", "a1", "a2"] {
        if rng.gen_bool(0.6) {
            let a = program.symbols.intern(attr);
            attrs.push((a, Value::Int(rng.gen_range(0..VALUE_DOMAIN))));
        }
    }
    Wme::new(cls, attrs)
}

/// Drives Rete, TREAT, and naive through the same random change stream,
/// asserting identical canonicalized deltas on every batch. Returns the
/// Rete matcher after the working memory has been fully drained.
fn run_property(seed: u64, batches: usize) {
    let mut rng = Rng64::new(seed);
    let src = gen_program(&mut rng, 6);
    let mut program = parse_program(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));

    let mut rete = ReteMatcher::compile(&program).expect("rete compiles");
    let mut treat = TreatMatcher::compile(&program).expect("treat compiles");
    let mut naive = NaiveMatcher::new(&program);

    let mut wm = WorkingMemory::new();
    let mut live: Vec<psm::ops5::WmeId> = Vec::new();

    let check = |wm: &WorkingMemory,
                 batch: &[Change],
                 rete: &mut ReteMatcher,
                 treat: &mut TreatMatcher,
                 naive: &mut NaiveMatcher,
                 step: usize| {
        let mut dr = rete.process(wm, batch);
        let mut dt = treat.process(wm, batch);
        let mut dn = naive.process(wm, batch);
        dr.canonicalize();
        dt.canonicalize();
        dn.canonicalize();
        assert_eq!(dr, dt, "seed {seed} batch {step}: rete vs treat\n{src}");
        assert_eq!(dr, dn, "seed {seed} batch {step}: rete vs naive\n{src}");
    };

    for step in 0..batches {
        let mut batch = Vec::new();
        // Snapshot so a WME added in this batch is not also removed by it.
        let removable = live.clone();
        let mut removed_this_batch = Vec::new();
        for _ in 0..rng.gen_range(1..=3usize) {
            let cap_reached = live.len() >= 40;
            if !removable.is_empty() && (cap_reached || rng.gen_bool(0.4)) {
                let id = *rng.choose(&removable);
                if removed_this_batch.contains(&id) {
                    continue;
                }
                removed_this_batch.push(id);
                live.retain(|&l| l != id);
                batch.push(Change::Remove(id));
            } else {
                let (id, _) = wm.add(gen_wme(&mut rng, &mut program));
                live.push(id);
                batch.push(Change::Add(id));
            }
        }
        check(&wm, &batch, &mut rete, &mut treat, &mut naive, step);
        for &c in &batch {
            if let Change::Remove(id) = c {
                wm.remove(id);
            }
        }
    }

    // Drain: retracting everything must empty all matcher state the
    // same way, leaving Rete with zero resident tokens.
    while !live.is_empty() {
        let n = live.len().min(3);
        let batch: Vec<Change> = live.drain(..n).map(Change::Remove).collect();
        check(&wm, &batch, &mut rete, &mut treat, &mut naive, usize::MAX);
        for &c in &batch {
            if let Change::Remove(id) = c {
                wm.remove(id);
            }
        }
    }
    assert_eq!(rete.resident_tokens(), 0, "seed {seed}: tokens leaked");
}

#[test]
fn conjugate_pair_programs_keep_matchers_equivalent() {
    for seed in 0..8 {
        run_property(seed, 60);
    }
}

#[test]
fn conjugate_pair_long_run_single_seed() {
    run_property(101, 250);
}
