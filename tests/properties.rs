//! Property-style tests over randomized working-memory change
//! sequences: delta exactness, state purging, and batch/segment
//! insensitivity of the match algorithms. Each property runs over many
//! deterministically seeded cases.

use std::collections::HashSet;

use psm::baselines::NaiveMatcher;
use psm::core::{ParallelOptions, ParallelReteMatcher};
use psm::obs::Rng64;
use psm::ops5::{
    parse_program, Change, Instantiation, Matcher, Program, SymbolTable, Value, Wme, WmeId,
    WorkingMemory,
};
use psm::rete::ReteMatcher;

const PROGRAM: &str = r#"
(p pair (a ^x <v>) (b ^x <v>) --> (remove 1))
(p triple (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))
(p guarded (goal ^x <v>) - (veto ^x <v>) --> (remove 1))
(p pred (a ^x <v>) (c ^x > <v>) --> (remove 1))
(p self (b ^x <v>) (b ^x <v>) --> (remove 1))
"#;

/// An abstract operation in a generated scenario.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Add a WME with class index and value.
    Add(u8, u8),
    /// Remove the k-th (mod live count) live WME.
    Remove(u8),
}

/// Weighted 3:2 add/remove, as the proptest strategy had it.
fn random_ops(rng: &mut Rng64, max_len: usize) -> Vec<Op> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| {
            if rng.gen_range(0..5u32) < 3 {
                Op::Add(rng.gen_range(0..5u8), rng.gen_range(0..3u8))
            } else {
                Op::Remove(rng.gen_range(0..255u8))
            }
        })
        .collect()
}

fn program() -> Program {
    parse_program(PROGRAM).expect("fixture parses")
}

fn wme_for(syms: &mut SymbolTable, class: u8, value: u8) -> Wme {
    let class_name = ["a", "b", "c", "goal", "veto"][class as usize];
    let class = syms.intern(class_name);
    let x = syms.intern("x");
    Wme::new(class, vec![(x, Value::Int(value as i64))])
}

/// Applies ops through a matcher, tracking the conflict-set image by
/// applying its deltas; returns the final image.
fn run_ops<M: Matcher>(ops: &[Op], matcher: &mut M) -> HashSet<Instantiation> {
    let program = program();
    let mut syms = program.symbols.clone();
    let mut wm = WorkingMemory::new();
    let mut live: Vec<WmeId> = Vec::new();
    let mut image: HashSet<Instantiation> = HashSet::new();
    for &op in ops {
        let delta = match op {
            Op::Add(c, v) => {
                let (id, _) = wm.add(wme_for(&mut syms, c, v));
                live.push(id);
                matcher.add_wme(&wm, id)
            }
            Op::Remove(k) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(k as usize % live.len());
                let d = matcher.remove_wme(&wm, id);
                wm.remove(id);
                d
            }
        };
        for inst in &delta.removed {
            assert!(
                image.remove(inst),
                "matcher removed an instantiation that was never added: {inst:?}"
            );
        }
        for inst in delta.added {
            assert!(
                image.insert(inst),
                "matcher added an already-present instantiation"
            );
        }
    }
    image
}

/// Deltas are exact: removals always name present instantiations,
/// additions are always new, and the final image equals the naive
/// recomputation.
#[test]
fn rete_deltas_are_exact_and_match_naive() {
    let mut rng = Rng64::new(0xACE1);
    for case in 0..48 {
        let ops = random_ops(&mut rng, 60);
        let program = program();
        let mut rete = ReteMatcher::compile(&program).unwrap();
        let mut naive = NaiveMatcher::new(&program);
        let rete_image = run_ops(&ops, &mut rete);
        let naive_image = run_ops(&ops, &mut naive);
        assert_eq!(rete_image, naive_image, "case {case}");
    }
}

/// The parallel engine agrees with the sequential one for any ops
/// sequence (4 worker threads).
#[test]
fn parallel_agrees_with_sequential() {
    let mut rng = Rng64::new(0xACE2);
    for case in 0..24 {
        let ops = random_ops(&mut rng, 50);
        let program = program();
        let mut seq = ReteMatcher::compile(&program).unwrap();
        let mut par = ParallelReteMatcher::compile(
            &program,
            ParallelOptions {
                threads: 4,
                share: true,
            },
        )
        .unwrap();
        let a = run_ops(&ops, &mut seq);
        let b = run_ops(&ops, &mut par);
        assert_eq!(a, b, "case {case}");
    }
}

/// Removing everything purges all beta state: the network holds no
/// resident tokens once the working memory is empty.
#[test]
fn all_state_purged_when_wm_emptied() {
    let mut rng = Rng64::new(0xACE3);
    for case in 0..48 {
        let n = rng.gen_range(1..40usize);
        let adds: Vec<(u8, u8)> = (0..n)
            .map(|_| (rng.gen_range(0..5u8), rng.gen_range(0..3u8)))
            .collect();
        let program = program();
        let mut rete = ReteMatcher::compile(&program).unwrap();
        let mut syms = program.symbols.clone();
        let mut wm = WorkingMemory::new();
        let mut live = Vec::new();
        for (c, v) in adds {
            let (id, _) = wm.add(wme_for(&mut syms, c, v));
            live.push(id);
            rete.add_wme(&wm, id);
        }
        for id in live {
            rete.remove_wme(&wm, id);
            wm.remove(id);
        }
        // No production in the fixture has a *leading* negated CE, so no
        // top-token seeds remain — state must be completely purged.
        assert!(wm.is_empty());
        let leftover = rete.resident_tokens();
        assert!(
            leftover == 0,
            "case {case}: resident tokens left: {leftover}"
        );
    }
}

/// Conflict-resolution domination is a strict total order for both
/// strategies: antisymmetric, transitive, and total on distinct
/// instantiations.
#[test]
fn conflict_resolution_is_a_total_order() {
    use psm::ops5::{compare_instantiations, ProductionId, Strategy};
    use std::cmp::Ordering;

    let mut rng = Rng64::new(0xACE4);
    for _case in 0..20 {
        let program = program();
        let mut syms = program.symbols.clone();
        let mut wm = WorkingMemory::new();
        let n_wmes = rng.gen_range(8..12usize);
        let ids: Vec<WmeId> = (0..n_wmes)
            .map(|i| wm.add(wme_for(&mut syms, (i % 5) as u8, (i % 3) as u8)).0)
            .collect();
        let n_insts = rng.gen_range(3..8usize);
        let insts: Vec<Instantiation> = (0..n_insts)
            .map(|_| {
                let p = rng.gen_range(0..2u32);
                let n = rng.gen_range(1..4usize);
                Instantiation::new(
                    ProductionId(p),
                    (0..n).map(|_| ids[rng.gen_range(0..ids.len())]).collect(),
                )
            })
            .collect();
        for strategy in [Strategy::Lex, Strategy::Mea] {
            for a in &insts {
                assert_eq!(
                    compare_instantiations(a, a, &wm, &program, strategy),
                    Ordering::Equal
                );
                for b in &insts {
                    let ab = compare_instantiations(a, b, &wm, &program, strategy);
                    let ba = compare_instantiations(b, a, &wm, &program, strategy);
                    assert_eq!(ab, ba.reverse(), "antisymmetry");
                    if a != b {
                        assert_ne!(ab, Ordering::Equal, "totality on distinct");
                    }
                    for c in &insts {
                        let bc = compare_instantiations(b, c, &wm, &program, strategy);
                        let ac = compare_instantiations(a, c, &wm, &program, strategy);
                        if ab == Ordering::Greater && bc == Ordering::Greater {
                            assert_eq!(ac, Ordering::Greater, "transitivity");
                        }
                    }
                }
            }
        }
    }
}

/// Pretty-printing any generated program and reparsing it reaches a
/// stable printer normal form with identical structure.
#[test]
fn generated_programs_round_trip_through_the_printer() {
    use psm::workloads::{GeneratedWorkload, WorkloadSpec};
    let mut rng = Rng64::new(0xACE5);
    for _ in 0..30 {
        let seed = rng.gen_range(0..500u64);
        let spec = WorkloadSpec {
            productions: 8,
            seed,
            ..WorkloadSpec::default()
        };
        let w = GeneratedWorkload::generate(spec).unwrap();
        for p in &w.program.productions {
            let printed = format!("{}", p.display(&w.program.symbols));
            let reparsed = parse_program(&printed)
                .unwrap_or_else(|e| panic!("reparse failed for:\n{printed}\n{e}"));
            let reprinted = format!("{}", reparsed.productions[0].display(&reparsed.symbols));
            assert_eq!(&printed, &reprinted);
            assert_eq!(p.ces.len(), reparsed.productions[0].ces.len());
            assert_eq!(&p.variables, &reparsed.productions[0].variables);
            assert_eq!(p.specificity, reparsed.productions[0].specificity);
        }
    }
}

/// Batch processing equals change-by-change processing (net deltas).
#[test]
fn batching_is_transparent() {
    let mut rng = Rng64::new(0xACE6);
    for case in 0..48 {
        let n = rng.gen_range(2..12usize);
        let values: Vec<(u8, u8)> = (0..n)
            .map(|_| (rng.gen_range(0..5u8), rng.gen_range(0..3u8)))
            .collect();
        let program = program();
        let mut one = ReteMatcher::compile(&program).unwrap();
        let mut batched = ReteMatcher::compile(&program).unwrap();
        let mut syms = program.symbols.clone();
        let mut wm = WorkingMemory::new();
        let mut ids = Vec::new();
        for &(c, v) in &values {
            let (id, _) = wm.add(wme_for(&mut syms, c, v));
            ids.push(id);
        }
        let changes: Vec<Change> = ids.iter().map(|&id| Change::Add(id)).collect();
        let mut d_batch = batched.process(&wm, &changes);
        let mut d_single = psm::ops5::MatchDelta::new();
        for &id in &ids {
            d_single.merge(one.add_wme(&wm, id));
        }
        d_batch.canonicalize();
        d_single.canonicalize();
        assert_eq!(d_batch, d_single, "case {case}");
    }
}
