//! Property-based tests (proptest) over randomized working-memory
//! change sequences: delta exactness, state purging, and batch/segment
//! insensitivity of the match algorithms.

use std::collections::HashSet;

use proptest::prelude::*;
use psm::baselines::NaiveMatcher;
use psm::core::{ParallelOptions, ParallelReteMatcher};
use psm::ops5::{
    parse_program, Change, Instantiation, Matcher, Program, SymbolTable, Value, Wme, WmeId,
    WorkingMemory,
};
use psm::rete::ReteMatcher;

const PROGRAM: &str = r#"
(p pair (a ^x <v>) (b ^x <v>) --> (remove 1))
(p triple (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))
(p guarded (goal ^x <v>) - (veto ^x <v>) --> (remove 1))
(p pred (a ^x <v>) (c ^x > <v>) --> (remove 1))
(p self (b ^x <v>) (b ^x <v>) --> (remove 1))
"#;

/// An abstract operation in a generated scenario.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Add a WME with class index and value.
    Add(u8, u8),
    /// Remove the k-th (mod live count) live WME.
    Remove(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..5, 0u8..3).prop_map(|(c, v)| Op::Add(c, v)),
        2 => (0u8..255).prop_map(Op::Remove),
    ]
}

fn program() -> Program {
    parse_program(PROGRAM).expect("fixture parses")
}

fn wme_for(syms: &mut SymbolTable, class: u8, value: u8) -> Wme {
    let class_name = ["a", "b", "c", "goal", "veto"][class as usize];
    let class = syms.intern(class_name);
    let x = syms.intern("x");
    Wme::new(class, vec![(x, Value::Int(value as i64))])
}

/// Applies ops through a matcher, tracking the conflict-set image by
/// applying its deltas; returns the final image.
fn run_ops<M: Matcher>(ops: &[Op], matcher: &mut M) -> HashSet<Instantiation> {
    let program = program();
    let mut syms = program.symbols.clone();
    let mut wm = WorkingMemory::new();
    let mut live: Vec<WmeId> = Vec::new();
    let mut image: HashSet<Instantiation> = HashSet::new();
    for &op in ops {
        let delta = match op {
            Op::Add(c, v) => {
                let (id, _) = wm.add(wme_for(&mut syms, c, v));
                live.push(id);
                matcher.add_wme(&wm, id)
            }
            Op::Remove(k) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(k as usize % live.len());
                let d = matcher.remove_wme(&wm, id);
                wm.remove(id);
                d
            }
        };
        for inst in &delta.removed {
            assert!(
                image.remove(inst),
                "matcher removed an instantiation that was never added: {inst:?}"
            );
        }
        for inst in delta.added {
            assert!(
                image.insert(inst),
                "matcher added an already-present instantiation"
            );
        }
    }
    image
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Deltas are exact: removals always name present instantiations,
    /// additions are always new, and the final image equals the naive
    /// recomputation.
    #[test]
    fn rete_deltas_are_exact_and_match_naive(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let program = program();
        let mut rete = ReteMatcher::compile(&program).unwrap();
        let mut naive = NaiveMatcher::new(&program);
        let rete_image = run_ops(&ops, &mut rete);
        let naive_image = run_ops(&ops, &mut naive);
        prop_assert_eq!(rete_image, naive_image);
    }

    /// The parallel engine agrees with the sequential one for any ops
    /// sequence (4 worker threads).
    #[test]
    fn parallel_agrees_with_sequential(ops in prop::collection::vec(op_strategy(), 1..50)) {
        let program = program();
        let mut seq = ReteMatcher::compile(&program).unwrap();
        let mut par = ParallelReteMatcher::compile(
            &program,
            ParallelOptions { threads: 4, share: true },
        ).unwrap();
        let a = run_ops(&ops, &mut seq);
        let b = run_ops(&ops, &mut par);
        prop_assert_eq!(a, b);
    }

    /// Removing everything purges all beta state: the network holds no
    /// resident tokens once the working memory is empty.
    #[test]
    fn all_state_purged_when_wm_emptied(adds in prop::collection::vec((0u8..5, 0u8..3), 1..40)) {
        let program = program();
        let mut rete = ReteMatcher::compile(&program).unwrap();
        let mut syms = program.symbols.clone();
        let mut wm = WorkingMemory::new();
        let mut live = Vec::new();
        for (c, v) in adds {
            let (id, _) = wm.add(wme_for(&mut syms, c, v));
            live.push(id);
            rete.add_wme(&wm, id);
        }
        for id in live {
            rete.remove_wme(&wm, id);
            wm.remove(id);
        }
        // No production in the fixture has a *leading* negated CE, so no
        // top-token seeds remain — state must be completely purged.
        prop_assert!(wm.is_empty());
        let leftover = rete.resident_tokens();
        prop_assert!(leftover == 0, "resident tokens left: {leftover}");
    }

    /// Conflict-resolution domination is a strict total order for both
    /// strategies: antisymmetric, transitive, and total on distinct
    /// instantiations.
    #[test]
    fn conflict_resolution_is_a_total_order(
        tuples in prop::collection::vec(
            (0u32..2, prop::collection::vec(0usize..8, 1..4)),
            3..8,
        ),
        n_wmes in 8usize..12,
    ) {
        use psm::ops5::{compare_instantiations, ProductionId, Strategy};
        use std::cmp::Ordering;

        let program = program();
        let mut syms = program.symbols.clone();
        let mut wm = WorkingMemory::new();
        let ids: Vec<WmeId> = (0..n_wmes)
            .map(|i| wm.add(wme_for(&mut syms, (i % 5) as u8, (i % 3) as u8)).0)
            .collect();
        let insts: Vec<Instantiation> = tuples
            .into_iter()
            .map(|(p, wmes)| {
                Instantiation::new(
                    ProductionId(p),
                    wmes.into_iter().map(|k| ids[k % ids.len()]).collect(),
                )
            })
            .collect();
        for strategy in [Strategy::Lex, Strategy::Mea] {
            for a in &insts {
                prop_assert_eq!(
                    compare_instantiations(a, a, &wm, &program, strategy),
                    Ordering::Equal
                );
                for b in &insts {
                    let ab = compare_instantiations(a, b, &wm, &program, strategy);
                    let ba = compare_instantiations(b, a, &wm, &program, strategy);
                    prop_assert_eq!(ab, ba.reverse(), "antisymmetry");
                    if a != b {
                        prop_assert_ne!(ab, Ordering::Equal, "totality on distinct");
                    }
                    for c in &insts {
                        let bc = compare_instantiations(b, c, &wm, &program, strategy);
                        let ac = compare_instantiations(a, c, &wm, &program, strategy);
                        if ab == Ordering::Greater && bc == Ordering::Greater {
                            prop_assert_eq!(ac, Ordering::Greater, "transitivity");
                        }
                    }
                }
            }
        }
    }

    /// Pretty-printing any generated program and reparsing it reaches a
    /// stable printer normal form with identical structure.
    #[test]
    fn generated_programs_round_trip_through_the_printer(seed in 0u64..500) {
        use psm::workloads::{GeneratedWorkload, WorkloadSpec};
        let spec = WorkloadSpec {
            productions: 8,
            seed,
            ..WorkloadSpec::default()
        };
        let w = GeneratedWorkload::generate(spec).unwrap();
        for p in &w.program.productions {
            let printed = format!("{}", p.display(&w.program.symbols));
            let reparsed = parse_program(&printed)
                .unwrap_or_else(|e| panic!("reparse failed for:\n{printed}\n{e}"));
            let reprinted =
                format!("{}", reparsed.productions[0].display(&reparsed.symbols));
            prop_assert_eq!(&printed, &reprinted);
            prop_assert_eq!(p.ces.len(), reparsed.productions[0].ces.len());
            prop_assert_eq!(&p.variables, &reparsed.productions[0].variables);
            prop_assert_eq!(p.specificity, reparsed.productions[0].specificity);
        }
    }

    /// Batch processing equals change-by-change processing (net deltas).
    #[test]
    fn batching_is_transparent(values in prop::collection::vec((0u8..5, 0u8..3), 2..12)) {
        let program = program();
        let mut one = ReteMatcher::compile(&program).unwrap();
        let mut batched = ReteMatcher::compile(&program).unwrap();
        let mut syms = program.symbols.clone();
        let mut wm = WorkingMemory::new();
        let mut ids = Vec::new();
        for &(c, v) in &values {
            let (id, _) = wm.add(wme_for(&mut syms, c, v));
            ids.push(id);
        }
        let changes: Vec<Change> = ids.iter().map(|&id| Change::Add(id)).collect();
        let mut d_batch = batched.process(&wm, &changes);
        let mut d_single = psm::ops5::MatchDelta::new();
        for &id in &ids {
            d_single.merge(one.add_wme(&wm, id));
        }
        d_batch.canonicalize();
        d_single.canonicalize();
        prop_assert_eq!(d_batch, d_single);
    }
}
