//! Chaos-verified failover: on every workload preset, killing the
//! primary mid-run and promoting the warm standby produces a state
//! byte-identical to a never-faulted sequential run of the same change
//! stream.
//!
//! Three contracts layered on `chaos_recovery`'s:
//!
//! 1. **Failover parity** — a [`psm::fault::FailoverPair`] whose
//!    [`psm::fault::FaultPlan`] schedules a fail-stop primary kill ends
//!    at [`psm::fault::Tier::Promoted`] with the same conflict set,
//!    Rete snapshot bytes, and working-memory bytes as the fault-free
//!    reference — with background chaos faults hitting the primary
//!    before it dies.
//! 2. **Delta-chain restore** — replaying a `PSMD` delta chain from its
//!    full anchor reconstructs the tip checkpoint byte-for-byte.
//! 3. **Delta compression** — on the two largest presets, the mean
//!    delta artifact is at least 3× smaller than the mean full
//!    checkpoint artifact it replaces.

use std::sync::Arc;

use psm::fault::{
    CheckpointChain, FailoverPair, FaultPlan, ReplicationConfig, ReplicationStore, Supervisor,
    SupervisorConfig, Tier,
};
use psm::ops5::{Instantiation, Matcher, WmeId, WorkingMemory};
use psm::rete::{Network, ReteMatcher};
use psm::workloads::{GeneratedWorkload, Preset, WorkloadDriver};

struct Collecting<'a> {
    inner: &'a mut ReteMatcher,
    conflict: &'a mut std::collections::HashSet<Instantiation>,
}

impl Collecting<'_> {
    fn fold(&mut self, d: psm::ops5::MatchDelta) {
        for i in &d.removed {
            self.conflict.remove(i);
        }
        for i in &d.added {
            self.conflict.insert(i.clone());
        }
    }
}

impl Matcher for Collecting<'_> {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> psm::ops5::MatchDelta {
        let d = self.inner.add_wme(wm, id);
        self.fold(d.clone());
        d
    }
    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> psm::ops5::MatchDelta {
        let d = self.inner.remove_wme(wm, id);
        self.fold(d.clone());
        d
    }
    fn algorithm_name(&self) -> &'static str {
        "collecting"
    }
}

/// Fault-free sequential reference. Returns the matcher, the sorted
/// conflict set, and the final working-memory bytes.
fn drive_reference(
    workload: &GeneratedWorkload,
    seed: u64,
    cycles: u64,
    network: &Arc<Network>,
) -> (ReteMatcher, Vec<Instantiation>, Vec<u8>) {
    let mut driver = WorkloadDriver::new(workload.clone(), seed);
    let mut matcher = ReteMatcher::from_network(network.clone());
    let mut conflict = std::collections::HashSet::new();
    let mut collecting = Collecting {
        inner: &mut matcher,
        conflict: &mut conflict,
    };
    driver.init(&mut collecting);
    for _ in 0..cycles {
        let batch = driver.next_batch();
        let delta = collecting.inner.process(driver.working_memory(), &batch);
        collecting.fold(delta);
        driver.commit_batch(&batch);
    }
    let wm_bytes = driver.working_memory().snapshot_bytes();
    let mut sorted: Vec<_> = conflict.into_iter().collect();
    sorted.sort_by(|a, b| (a.production, &a.wmes).cmp(&(b.production, &b.wmes)));
    (matcher, sorted, wm_bytes)
}

fn fast_config() -> SupervisorConfig {
    SupervisorConfig {
        threads: 2,
        backoff: std::time::Duration::from_micros(10),
        checkpoint_every: 4,
        ..SupervisorConfig::default()
    }
}

fn failover_roundtrip(preset: Preset, plan_seed: u64, driver_seed: u64, cycles: u64) {
    let workload = GeneratedWorkload::generate(preset.spec_small()).expect("workload generates");
    // `WorkloadDriver::init` feeds one supervised cycle per initial
    // WME, so the kill lands mid-way through the post-init stream.
    let init_cycles = workload.spec.wm_size as u64;
    let kill_at = init_cycles + cycles / 2;
    let plan = Arc::new(
        FaultPlan::randomized(plan_seed, init_cycles + cycles, 0.1).with_primary_kill(kill_at),
    );

    let replication = ReplicationConfig {
        max_segment_bytes: 4 * 1024, // force rotation
        anchor_every: 4,
    };
    let mut pair = FailoverPair::new(&workload.program, fast_config(), replication, Some(plan))
        .expect("program compiles");
    pair.set_poll_every(3);
    let mut driver = WorkloadDriver::new(workload.clone(), driver_seed);
    driver.init(&mut pair);
    for _ in 0..cycles {
        let batch = driver.next_batch();
        pair.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
    }

    // The kill happened, the standby caught up fully, and the promoted
    // supervisor finished the stream.
    let report = pair.report();
    assert_eq!(
        report.promoted_at,
        Some(kill_at),
        "{}: promotion at the planned kill cycle",
        preset.name()
    );
    assert_eq!(
        report.lag_at_promotion,
        0,
        "{}: synchronous publishing means zero lost cycles",
        preset.name()
    );
    assert!(
        report.rebases >= 1,
        "{}: standby based itself",
        preset.name()
    );
    assert_eq!(pair.tier(), Tier::Promoted, "{}", preset.name());

    // Byte parity with the never-faulted reference.
    let network = pair.active().network().clone();
    let (reference, conflict, wm_bytes) = drive_reference(&workload, driver_seed, cycles, &network);
    assert_eq!(
        pair.active().conflict_set(),
        conflict,
        "{}: promoted conflict set diverged",
        preset.name()
    );
    assert_eq!(
        pair.active().committed_snapshot().as_bytes(),
        reference.snapshot().as_bytes(),
        "{}: promoted Rete state must be byte-exact",
        preset.name()
    );
    assert_eq!(
        pair.active().committed_wm_bytes(),
        wm_bytes,
        "{}: promoted working memory must be byte-exact",
        preset.name()
    );
}

#[test]
fn failover_is_byte_exact_on_every_preset() {
    for (i, preset) in Preset::all().iter().enumerate() {
        failover_roundtrip(*preset, 0xFA11 + i as u64, 0x5EED + i as u64, 12);
    }
}

#[test]
fn failover_without_a_kill_never_promotes() {
    let preset = Preset::EpSoar;
    let workload = GeneratedWorkload::generate(preset.spec_small()).expect("workload generates");
    let mut pair = FailoverPair::new(
        &workload.program,
        fast_config(),
        ReplicationConfig::default(),
        None,
    )
    .expect("program compiles");
    let mut driver = WorkloadDriver::new(workload.clone(), 7);
    driver.init(&mut pair);
    for _ in 0..8 {
        let batch = driver.next_batch();
        pair.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
    }
    assert_eq!(pair.report().promoted_at, None);
    assert_eq!(pair.tier(), Tier::Parallel, "nothing degraded");
    let network = pair.active().network().clone();
    let (reference, conflict, _) = drive_reference(&workload, 7, 8, &network);
    assert_eq!(pair.active().conflict_set(), conflict);
    assert_eq!(
        pair.active().committed_snapshot().as_bytes(),
        reference.snapshot().as_bytes()
    );
}

/// Drives a plain supervisor with a replication store attached and
/// returns (supervisor, store) for chain inspection.
fn drive_replicated(
    preset: Preset,
    seed: u64,
    cycles: u64,
    replication: ReplicationConfig,
) -> (
    Supervisor,
    Arc<ReplicationStore>,
    Vec<psm::fault::Checkpoint>,
) {
    let workload = GeneratedWorkload::generate(preset.spec_small()).expect("workload generates");
    let store = Arc::new(ReplicationStore::new(replication));
    let mut sup = Supervisor::new(&workload.program, fast_config()).expect("compiles");
    sup.attach_replication(store.clone());
    let mut driver = WorkloadDriver::new(workload, seed);
    let mut checkpoints = Vec::new();
    let mut last_cp_cycle = u64::MAX;
    driver.init(&mut sup);
    for _ in 0..cycles {
        let batch = driver.next_batch();
        sup.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
        let cp = sup.last_checkpoint();
        if cp.cycle != last_cp_cycle {
            last_cp_cycle = cp.cycle;
            checkpoints.push(cp.clone());
        }
    }
    (sup, store, checkpoints)
}

#[test]
fn delta_chain_restore_equals_full_restore() {
    let (_sup, _store, checkpoints) = drive_replicated(
        Preset::EpSoar,
        21,
        16,
        ReplicationConfig {
            anchor_every: 1000, // everything after genesis ships as a delta
            ..ReplicationConfig::default()
        },
    );
    assert!(checkpoints.len() >= 3, "enough checkpoints to chain");

    let mut chain = CheckpointChain::new(&checkpoints[0], 1000);
    for cp in &checkpoints[1..] {
        let artifact = chain.push(cp);
        assert!(!artifact.is_full(), "anchor_every=1000 ships deltas");
    }
    let restored = chain.restore_tip().expect("chain replays");
    let tip = checkpoints.last().unwrap();
    assert_eq!(
        restored.to_bytes(),
        tip.to_bytes(),
        "anchor + delta replay reconstructs the tip byte-for-byte"
    );
    // And through the store's own chain (which re-anchors periodically).
    let (sup2, store2, _) = drive_replicated(Preset::EpSoar, 21, 16, ReplicationConfig::default());
    let stats = store2.stats();
    assert!(stats.full_count >= 1 && stats.delta_count >= 1);
    assert_eq!(stats.primary_cycle, sup2.cycles());
}

#[test]
fn delta_artifacts_are_3x_smaller_on_the_two_largest_presets() {
    let mut presets: Vec<Preset> = Preset::all().to_vec();
    presets.sort_by_key(|p| std::cmp::Reverse(p.spec_small().wm_size));
    for &preset in &presets[..2] {
        let (_, store, _) = drive_replicated(preset, 33, 24, ReplicationConfig::default());
        let stats = store.stats();
        assert!(
            stats.full_count >= 1 && stats.delta_count >= 2,
            "{}: both artifact kinds present (full={}, delta={})",
            preset.name(),
            stats.full_count,
            stats.delta_count
        );
        let mean_full = stats.full_bytes as f64 / stats.full_count as f64;
        let mean_delta = stats.delta_bytes as f64 / stats.delta_count as f64;
        assert!(
            mean_full >= 3.0 * mean_delta,
            "{}: delta checkpoints must be ≥3× smaller (full ≈ {mean_full:.0} B, \
             delta ≈ {mean_delta:.0} B)",
            preset.name()
        );
    }
}
