//! Equivalence of all matchers on generated (preset-shaped) workloads,
//! driven through realistic recognize–act-sized change batches.

use psm::baselines::{NaiveMatcher, OflazerMatcher, TreatMatcher};
use psm::core::{ParallelOptions, ParallelReteMatcher};
use psm::ops5::{Change, Matcher};
use psm::rete::ReteMatcher;
use psm::workloads::{GeneratedWorkload, Preset, WorkloadDriver, WorkloadSpec};

/// Drives the same batch stream through two matchers, comparing
/// canonicalized deltas batch by batch.
fn assert_equivalent<A: Matcher, B: Matcher>(
    workload: &GeneratedWorkload,
    mut a: A,
    mut b: B,
    cycles: u64,
) {
    // Initialize matcher A through the driver, then replay the same
    // initial working memory into matcher B.
    let mut driver = WorkloadDriver::new(workload.clone(), 5);
    driver.init(&mut a);
    let initial: Vec<_> = driver
        .working_memory()
        .iter()
        .map(|(id, _, _)| id)
        .collect();
    for id in initial {
        b.add_wme(driver.working_memory(), id);
    }

    for step in 0..cycles {
        let batch: Vec<Change> = driver.next_batch();
        let mut da = a.process(driver.working_memory(), &batch);
        let mut db = b.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
        da.canonicalize();
        db.canonicalize();
        assert_eq!(
            da,
            db,
            "{} vs {} diverged at batch {step}",
            a.algorithm_name(),
            b.algorithm_name()
        );
    }
}

fn small_spec() -> WorkloadSpec {
    let mut spec = Preset::EpSoar.spec_small();
    spec.wm_size = 60;
    spec
}

#[test]
fn rete_vs_treat_on_generated_workload() {
    let w = GeneratedWorkload::generate(small_spec()).unwrap();
    assert_equivalent(
        &w,
        ReteMatcher::compile(&w.program).unwrap(),
        TreatMatcher::compile(&w.program).unwrap(),
        40,
    );
}

#[test]
fn rete_vs_parallel_on_generated_workload() {
    let w = GeneratedWorkload::generate(small_spec()).unwrap();
    for threads in [1, 4, 8] {
        assert_equivalent(
            &w,
            ReteMatcher::compile(&w.program).unwrap(),
            ParallelReteMatcher::compile(
                &w.program,
                ParallelOptions {
                    threads,
                    share: true,
                },
            )
            .unwrap(),
            40,
        );
    }
}

#[test]
fn rete_vs_naive_on_generated_workload() {
    let mut spec = small_spec();
    spec.wm_size = 40; // naive is O(|WM|^CEs); keep it tractable
    let w = GeneratedWorkload::generate(spec).unwrap();
    assert_equivalent(
        &w,
        ReteMatcher::compile(&w.program).unwrap(),
        NaiveMatcher::new(&w.program),
        15,
    );
}

#[test]
fn rete_vs_oflazer_on_negation_free_workload() {
    let mut spec = small_spec();
    spec.negated_prob = 0.0;
    let w = GeneratedWorkload::generate(spec).unwrap();
    assert_equivalent(
        &w,
        ReteMatcher::compile(&w.program).unwrap(),
        OflazerMatcher::compile(&w.program).unwrap(),
        40,
    );
}
