//! Flight-recorder provenance on a real program: run the blocks world
//! with the causal ring enabled and assert `explain_firing` reproduces
//! the exact WME time tags and causal chain for a known firing.

use std::sync::Arc;

use psm::obs::{FlightKind, Obs};
use psm::ops5::{parse_program, parse_wmes, Interpreter};
use psm::rete::ReteMatcher;

fn run_blocks(obs: &Arc<Obs>) -> u64 {
    let root = env!("CARGO_MANIFEST_DIR");
    let src = std::fs::read_to_string(format!("{root}/assets/blocks.ops")).expect("blocks.ops");
    let wm_src = std::fs::read_to_string(format!("{root}/assets/blocks.wm")).expect("blocks.wm");
    let mut program = parse_program(&src).expect("parses");
    let initial = parse_wmes(&wm_src, &mut program.symbols).expect("wm parses");
    let mut matcher = ReteMatcher::compile(&program).expect("compiles");
    matcher.attach_obs(Arc::clone(obs));
    let mut interp = Interpreter::new(program, matcher);
    interp.attach_obs(Arc::clone(obs));
    interp.insert_all(initial);
    interp.run(10_000).expect("runs")
}

#[test]
fn explain_firing_reproduces_exact_time_tags() {
    let obs = Arc::new(Obs::with_flight(1024, 8192));
    let fired = run_blocks(&obs);
    assert_eq!(fired, 2, "blocks world fires put-on then done");

    // blocks.wm inserts (block a)=tag 1, (block b)=tag 2, (goal)=tag 3.
    // put-on's instantiation binds its conditions in order:
    // (goal ^on b)=3, (block a ^clear yes ^on table)=1, (block b)=2.
    let ex = obs.flight.explain_firing("put-on", 0);
    assert!(ex.firing.is_some(), "put-on firing is in the ring");
    assert_eq!(ex.time_tags(), vec![3, 1, 2]);

    // The causal chain must contain the initial WME inserts for those
    // exact tags, node activations, and the conflict-set insert that
    // scheduled the firing.
    let records = ex.records();
    assert!(records.iter().any(|r| matches!(
        r.kind,
        FlightKind::WmeChange {
            time_tag: 3,
            is_add: true,
            ..
        }
    )));
    assert!(records
        .iter()
        .any(|r| matches!(r.kind, FlightKind::Activation { .. })));
    assert!(
        ex.conflict_insert.is_some(),
        "conflict insert precedes the firing"
    );
    let firing_seq = ex.firing.as_ref().unwrap().seq;
    assert!(
        records.iter().all(|r| r.seq <= firing_seq),
        "every causal record precedes (or is) the firing"
    );

    // `done` fires on the post-move state: goal removed, block a now on
    // b (re-tagged by the modify), so its tags differ from put-on's.
    let done = obs.flight.explain_firing("done", 0);
    assert!(done.firing.is_some());
    assert!(!done.time_tags().is_empty());
    assert_ne!(done.time_tags(), ex.time_tags());
}

#[test]
fn explain_cycle_filters_by_cycle() {
    let obs = Arc::new(Obs::with_flight(1024, 8192));
    run_blocks(&obs);
    let c1 = obs.flight.explain_cycle(1);
    let c2 = obs.flight.explain_cycle(2);
    assert!(!c1.is_empty() && !c2.is_empty());
    assert!(c1.iter().all(|r| r.cycle == 1));
    assert!(c2.iter().all(|r| r.cycle == 2));
    // Exactly one firing per cycle in this program.
    for records in [&c1, &c2] {
        assert_eq!(
            records
                .iter()
                .filter(|r| matches!(r.kind, FlightKind::Firing { .. }))
                .count(),
            1
        );
    }
}

#[test]
fn profiler_survives_tier_fallback() {
    use psm::fault::{FaultPlan, Supervisor, SupervisorConfig, Tier};
    use psm::ops5::Matcher;
    use psm::workloads::{GeneratedWorkload, Preset, WorkloadDriver};

    let workload = GeneratedWorkload::generate(Preset::Vt.spec_small()).expect("generates");
    let obs = Arc::new(Obs::with_profile(1024, 4096, 4096));
    let config = SupervisorConfig {
        threads: 2,
        backoff: std::time::Duration::from_micros(10),
        checkpoint_every: 4,
        ..SupervisorConfig::default()
    };
    let mut sup = Supervisor::new(&workload.program, config).expect("compiles");
    sup.attach_obs(Arc::clone(&obs));
    // Exactly enough transient failures at cycle 2 to exhaust the
    // parallel tier's retry budget (max_retries = 2, so the third
    // failure degrades) without also knocking out the sequential tier.
    sup.set_fault_plan(Some(Arc::new(FaultPlan::new(0).with_cycle_fault(2, 3))));
    let mut driver = WorkloadDriver::new(workload.clone(), 7);
    driver.init(&mut sup);
    for _ in 0..3 {
        let batch = driver.next_batch();
        sup.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
    }
    assert_eq!(sup.tier(), Tier::Sequential, "plan forces fallback");
    let before = obs.profile.snapshot().total_pairs();
    assert!(before > 0, "parallel tier already profiled");
    for _ in 0..4 {
        let batch = driver.next_batch();
        sup.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
    }
    let after = obs.profile.snapshot().total_pairs();
    assert!(
        after > before,
        "recovered sequential matcher keeps profiling ({before} -> {after})"
    );
}

#[test]
fn disabled_flight_records_nothing() {
    let obs = Arc::new(Obs::new(0)); // flight capacity 0: permanently off
    let fired = run_blocks(&obs);
    assert_eq!(fired, 2);
    assert_eq!(obs.flight.len(), 0);
    assert_eq!(obs.flight.dropped(), 0);
    assert!(obs.flight.explain_firing("put-on", 0).firing.is_none());
}
