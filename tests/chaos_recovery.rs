//! Seeded chaos property: under a randomized fault plan, the supervised
//! engine converges to the fault-free state on every workload preset.
//!
//! For each preset this drives the [`psm::fault::Supervisor`] through a
//! change stream while a seeded [`psm::fault::FaultPlan`] injects worker
//! panics, dropped tasks, poisoned locks, and transient cycle faults,
//! then asserts the robustness contract:
//!
//! 1. **Convergence** — the recovered conflict set equals the one a
//!    never-faulted sequential Rete produces on the same stream.
//! 2. **Byte-exact recovery** — checkpoint + WAL replay rebuilds Rete
//!    memories identical (same bytes: same WME ids, time tags, token
//!    contents) to the fault-free matcher's snapshot.
//! 3. **Determinism** — the same plan seed yields the same fault
//!    schedule, the same degradation tier, and the same recovered state
//!    across two independent runs.
//! 4. **Clean drain** — retracting every WME from the recovered state
//!    leaves zero resident tokens (the `conjugate_properties` leak
//!    check, applied to a post-recovery matcher).

use std::sync::Arc;

use psm::fault::{FaultPlan, FaultReport, Supervisor, SupervisorConfig};
use psm::ops5::{Change, Instantiation, Matcher, WmeId, WorkingMemory};
use psm::rete::{Network, ReteMatcher};
use psm::workloads::{GeneratedWorkload, Preset, WorkloadDriver};

/// Folds matcher deltas into a conflict-set accumulator so the
/// reference run tracks the same state the supervisor maintains.
struct Collecting<'a> {
    inner: &'a mut ReteMatcher,
    conflict: &'a mut std::collections::HashSet<Instantiation>,
}

impl Collecting<'_> {
    fn fold(&mut self, d: psm::ops5::MatchDelta) {
        for i in &d.removed {
            self.conflict.remove(i);
        }
        for i in &d.added {
            self.conflict.insert(i.clone());
        }
    }
}

impl Matcher for Collecting<'_> {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> psm::ops5::MatchDelta {
        let d = self.inner.add_wme(wm, id);
        self.fold(d.clone());
        d
    }
    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> psm::ops5::MatchDelta {
        let d = self.inner.remove_wme(wm, id);
        self.fold(d.clone());
        d
    }
    fn algorithm_name(&self) -> &'static str {
        "collecting"
    }
}

/// Fault-free sequential reference: same network, same driver seed,
/// same cycle count. Returns the matcher (for its snapshot) and the
/// sorted conflict set.
fn drive_reference(
    workload: &GeneratedWorkload,
    seed: u64,
    cycles: u64,
    network: &Arc<Network>,
) -> (ReteMatcher, Vec<Instantiation>) {
    let mut driver = WorkloadDriver::new(workload.clone(), seed);
    let mut matcher = ReteMatcher::from_network(network.clone());
    let mut conflict = std::collections::HashSet::new();
    let mut collecting = Collecting {
        inner: &mut matcher,
        conflict: &mut conflict,
    };
    driver.init(&mut collecting);
    for _ in 0..cycles {
        let batch = driver.next_batch();
        let delta = collecting.inner.process(driver.working_memory(), &batch);
        collecting.fold(delta);
        driver.commit_batch(&batch);
    }
    let mut sorted: Vec<_> = conflict.into_iter().collect();
    sorted.sort_by(|a, b| (a.production, &a.wmes).cmp(&(b.production, &b.wmes)));
    (matcher, sorted)
}

fn run_supervised(
    workload: &GeneratedWorkload,
    seed: u64,
    cycles: u64,
    plan: Arc<FaultPlan>,
) -> Supervisor {
    let config = SupervisorConfig {
        threads: 2,
        backoff: std::time::Duration::from_micros(10),
        checkpoint_every: 4,
        ..SupervisorConfig::default()
    };
    let mut driver = WorkloadDriver::new(workload.clone(), seed);
    let mut sup = Supervisor::new(&workload.program, config).expect("program compiles");
    sup.set_fault_plan(Some(plan));
    driver.init(&mut sup);
    for _ in 0..cycles {
        let batch = driver.next_batch();
        sup.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
    }
    sup
}

/// Which worker first touches a poisoned lock is a thread race; every
/// other counter in the report is deterministic.
fn normalize(mut r: FaultReport) -> FaultReport {
    r.poison_recoveries = 0;
    r
}

/// Retracts every WME from the recovered state and asserts the matcher
/// holds zero resident tokens afterwards.
fn drain_recovered(sup: &mut Supervisor, preset: Preset) {
    let snapshot = sup.committed_snapshot();
    let mut matcher =
        ReteMatcher::restore(sup.network().clone(), &snapshot).expect("snapshot restores");
    let mut wm = WorkingMemory::restore_snapshot(&sup.committed_wm_bytes()).expect("wm restores");
    let ids: Vec<WmeId> = wm.iter().map(|(id, _, _)| id).collect();
    for chunk in ids.chunks(4) {
        let batch: Vec<Change> = chunk.iter().map(|&id| Change::Remove(id)).collect();
        matcher.process(&wm, &batch);
        for &id in chunk {
            wm.remove(id);
        }
    }
    assert_eq!(
        matcher.resident_tokens(),
        0,
        "{}: tokens leaked after draining the recovered state",
        preset.name()
    );
}

fn chaos_roundtrip(preset: Preset, plan_seed: u64, driver_seed: u64, cycles: u64) {
    let workload = GeneratedWorkload::generate(preset.spec_small()).expect("workload generates");
    let plan = Arc::new(FaultPlan::randomized(plan_seed, 64, 0.25));

    let mut sup = run_supervised(&workload, driver_seed, cycles, plan.clone());
    let mut twin = run_supervised(&workload, driver_seed, cycles, plan);

    // (3) determinism: same seed, same schedule, same outcome.
    assert_eq!(
        normalize(sup.report()),
        normalize(twin.report()),
        "{}: fault schedule must be deterministic",
        preset.name()
    );
    assert_eq!(sup.tier(), twin.tier(), "{}", preset.name());
    assert_eq!(sup.conflict_set(), twin.conflict_set(), "{}", preset.name());
    assert_eq!(
        sup.committed_snapshot().as_bytes(),
        twin.committed_snapshot().as_bytes(),
        "{}: recovered state must be deterministic",
        preset.name()
    );

    // (1) + (2) convergence to the fault-free reference, byte-for-byte.
    let (reference, conflict) = drive_reference(&workload, driver_seed, cycles, sup.network());
    assert_eq!(
        sup.conflict_set(),
        conflict,
        "{}: recovered conflict set diverged from fault-free run",
        preset.name()
    );
    assert_eq!(
        sup.committed_snapshot().as_bytes(),
        reference.snapshot().as_bytes(),
        "{}: checkpoint + WAL replay must be byte-exact",
        preset.name()
    );

    // (4) drain the recovered state to zero resident tokens.
    drain_recovered(&mut sup, preset);
}

#[test]
fn chaos_recovery_converges_on_every_preset() {
    for (i, preset) in Preset::all().iter().enumerate() {
        // Fixed seeds (CI chaos job depends on them): a distinct fault
        // schedule and change stream per preset.
        chaos_roundtrip(*preset, 0xC4A05 + i as u64, 0x5EED + i as u64, 10);
    }
}

#[test]
fn panic_worker_mid_phase_recovers_and_pool_survives() {
    use psm::core::{FaultAction, ParallelOptions, ParallelReteMatcher};

    let preset = Preset::EpSoar;
    let workload = GeneratedWorkload::generate(preset.spec_small()).expect("workload generates");
    // A targeted plan: kill exactly one worker mid-phase (phase 10 is
    // the add phase of the 5th batch; seq 0 is its first task).
    let plan = Arc::new(FaultPlan::new(5).with_engine_fault(10, 0, FaultAction::PanicWorker));

    // Supervised: the kill degrades to the sequential tier and the
    // checkpoint + WAL recovery is byte-exact against the fault-free
    // reference — the persistent pool changes nothing about parity.
    let mut sup = run_supervised(&workload, 11, 10, plan.clone());
    let report = sup.report();
    assert!(report.engine_faults >= 1, "the planned kill fired");
    assert_eq!(
        report.worker_respawns, 1,
        "the pool respawned the killed worker and reported it"
    );
    let (reference, conflict) = drive_reference(&workload, 11, 10, sup.network());
    assert_eq!(sup.conflict_set(), conflict);
    assert_eq!(
        sup.committed_snapshot().as_bytes(),
        reference.snapshot().as_bytes(),
        "recovery after a mid-phase worker kill is byte-exact"
    );
    drain_recovered(&mut sup, preset);

    // Engine-level survival: the same plan on a raw parallel matcher.
    // The kill is contained, the dead worker is respawned at the phase
    // barrier, and the pool keeps matching for >= 3 subsequent batches
    // with no thread leak.
    let threads = 2;
    let mut m = ParallelReteMatcher::compile(
        &workload.program,
        ParallelOptions {
            threads,
            share: true,
        },
    )
    .expect("program compiles");
    m.set_fault_injector(Some(plan));
    let mut driver = WorkloadDriver::new(workload, 11);
    driver.init(&mut m);
    for _ in 0..8 {
        let batch = driver.next_batch();
        m.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
    }
    assert_eq!(m.take_faults(), 1, "exactly the one planned kill");
    let s = m.pool_stats();
    assert_eq!(s.respawns, 1, "one respawn for one kill");
    assert_eq!(
        s.live, threads,
        "final worker count equals configured threads (no leak)"
    );
    assert_eq!(s.spawned as usize, threads + 1, "initial crew + 1 respawn");
}

#[test]
fn chaos_recovery_survives_a_hostile_fault_rate() {
    // One preset, much denser faults: every other cycle draws a fault.
    let preset = Preset::EpSoar;
    let workload = GeneratedWorkload::generate(preset.spec_small()).expect("workload generates");
    let plan = Arc::new(FaultPlan::randomized(0xBAD, 64, 0.5));
    let mut sup = run_supervised(&workload, 0x5EED, 12, plan);
    let (reference, conflict) = drive_reference(&workload, 0x5EED, 12, sup.network());
    assert_eq!(sup.conflict_set(), conflict);
    assert_eq!(
        sup.committed_snapshot().as_bytes(),
        reference.snapshot().as_bytes()
    );
    drain_recovered(&mut sup, preset);
}
