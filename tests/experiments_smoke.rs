//! Small-scale smoke runs of every experiment pipeline, asserting the
//! paper's qualitative claims hold (the full-size runs live in the
//! `psm-bench` binaries and are recorded in `EXPERIMENTS.md`).

use psm::sim::{
    granularity_analysis, simulate_dado_rete, simulate_dado_treat, simulate_nonvon,
    simulate_oflazer_machine, simulate_psm, uniprocessor_ladder, CostModel, PsmSpec,
    StateSavingModel,
};
use psm::workloads::{capture_trace_with, GeneratedWorkload, Preset};

fn captured(preset: Preset, share: bool) -> (psm::rete::Trace, std::sync::Arc<psm::rete::Network>) {
    let workload = GeneratedWorkload::generate(preset.spec_small()).unwrap();
    let (trace, _stats, network) =
        capture_trace_with(&workload, 60, 11, psm::rete::CompileOptions { share }).unwrap();
    (trace, network)
}

#[test]
fn e1_state_saving_model_matches_paper() {
    let m = StateSavingModel::paper();
    assert!(
        (m.breakeven_turnover() - 0.611).abs() < 0.01,
        "breakeven ~61%"
    );
    assert!(
        m.advantage(0.005) > 20.0,
        "state saving wins big at 0.5% turnover"
    );
}

#[test]
fn e2_production_parallelism_is_capped() {
    let (trace, network) = captured(Preset::Daa, false);
    let g = granularity_analysis(&trace, &network, &CostModel::default());
    assert!(
        g.mean_affected_productions > 2.0,
        "several productions affected per change: {}",
        g.mean_affected_productions
    );
    // The paper's §4 claim: node-level parallelism beats production-level
    // parallelism by a large factor despite the sizable affected set.
    assert!(
        g.node_speedup > 1.5 * g.production_speedup,
        "node {} vs production {}",
        g.node_speedup,
        g.production_speedup
    );
    assert!(
        g.production_speedup < g.mean_affected_productions,
        "variance keeps production parallelism below the affected count"
    );
}

#[test]
fn e3_e4_concurrency_saturates_by_64_processors() {
    let (trace, _network) = captured(Preset::R1Soar, true);
    let cost = CostModel::default();
    let conc =
        |p: usize| simulate_psm(&trace, &cost, &PsmSpec::paper_32().with_processors(p)).concurrency;
    let c8 = conc(8);
    let c32 = conc(32);
    let c64 = conc(64);
    assert!(c32 > c8, "more processors help up to a point");
    assert!(
        c64 < c32 * 1.35,
        "speed-up saturates: going 32 -> 64 adds little ({c32} -> {c64})"
    );
}

#[test]
fn e5_true_speedup_is_less_than_tenfold() {
    let cost = CostModel::default();
    for preset in [Preset::Mud, Preset::EpSoar] {
        let (trace, _n) = captured(preset, true);
        let r = simulate_psm(&trace, &cost, &PsmSpec::paper_32());
        assert!(
            r.true_speedup < 10.0,
            "the paper's headline bound: {} on {preset:?}",
            r.true_speedup
        );
        assert!(r.true_speedup > 1.0);
        assert!(r.lost_factor() >= 1.0);
        assert!(r.wme_changes_per_sec > 100.0);
    }
}

#[test]
fn e6_architecture_ordering() {
    let (trace, network) = captured(Preset::Mud, false);
    let cost = CostModel::default();
    let dado = simulate_dado_rete(&trace, &network, &cost).wme_changes_per_sec;
    let treat = simulate_dado_treat(&trace, &network, &cost).wme_changes_per_sec;
    let nonvon = simulate_nonvon(&trace, &network, &cost).wme_changes_per_sec;
    let oflazer = simulate_oflazer_machine(&trace, &network, &cost).wme_changes_per_sec;
    let psm = simulate_psm(&trace, &cost, &PsmSpec::paper_32()).wme_changes_per_sec;
    assert!(dado < treat, "dado-rete {dado} < dado-treat {treat}");
    assert!(treat < nonvon, "dado-treat {treat} < non-von {nonvon}");
    assert!(nonvon < oflazer, "non-von {nonvon} < oflazer {oflazer}");
    assert!(oflazer < psm, "oflazer {oflazer} < psm {psm}");
    assert!(psm / dado > 10.0, "the PSM leads the tree machines by >10x");
}

#[test]
fn e7_sensitivity_directions() {
    let cost = CostModel::default();
    let spec32 = PsmSpec::paper_32();
    // More changes per cycle -> more concurrency.
    let base = Preset::Daa.spec_small();
    let mut big = base.clone();
    big.min_changes *= 4;
    big.max_changes *= 4;
    let run = |spec| {
        let w = GeneratedWorkload::generate(spec).unwrap();
        let (t, _s, _n) =
            capture_trace_with(&w, 60, 11, psm::rete::CompileOptions::default()).unwrap();
        simulate_psm(&t, &cost, &spec32)
    };
    let r_base = run(base);
    let r_big = run(big);
    assert!(
        r_big.concurrency > r_base.concurrency,
        "{} !> {}",
        r_big.concurrency,
        r_base.concurrency
    );
}

#[test]
fn traces_from_real_interpreter_runs_simulate_cleanly() {
    // Bridge test: capture a node-activation trace from an actual
    // recognize–act run (Towers of Hanoi) rather than the synthetic
    // driver, and replay it on the simulated PSM.
    use psm::ops5::{Interpreter, Strategy};
    use psm::rete::ReteMatcher;
    use psm::workloads::programs;

    let (program, initial) = programs::hanoi(5).unwrap();
    let matcher = ReteMatcher::compile(&program).unwrap();
    let mut interp = Interpreter::new(program, matcher);
    interp.set_strategy(Strategy::Mea);
    interp.insert_all(initial);
    interp.matcher_mut().enable_tracing();
    let fired = interp.run(10_000).unwrap();
    assert!(fired > 60, "5-disk hanoi needs > 2^5 firings, got {fired}");

    let trace = interp.matcher_mut().take_trace();
    assert_eq!(trace.cycles.len() as u64, fired);
    let cost = CostModel::default();
    let r = simulate_psm(&trace, &cost, &PsmSpec::paper_32());
    assert!(r.true_speedup >= 1.0);
    assert!(
        r.true_speedup < 10.0,
        "even a goal-stack program obeys the paper's bound: {}",
        r.true_speedup
    );
    assert!(r.firings_per_sec > 0.0);
}

#[test]
fn e8_uniprocessor_ladder_is_monotone() {
    let ladder = uniprocessor_ladder(1800.0);
    for pair in ladder.windows(2) {
        assert!(pair[0].wme_changes_per_sec < pair[1].wme_changes_per_sec);
    }
}
