//! End-to-end runs of the classic programs under *every* match engine:
//! the interpreter must produce identical behaviour regardless of which
//! algorithm performs the match — the paper's premise for comparing
//! them.

use psm::baselines::{NaiveMatcher, TreatMatcher};
use psm::core::{ParallelOptions, ParallelReteMatcher, ProductionParallelMatcher};
use psm::ops5::{Interpreter, Matcher, Program, Wme};
use psm::rete::ReteMatcher;
use psm::workloads::programs;

/// Runs a program+initial-WM to quiescence/halt, returning (firings,
/// output lines, final WM size).
fn run<M: Matcher>(program: Program, initial: Vec<Wme>, matcher: M) -> (u64, Vec<String>, usize) {
    let mut interp = Interpreter::new(program, matcher);
    interp.insert_all(initial);
    let fired = interp.run(20_000).expect("program runs");
    (
        fired,
        interp.output().to_vec(),
        interp.working_memory().len(),
    )
}

fn all_engines_agree(build: impl Fn() -> (Program, Vec<Wme>)) {
    let (program, initial) = build();
    let reference = run(
        program.clone(),
        initial.clone(),
        ReteMatcher::compile(&program).expect("rete compiles"),
    );

    let (program2, initial2) = build();
    let naive = run(program2.clone(), initial2, NaiveMatcher::new(&program2));
    assert_eq!(reference, naive, "naive disagrees with rete");

    let (program3, initial3) = build();
    let treat = run(
        program3.clone(),
        initial3,
        TreatMatcher::compile(&program3).expect("treat compiles"),
    );
    assert_eq!(reference, treat, "treat disagrees with rete");

    let (program4, initial4) = build();
    let parallel = run(
        program4.clone(),
        initial4,
        ParallelReteMatcher::compile(
            &program4,
            ParallelOptions {
                threads: 4,
                share: true,
            },
        )
        .expect("parallel compiles"),
    );
    assert_eq!(reference, parallel, "parallel rete disagrees with rete");

    let (program5, initial5) = build();
    let pp = run(
        program5.clone(),
        initial5,
        ProductionParallelMatcher::compile(&program5, 2).expect("pp compiles"),
    );
    assert_eq!(reference, pp, "production-parallel disagrees with rete");
}

#[test]
fn monkey_bananas_under_every_engine() {
    all_engines_agree(|| programs::monkey_bananas().expect("program parses"));
}

#[test]
fn transitive_closure_under_every_engine() {
    all_engines_agree(|| {
        programs::transitive_closure(&[(0, 1), (1, 2), (2, 3), (3, 0)]).expect("parses")
    });
}

#[test]
fn rule_sort_under_every_engine() {
    all_engines_agree(|| programs::rule_sort(&[4, 2, 5, 1, 3]).expect("parses"));
}

#[test]
fn monkey_bananas_output_is_the_plan() {
    let (program, initial) = programs::monkey_bananas().expect("parses");
    let matcher = ReteMatcher::compile(&program).expect("compiles");
    let (fired, output, _) = run(program, initial, matcher);
    assert_eq!(fired, 4);
    assert_eq!(
        output,
        vec![
            "monkey walks to b",
            "monkey pushes ladder to c",
            "monkey climbs ladder",
            "monkey grabs bananas",
        ]
    );
}
