//! Error type for parsing and interpretation.

use std::fmt;

/// Errors produced by the OPS5 front end and interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical error at a byte offset in the source.
    Lex {
        /// Byte offset of the offending character.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error with a line number (1-based) and message.
    Parse {
        /// 1-based source line of the error.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Semantic error in a production (bad element designator, variable
    /// used before binding, duplicate production name, …).
    Semantic {
        /// Name of the production being analysed, when known.
        production: String,
        /// What went wrong.
        message: String,
    },
    /// Runtime error while executing an action.
    Runtime {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            Error::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            Error::Semantic {
                production,
                message,
            } => write!(f, "semantic error in production `{production}`: {message}"),
            Error::Runtime { message } => write!(f, "runtime error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds a runtime error from anything displayable.
    pub fn runtime(message: impl fmt::Display) -> Self {
        Error::Runtime {
            message: message.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        let e = Error::Parse {
            line: 3,
            message: "expected `)`".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: expected `)`");
        let e = Error::runtime("boom");
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
