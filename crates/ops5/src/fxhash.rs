//! A fast, non-cryptographic hasher for match-loop hash maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which the matcher's internal indexes do not need:
//! every key is an internal identifier (symbol ids, WME ids, small
//! value tuples) derived from already-validated input, never attacker-
//! chosen strings. What the match loop does need is probe cost in the
//! single-digit-nanosecond range — alpha constant-test dispatch, the
//! hashed join-memory buckets, and the parallel engine's signed
//! multisets all sit on the per-change hot path and pay one or more
//! map operations per node activation.
//!
//! `FxHasher` is the word-at-a-time multiply-xor scheme long used by
//! rustc (hand-rolled here; the container image bakes no external
//! crates). It is also *unkeyed*, so hashes are stable across
//! processes — replicas and snapshots see identical bucket layouts,
//! where `RandomState` would randomize iteration order per process.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`]; construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by [`FxHasher`]; construct with `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Word-at-a-time multiply-xor hasher (the `fxhash` scheme).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's 2^64 / φ multiplicative-hashing constant.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" and "ab\0" differ.
            self.add(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let key = (3usize, 17u32, 42i64);
        assert_eq!(hash_of(&key), hash_of(&key));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, i64), Vec<u32>> = FxHashMap::default();
        for i in 0..1000 {
            m.entry((i % 7, i64::from(i))).or_default().push(i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(3, 3)).map(Vec::len), Some(1));
    }
}
