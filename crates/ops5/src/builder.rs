//! Programmatic production construction.
//!
//! Text is OPS5's native interface, but programs that *generate* rules
//! (planners, compilers, the workload generators in this repository)
//! want an API. [`ProductionBuilder`] collects structure and materializes
//! it through the same front end as parsed text — so every semantic
//! check (binding sites, designator validity, literalize declarations)
//! applies identically, and the builder can never construct a production
//! the parser would reject.
//!
//! # Examples
//!
//! ```
//! use ops5::builder::ProductionBuilder;
//! use ops5::{PredOp, Program};
//!
//! # fn main() -> Result<(), ops5::Error> {
//! let mut program = Program::new();
//! ProductionBuilder::new("find-colored-blk")
//!     .ce("goal", |ce| ce.eq_sym("type", "find-blk").var("color", "c"))
//!     .ce("block", |ce| {
//!         ce.var("id", "i").var("color", "c").eq_sym("selected", "no")
//!     })
//!     .modify(2, |m| m.set_sym("selected", "yes"))
//!     .build(&mut program)?;
//! assert_eq!(program.productions.len(), 1);
//! assert_eq!(program.productions[0].ces.len(), 2);
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::ast::{PredOp, Program};
use crate::error::Error;
use crate::parser::Parser;

/// Validates that `s` is a lexable OPS5 symbol (class, attribute, value
/// or variable name).
fn check_symbol(s: &str, what: &str) -> Result<(), Error> {
    let ok = !s.is_empty()
        && s.bytes().all(|b| {
            b.is_ascii_alphanumeric()
                || matches!(b, b'-' | b'_' | b'*' | b'.' | b'?' | b'!' | b'/' | b'+')
        })
        && !s.bytes().next().is_some_and(|b| b.is_ascii_digit());
    if ok {
        Ok(())
    } else {
        Err(Error::Semantic {
            production: String::new(),
            message: format!("`{s}` is not a valid OPS5 {what}"),
        })
    }
}

/// Builds one production and adds it to a [`Program`].
#[derive(Debug, Clone)]
pub struct ProductionBuilder {
    name: String,
    ces: Vec<String>,
    actions: Vec<String>,
    error: Option<Error>,
}

impl ProductionBuilder {
    /// Starts a production named `name`.
    pub fn new(name: &str) -> Self {
        let mut b = ProductionBuilder {
            name: name.to_owned(),
            ces: Vec::new(),
            actions: Vec::new(),
            error: None,
        };
        if let Err(e) = check_symbol(name, "production name") {
            b.error = Some(e);
        }
        b
    }

    fn record<T>(&mut self, r: Result<T, Error>) {
        if self.error.is_none() {
            if let Err(e) = r {
                self.error = Some(e);
            }
        }
    }

    /// Adds a positive condition element on `class`.
    pub fn ce(mut self, class: &str, f: impl FnOnce(CeBuilder) -> CeBuilder) -> Self {
        self.add_ce(class, false, f);
        self
    }

    /// Adds a negated condition element on `class`.
    pub fn neg_ce(mut self, class: &str, f: impl FnOnce(CeBuilder) -> CeBuilder) -> Self {
        self.add_ce(class, true, f);
        self
    }

    fn add_ce(&mut self, class: &str, negated: bool, f: impl FnOnce(CeBuilder) -> CeBuilder) {
        self.record(check_symbol(class, "class"));
        let ce = f(CeBuilder {
            text: String::new(),
            error: None,
        });
        if let Some(e) = ce.error {
            self.record::<()>(Err(e));
        }
        let neg = if negated { "- " } else { "" };
        self.ces.push(format!("{neg}({class}{})", ce.text));
    }

    /// Adds a `(make class …)` action.
    pub fn make(mut self, class: &str, f: impl FnOnce(RhsBuilder) -> RhsBuilder) -> Self {
        self.record(check_symbol(class, "class"));
        let rhs = f(RhsBuilder {
            text: String::new(),
            error: None,
        });
        if let Some(e) = rhs.error {
            self.record::<()>(Err(e));
        }
        self.actions.push(format!("(make {class}{})", rhs.text));
        self
    }

    /// Adds a `(modify k …)` action; `k` is the 1-based CE designator.
    pub fn modify(mut self, designator: usize, f: impl FnOnce(RhsBuilder) -> RhsBuilder) -> Self {
        let rhs = f(RhsBuilder {
            text: String::new(),
            error: None,
        });
        if let Some(e) = rhs.error {
            self.record::<()>(Err(e));
        }
        self.actions
            .push(format!("(modify {designator}{})", rhs.text));
        self
    }

    /// Adds a `(remove k)` action; `k` is the 1-based CE designator.
    pub fn remove(mut self, designator: usize) -> Self {
        self.actions.push(format!("(remove {designator})"));
        self
    }

    /// Adds a `(write …)` action with symbolic words and variables
    /// (variables written as `<name>` in `words`).
    pub fn write(mut self, words: &[&str]) -> Self {
        let mut text = String::from("(write");
        for w in words {
            let _ = write!(text, " {w}");
        }
        text.push(')');
        self.actions.push(text);
        self
    }

    /// Adds a `(halt)` action.
    pub fn halt(mut self) -> Self {
        self.actions.push("(halt)".into());
        self
    }

    /// Renders the production and runs it through the parser into
    /// `program`.
    ///
    /// # Errors
    ///
    /// Returns any builder-recorded error or any parse/semantic error —
    /// exactly the ones textual source would get.
    pub fn build(self, program: &mut Program) -> Result<(), Error> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut src = format!("(p {}\n", self.name);
        for ce in &self.ces {
            let _ = writeln!(src, "  {ce}");
        }
        src.push_str("  -->\n");
        for a in &self.actions {
            let _ = writeln!(src, "  {a}");
        }
        src.push_str(")\n");
        Parser::new(&src)?.parse_into(program)
    }
}

/// Builds one condition element's attribute tests.
#[derive(Debug, Clone)]
pub struct CeBuilder {
    text: String,
    error: Option<Error>,
}

impl CeBuilder {
    fn push_checked(mut self, attr: &str, rest: String) -> Self {
        if self.error.is_none() {
            if let Err(e) = check_symbol(attr, "attribute") {
                self.error = Some(e);
            }
        }
        let _ = write!(self.text, " ^{attr} {rest}");
        self
    }

    /// `^attr constant-symbol`.
    pub fn eq_sym(self, attr: &str, value: &str) -> Self {
        if let Err(e) = check_symbol(value, "symbol") {
            return CeBuilder {
                error: self.error.or(Some(e)),
                ..self
            };
        }
        self.push_checked(attr, value.to_owned())
    }

    /// `^attr integer`.
    pub fn eq_int(self, attr: &str, value: i64) -> Self {
        self.push_checked(attr, value.to_string())
    }

    /// `^attr <name>` — bare variable (binding or equality occurrence).
    pub fn var(self, attr: &str, name: &str) -> Self {
        if let Err(e) = check_symbol(name, "variable name") {
            return CeBuilder {
                error: self.error.or(Some(e)),
                ..self
            };
        }
        self.push_checked(attr, format!("<{name}>"))
    }

    /// `^attr op integer` predicate test.
    pub fn pred_int(self, attr: &str, op: PredOp, value: i64) -> Self {
        self.push_checked(attr, format!("{op} {value}"))
    }

    /// `^attr op <name>` predicate test against a variable.
    pub fn pred_var(self, attr: &str, op: PredOp, name: &str) -> Self {
        if let Err(e) = check_symbol(name, "variable name") {
            return CeBuilder {
                error: self.error.or(Some(e)),
                ..self
            };
        }
        self.push_checked(attr, format!("{op} <{name}>"))
    }

    /// `^attr << v1 v2 … >>` symbolic disjunction.
    pub fn one_of(self, attr: &str, values: &[&str]) -> Self {
        for v in values {
            if let Err(e) = check_symbol(v, "symbol") {
                return CeBuilder {
                    error: self.error.or(Some(e)),
                    ..self
                };
            }
        }
        self.push_checked(attr, format!("<< {} >>", values.join(" ")))
    }
}

/// Builds the `^attr value` list of a `make`/`modify` action.
#[derive(Debug, Clone)]
pub struct RhsBuilder {
    text: String,
    error: Option<Error>,
}

impl RhsBuilder {
    fn push_checked(mut self, attr: &str, rest: String) -> Self {
        if self.error.is_none() {
            if let Err(e) = check_symbol(attr, "attribute") {
                self.error = Some(e);
            }
        }
        let _ = write!(self.text, " ^{attr} {rest}");
        self
    }

    /// `^attr constant-symbol`.
    pub fn set_sym(self, attr: &str, value: &str) -> Self {
        if let Err(e) = check_symbol(value, "symbol") {
            return RhsBuilder {
                error: self.error.or(Some(e)),
                ..self
            };
        }
        self.push_checked(attr, value.to_owned())
    }

    /// `^attr integer`.
    pub fn set_int(self, attr: &str, value: i64) -> Self {
        self.push_checked(attr, value.to_string())
    }

    /// `^attr <name>` — copy an LHS binding.
    pub fn set_var(self, attr: &str, name: &str) -> Self {
        if let Err(e) = check_symbol(name, "variable name") {
            return RhsBuilder {
                error: self.error.or(Some(e)),
                ..self
            };
        }
        self.push_checked(attr, format!("<{name}>"))
    }

    /// `^attr (compute <name> op constant)` — the common increment form.
    pub fn set_compute(self, attr: &str, var: &str, op: crate::ast::ArithOp, value: i64) -> Self {
        if let Err(e) = check_symbol(var, "variable name") {
            return RhsBuilder {
                error: self.error.or(Some(e)),
                ..self
            };
        }
        self.push_checked(attr, format!("(compute <{var}> {op} {value})"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ArithOp;
    use crate::parser::parse_program;

    #[test]
    fn builder_matches_parsed_text() {
        let mut built = Program::new();
        ProductionBuilder::new("r")
            .ce("a", |ce| ce.var("x", "v").pred_int("y", PredOp::Gt, 3))
            .neg_ce("veto", |ce| ce.var("x", "v"))
            .make("out", |m| {
                m.set_var("x", "v").set_compute("n", "v", ArithOp::Add, 1)
            })
            .remove(1)
            .build(&mut built)
            .unwrap();

        let parsed = parse_program(
            r#"
            (p r (a ^x <v> ^y > 3)
                 - (veto ^x <v>)
                 -->
                 (make out ^x <v> ^n (compute <v> + 1))
                 (remove 1))
            "#,
        )
        .unwrap();
        // Same printer normal form.
        let a = format!("{}", built.productions[0].display(&built.symbols));
        let b = format!("{}", parsed.productions[0].display(&parsed.symbols));
        assert_eq!(a, b);
    }

    #[test]
    fn builder_surfaces_semantic_errors() {
        let mut program = Program::new();
        // Designator out of range — caught by the shared parser path.
        let err = ProductionBuilder::new("bad")
            .ce("a", |ce| ce.eq_int("x", 1))
            .remove(5)
            .build(&mut program)
            .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn builder_rejects_unlexable_names() {
        let mut program = Program::new();
        let err = ProductionBuilder::new("r")
            .ce("cla ss", |ce| ce)
            .build(&mut program)
            .unwrap_err();
        assert!(err.to_string().contains("not a valid"));
        let err = ProductionBuilder::new("r")
            .ce("a", |ce| ce.eq_sym("x", "two words"))
            .build(&mut program)
            .unwrap_err();
        assert!(err.to_string().contains("not a valid"));
    }

    #[test]
    fn multiple_builds_extend_one_program() {
        let mut program = Program::new();
        for i in 0..3 {
            ProductionBuilder::new(&format!("r{i}"))
                .ce("a", |ce| ce.eq_int("x", i))
                .halt()
                .build(&mut program)
                .unwrap();
        }
        assert_eq!(program.productions.len(), 3);
        // Duplicate names rejected across builds.
        let err = ProductionBuilder::new("r0")
            .ce("a", |ce| ce)
            .build(&mut program)
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn one_of_and_write() {
        let mut program = Program::new();
        ProductionBuilder::new("r")
            .ce("light", |ce| ce.one_of("color", &["red", "amber"]))
            .write(&["stop"])
            .build(&mut program)
            .unwrap();
        let printed = format!("{}", program.productions[0].display(&program.symbols));
        assert!(printed.contains("<< red amber >>"));
        assert!(printed.contains("(write stop)"));
    }
}
