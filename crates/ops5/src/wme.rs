//! Working memory: the database of assertions productions match against.

use std::fmt;

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::symbol::{SymbolId, SymbolTable};
use crate::value::Value;

/// A working memory element: a class plus attribute–value pairs.
///
/// Attributes are kept sorted by attribute symbol so lookup is a binary
/// search and structural equality is canonical.
///
/// # Examples
///
/// ```
/// use ops5::{SymbolTable, Wme, Value};
///
/// let mut syms = SymbolTable::new();
/// let class = syms.intern("block");
/// let color = syms.intern("color");
/// let red = syms.intern("red");
/// let wme = Wme::new(class, vec![(color, Value::Sym(red))]);
/// assert_eq!(wme.get(color), Some(Value::Sym(red)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Wme {
    class: SymbolId,
    attrs: Vec<(SymbolId, Value)>,
}

impl Wme {
    /// Creates a WME, sorting the attribute list. A duplicated attribute
    /// keeps its last value, matching OPS5 `make` semantics where later
    /// `^attr value` pairs override earlier ones.
    pub fn new(class: SymbolId, mut attrs: Vec<(SymbolId, Value)>) -> Self {
        attrs.sort_by_key(|(a, _)| *a);
        // Keep the last write for each attribute.
        let mut dedup: Vec<(SymbolId, Value)> = Vec::with_capacity(attrs.len());
        for (a, v) in attrs {
            match dedup.last_mut() {
                Some((pa, pv)) if *pa == a => *pv = v,
                _ => dedup.push((a, v)),
            }
        }
        Wme {
            class,
            attrs: dedup,
        }
    }

    /// The class symbol of this element.
    pub fn class(&self) -> SymbolId {
        self.class
    }

    /// The value of `attr`, if present.
    pub fn get(&self, attr: SymbolId) -> Option<Value> {
        self.attrs
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| self.attrs[i].1)
    }

    /// Iterates over `(attribute, value)` pairs in attribute order.
    pub fn attrs(&self) -> impl Iterator<Item = (SymbolId, Value)> + '_ {
        self.attrs.iter().copied()
    }

    /// Number of attribute–value pairs.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the element carries no attributes (class only).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Returns a copy with the given attributes overridden (the `modify`
    /// action applies this, then re-asserts the element).
    pub fn modified(&self, updates: &[(SymbolId, Value)]) -> Wme {
        let mut attrs = self.attrs.clone();
        for &(a, v) in updates {
            match attrs.binary_search_by_key(&a, |(x, _)| *x) {
                Ok(i) => attrs[i].1 = v,
                Err(i) => attrs.insert(i, (a, v)),
            }
        }
        Wme {
            class: self.class,
            attrs,
        }
    }

    /// Serializes the element into `w` (class, then sorted attribute
    /// pairs). The canonical attribute order makes the encoding
    /// deterministic for equal elements.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u32(self.class.index() as u32);
        w.usize(self.attrs.len());
        for &(attr, value) in &self.attrs {
            w.u32(attr.index() as u32);
            value.encode(w);
        }
    }

    /// Deserializes an element written by [`Wme::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or malformed input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Wme, CodecError> {
        let class = SymbolId::from_index(r.u32()? as usize);
        let n = r.usize()?;
        let mut attrs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let attr = SymbolId::from_index(r.u32()? as usize);
            let value = Value::decode(r)?;
            attrs.push((attr, value));
        }
        Ok(Wme::new(class, attrs))
    }

    /// Renders the element in OPS5 surface syntax.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Wme, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "({}", self.1.name(self.0.class))?;
                for (a, v) in &self.0.attrs {
                    write!(f, " ^{} {}", self.1.name(*a), v.display(self.1))?;
                }
                write!(f, ")")
            }
        }
        D(self, symbols)
    }
}

/// A stable handle to a WME inside a [`WorkingMemory`].
///
/// Handles are never reused within one working memory's lifetime, so a
/// dangling `WmeId` is detectable (`get` returns `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WmeId(pub(crate) u32);

impl WmeId {
    /// Raw index, useful for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from [`WmeId::index`].
    pub fn from_index(i: usize) -> Self {
        WmeId(i as u32)
    }
}

impl fmt::Display for WmeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// The recency time tag OPS5 attaches to every assertion.
///
/// Conflict resolution (LEX/MEA) is defined entirely in terms of these
/// tags: a larger tag means a more recent assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeTag(pub u64);

impl fmt::Display for TimeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The working memory: an arena of live WMEs with time tags.
///
/// `add` assigns a fresh [`WmeId`] and the next [`TimeTag`]; `remove`
/// tombstones the slot. Matchers receive `&WorkingMemory` so tokens can
/// store compact `WmeId`s and resolve them on demand.
#[derive(Debug, Clone, Default)]
pub struct WorkingMemory {
    slots: Vec<Option<(Wme, TimeTag)>>,
    next_tag: u64,
    live: usize,
}

impl WorkingMemory {
    /// Creates an empty working memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asserts `wme`, returning its handle and recency tag.
    pub fn add(&mut self, wme: Wme) -> (WmeId, TimeTag) {
        self.next_tag += 1;
        let tag = TimeTag(self.next_tag);
        let id = WmeId(self.slots.len() as u32);
        self.slots.push(Some((wme, tag)));
        self.live += 1;
        (id, tag)
    }

    /// Retracts `id`. Returns the element if it was live.
    pub fn remove(&mut self, id: WmeId) -> Option<Wme> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        let taken = slot.take();
        if taken.is_some() {
            self.live -= 1;
        }
        taken.map(|(w, _)| w)
    }

    /// The element behind `id`, if still live.
    pub fn get(&self, id: WmeId) -> Option<&Wme> {
        self.slots.get(id.0 as usize)?.as_ref().map(|(w, _)| w)
    }

    /// The recency tag of `id`, if still live.
    pub fn time_tag(&self, id: WmeId) -> Option<TimeTag> {
        self.slots.get(id.0 as usize)?.as_ref().map(|(_, t)| *t)
    }

    /// Number of live elements (the paper's stable working-memory size
    /// `s` in the Section 3.1 cost model).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no elements are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over live `(id, wme, tag)` triples in assertion order.
    pub fn iter(&self) -> impl Iterator<Item = (WmeId, &Wme, TimeTag)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|(w, t)| (WmeId(i as u32), w, *t)))
    }

    /// Iterates over live WMEs of one class, the most common query in
    /// application code inspecting results.
    ///
    /// # Examples
    ///
    /// ```
    /// use ops5::{SymbolTable, Wme, WorkingMemory};
    ///
    /// let mut syms = SymbolTable::new();
    /// let block = syms.intern("block");
    /// let goal = syms.intern("goal");
    /// let mut wm = WorkingMemory::new();
    /// wm.add(Wme::new(block, vec![]));
    /// wm.add(Wme::new(goal, vec![]));
    /// wm.add(Wme::new(block, vec![]));
    /// assert_eq!(wm.by_class(block).count(), 2);
    /// ```
    pub fn by_class(&self, class: SymbolId) -> impl Iterator<Item = (WmeId, &Wme)> {
        self.iter()
            .filter(move |(_, w, _)| w.class() == class)
            .map(|(id, w, _)| (id, w))
    }

    /// Serializes the whole working memory — including tombstoned slots
    /// and the time-tag counter — into a versioned snapshot.
    ///
    /// Restoring the snapshot and replaying the same `add`/`remove`
    /// sequence reproduces identical [`WmeId`]s and [`TimeTag`]s, which
    /// is what makes snapshot + write-ahead-log replay a faithful
    /// recovery strategy (`psm-fault`).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_header(*b"PSMW", 1);
        w.u64(self.next_tag);
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                None => w.u8(0),
                Some((wme, tag)) => {
                    w.u8(1);
                    w.u64(tag.0);
                    wme.encode(&mut w);
                }
            }
        }
        w.finish()
    }

    /// Rebuilds a working memory from [`WorkingMemory::snapshot_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on bad magic, unsupported version, or
    /// malformed data.
    pub fn restore_snapshot(bytes: &[u8]) -> Result<WorkingMemory, CodecError> {
        let (mut r, version) = ByteReader::with_header(bytes, *b"PSMW")?;
        if version != 1 {
            return Err(CodecError::BadVersion {
                supported: 1,
                found: version,
            });
        }
        let next_tag = r.u64()?;
        let n = r.usize()?;
        let mut slots = Vec::with_capacity(n.min(1 << 20));
        let mut live = 0usize;
        for _ in 0..n {
            match r.u8()? {
                0 => slots.push(None),
                1 => {
                    let tag = TimeTag(r.u64()?);
                    let wme = Wme::decode(&mut r)?;
                    live += 1;
                    slots.push(Some((wme, tag)));
                }
                _ => return Err(CodecError::Invalid("bad working-memory slot tag")),
            }
        }
        Ok(WorkingMemory {
            slots,
            next_tag,
            live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn fixture() -> (SymbolTable, Wme) {
        let mut t = SymbolTable::new();
        let class = t.intern("block");
        let color = t.intern("color");
        let size = t.intern("size");
        let red = t.intern("red");
        let wme = Wme::new(class, vec![(size, Value::Int(3)), (color, Value::Sym(red))]);
        (t, wme)
    }

    #[test]
    fn attrs_are_sorted_and_deduped() {
        let mut t = SymbolTable::new();
        let c = t.intern("c");
        let a1 = t.intern("a1");
        let a2 = t.intern("a2");
        let w = Wme::new(
            c,
            vec![
                (a2, Value::Int(1)),
                (a1, Value::Int(2)),
                (a2, Value::Int(9)),
            ],
        );
        assert_eq!(w.len(), 2);
        assert_eq!(w.get(a2), Some(Value::Int(9)), "last write wins");
        let order: Vec<SymbolId> = w.attrs().map(|(a, _)| a).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn get_missing_attr_is_none() {
        let (mut t, wme) = fixture();
        let missing = t.intern("weight");
        assert_eq!(wme.get(missing), None);
    }

    #[test]
    fn modified_overrides_and_inserts() {
        let (mut t, wme) = fixture();
        let color = t.lookup("color").unwrap();
        let weight = t.intern("weight");
        let blue = t.intern("blue");
        let m = wme.modified(&[(color, Value::Sym(blue)), (weight, Value::Int(10))]);
        assert_eq!(m.get(color), Some(Value::Sym(blue)));
        assert_eq!(m.get(weight), Some(Value::Int(10)));
        // The original is untouched.
        assert_eq!(wme.get(weight), None);
        assert_eq!(m.class(), wme.class());
    }

    #[test]
    fn working_memory_add_remove_roundtrip() {
        let (_t, wme) = fixture();
        let mut wm = WorkingMemory::new();
        let (id, tag) = wm.add(wme.clone());
        assert_eq!(wm.len(), 1);
        assert_eq!(wm.get(id), Some(&wme));
        assert_eq!(wm.time_tag(id), Some(tag));
        let removed = wm.remove(id);
        assert_eq!(removed, Some(wme));
        assert_eq!(wm.len(), 0);
        assert_eq!(wm.get(id), None);
        assert_eq!(wm.time_tag(id), None);
        // Double-remove is a no-op.
        assert_eq!(wm.remove(id), None);
        assert_eq!(wm.len(), 0);
    }

    #[test]
    fn time_tags_are_strictly_increasing() {
        let (_t, wme) = fixture();
        let mut wm = WorkingMemory::new();
        let (_, t1) = wm.add(wme.clone());
        let (id, t2) = wm.add(wme.clone());
        wm.remove(id);
        let (_, t3) = wm.add(wme);
        assert!(t1 < t2 && t2 < t3, "tags never reused even after removal");
    }

    #[test]
    fn iter_skips_tombstones() {
        let (_t, wme) = fixture();
        let mut wm = WorkingMemory::new();
        let (a, _) = wm.add(wme.clone());
        let (b, _) = wm.add(wme.clone());
        let (c, _) = wm.add(wme);
        wm.remove(b);
        let ids: Vec<WmeId> = wm.iter().map(|(i, _, _)| i).collect();
        assert_eq!(ids, vec![a, c]);
    }

    #[test]
    fn by_class_filters_and_respects_removals() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let mut wm = WorkingMemory::new();
        let (id1, _) = wm.add(Wme::new(a, vec![]));
        wm.add(Wme::new(b, vec![]));
        wm.add(Wme::new(a, vec![]));
        assert_eq!(wm.by_class(a).count(), 2);
        assert_eq!(wm.by_class(b).count(), 1);
        wm.remove(id1);
        assert_eq!(wm.by_class(a).count(), 1);
        let missing = t.intern("nothing");
        assert_eq!(wm.by_class(missing).count(), 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_slots_tags_and_future_ids() {
        let (_t, wme) = fixture();
        let mut wm = WorkingMemory::new();
        let (a, _) = wm.add(wme.clone());
        let (b, _) = wm.add(wme.clone());
        wm.add(wme.clone());
        wm.remove(b);

        let bytes = wm.snapshot_bytes();
        let mut restored = WorkingMemory::restore_snapshot(&bytes).unwrap();
        assert_eq!(restored.len(), wm.len());
        assert_eq!(restored.get(a), wm.get(a));
        assert_eq!(restored.get(b), None, "tombstone survives the roundtrip");
        assert_eq!(restored.snapshot_bytes(), bytes, "canonical encoding");

        // Replaying the same future operations yields identical ids/tags.
        let (id1, t1) = wm.add(wme.clone());
        let (id2, t2) = restored.add(wme);
        assert_eq!(id1, id2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn restore_rejects_wrong_version() {
        let wm = WorkingMemory::new();
        let mut bytes = wm.snapshot_bytes();
        bytes[4] = 99; // bump the version field
        assert!(matches!(
            WorkingMemory::restore_snapshot(&bytes),
            Err(crate::codec::CodecError::BadVersion { .. })
        ));
    }

    #[test]
    fn display_round_trips_syntax_shape() {
        let (t, wme) = fixture();
        let s = format!("{}", wme.display(&t));
        assert!(s.starts_with("(block"));
        assert!(s.contains("^color red"));
        assert!(s.contains("^size 3"));
        assert!(s.ends_with(')'));
    }
}
