//! Human-readable explanations of why an instantiation matched.
//!
//! Production-system debugging is archaeology: *why did this rule fire?*
//! [`explain_instantiation`] re-derives the match — which WME satisfied
//! which condition element, what every variable is bound to, and why
//! each negated condition element was unblocked — using the same
//! reference semantics the matchers are verified against.

use std::fmt::Write as _;

use crate::ast::{match_and_bind, Program};
use crate::error::Error;
use crate::matcher::Instantiation;
use crate::value::Value;
use crate::wme::WorkingMemory;

/// Renders a step-by-step explanation of `inst` against the current
/// working memory.
///
/// # Errors
///
/// Returns [`Error::Runtime`] if the instantiation does not actually
/// match (stale WMEs, wrong production) — which makes this function
/// double as a conflict-set consistency check.
///
/// # Examples
///
/// ```
/// use ops5::{explain_instantiation, parse_program, parse_wme, Interpreter};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = parse_program(
///     "(p rule (goal ^color <c>) (block ^color <c>) --> (halt))",
/// )?;
/// let matcher = /* any matcher */
/// #   baselines_stub::Stub::new(&program);
/// # mod baselines_stub {
/// #     use ops5::*;
/// #     #[derive(Debug)]
/// #     pub struct Stub { program: Program, live: Vec<WmeId> }
/// #     impl Stub { pub fn new(p: &Program) -> Self { Stub { program: p.clone(), live: vec![] } } }
/// #     impl Matcher for Stub {
/// #         fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
/// #             self.live.push(id);
/// #             if self.live.len() == 2 {
/// #                 MatchDelta { added: vec![Instantiation::new(ProductionId(0), self.live.clone())], removed: vec![] }
/// #             } else { MatchDelta::new() }
/// #         }
/// #         fn remove_wme(&mut self, _: &WorkingMemory, _: WmeId) -> MatchDelta { MatchDelta::new() }
/// #         fn algorithm_name(&self) -> &'static str { "stub" }
/// #     }
/// # }
/// let mut interp = Interpreter::new(program, matcher);
/// let goal = parse_wme("(goal ^color red)", interp.symbols_mut())?;
/// let block = parse_wme("(block ^color red)", interp.symbols_mut())?;
/// interp.insert(goal);
/// interp.insert(block);
/// let inst = interp.conflict_set().iter().next().unwrap().clone();
/// let text = explain_instantiation(
///     interp.program(),
///     interp.working_memory(),
///     &inst,
/// )?;
/// assert!(text.contains("<c> = red"));
/// # Ok(())
/// # }
/// ```
pub fn explain_instantiation(
    program: &Program,
    wm: &WorkingMemory,
    inst: &Instantiation,
) -> Result<String, Error> {
    let production = program
        .productions
        .get(inst.production.index())
        .ok_or_else(|| Error::runtime(format!("unknown production {}", inst.production)))?;
    let mut bindings: Vec<Option<Value>> = vec![None; production.variables.len()];
    let mut out = String::new();
    let _ = writeln!(out, "(p {}", production.name);

    let mut pos = 0usize;
    for (idx, ce) in production.ces.iter().enumerate() {
        if ce.negated {
            // Report why the negation is unblocked, or name the blocker.
            let blocker = wm.by_class(ce.class).find(|(_, wme)| {
                let mut local = bindings.clone();
                match_and_bind(ce, wme, &mut local)
            });
            match blocker {
                None => {
                    let _ = writeln!(
                        out,
                        "  CE {}: - ({} …)  unblocked: no matching WME",
                        idx + 1,
                        program.symbols.name(ce.class)
                    );
                }
                Some((id, wme)) => {
                    return Err(Error::runtime(format!(
                        "negated CE {} is blocked by {id}: {}",
                        idx + 1,
                        wme.display(&program.symbols)
                    )));
                }
            }
        } else {
            let id = *inst
                .wmes
                .get(pos)
                .ok_or_else(|| Error::runtime("instantiation has fewer WMEs than positive CEs"))?;
            pos += 1;
            let wme = wm
                .get(id)
                .ok_or_else(|| Error::runtime(format!("{id} is no longer in working memory")))?;
            if !match_and_bind(ce, wme, &mut bindings) {
                return Err(Error::runtime(format!(
                    "{id} does not satisfy CE {} — stale instantiation",
                    idx + 1
                )));
            }
            let _ = writeln!(
                out,
                "  CE {}: matched {id} = {}",
                idx + 1,
                wme.display(&program.symbols)
            );
        }
    }

    let bound: Vec<String> = production
        .variables
        .iter()
        .zip(&bindings)
        .filter_map(|(name, v)| v.map(|v| format!("<{name}> = {}", v.display(&program.symbols))))
        .collect();
    if bound.is_empty() {
        let _ = writeln!(out, "  (no variable bindings)");
    } else {
        let _ = writeln!(out, "  bindings: {}", bound.join(", "));
    }
    out.push(')');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Instantiation;
    use crate::parser::{parse_program, parse_wme};

    fn fixture() -> (Program, WorkingMemory, Vec<crate::wme::WmeId>) {
        let mut program = parse_program(
            r#"
            (p pick
               (goal ^type find-blk ^color <c>)
               - (veto ^color <c>)
               (block ^id <i> ^color <c>)
               -->
               (remove 3))
            "#,
        )
        .unwrap();
        // Intern WME symbols into the program's own table so `display`
        // can resolve values like `red` that no rule mentions.
        let mut wm = WorkingMemory::new();
        let (g, _) =
            wm.add(parse_wme("(goal ^type find-blk ^color red)", &mut program.symbols).unwrap());
        let (b, _) = wm.add(parse_wme("(block ^id 7 ^color red)", &mut program.symbols).unwrap());
        (program, wm, vec![g, b])
    }

    #[test]
    fn explains_a_valid_match() {
        let (program, wm, ids) = fixture();
        let inst = Instantiation::new(crate::ast::ProductionId(0), ids);
        let text = explain_instantiation(&program, &wm, &inst).unwrap();
        assert!(text.contains("(p pick"), "{text}");
        assert!(text.contains("CE 1: matched w0"));
        assert!(text.contains("CE 2: - (veto …)  unblocked"));
        assert!(text.contains("CE 3: matched w1"));
        assert!(text.contains("<c> = red"));
        assert!(text.contains("<i> = 7"));
    }

    #[test]
    fn detects_blocked_negation() {
        let (mut program, mut wm, ids) = fixture();
        wm.add(parse_wme("(veto ^color red)", &mut program.symbols).unwrap());
        let inst = Instantiation::new(crate::ast::ProductionId(0), ids);
        let err = explain_instantiation(&program, &wm, &inst).unwrap_err();
        assert!(err.to_string().contains("blocked by"), "{err}");
    }

    #[test]
    fn detects_stale_wmes_and_mismatches() {
        let (program, mut wm, ids) = fixture();
        // Retract the block: stale instantiation.
        wm.remove(ids[1]);
        let inst = Instantiation::new(crate::ast::ProductionId(0), ids.clone());
        let err = explain_instantiation(&program, &wm, &inst).unwrap_err();
        assert!(err.to_string().contains("no longer in working memory"));

        // Wrong wme order: CE mismatch.
        let (program, wm, ids) = fixture();
        let swapped = Instantiation::new(crate::ast::ProductionId(0), vec![ids[1], ids[0]]);
        let err = explain_instantiation(&program, &wm, &swapped).unwrap_err();
        assert!(err.to_string().contains("does not satisfy"));
    }

    #[test]
    fn unknown_production_is_an_error() {
        let (program, wm, ids) = fixture();
        let inst = Instantiation::new(crate::ast::ProductionId(9), ids);
        assert!(explain_instantiation(&program, &wm, &inst).is_err());
    }
}
