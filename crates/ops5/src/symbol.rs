//! Interned symbols.
//!
//! OPS5 programs are made of symbolic constants (`goal`, `find-blk`,
//! attribute names like `^color`). Interning them once at parse time lets
//! every later comparison — the hot inner loop of match — be a single
//! integer compare, which is also what the paper's cost model assumes
//! ("simple loads, compares, and branches", Section 5).

use std::collections::HashMap;
use std::fmt;

/// A handle to an interned symbol.
///
/// Cheap to copy and compare; resolves to its text through the
/// [`SymbolTable`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub(crate) u32);

impl SymbolId {
    /// Returns the raw index of this symbol in its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `SymbolId` from a raw index.
    ///
    /// Only meaningful for indices previously obtained from
    /// [`SymbolId::index`] on the same table.
    pub fn from_index(index: usize) -> Self {
        SymbolId(index as u32)
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An interning table mapping symbol text to [`SymbolId`]s and back.
///
/// # Examples
///
/// ```
/// use ops5::SymbolTable;
///
/// let mut syms = SymbolTable::new();
/// let a = syms.intern("goal");
/// let b = syms.intern("goal");
/// assert_eq!(a, b);
/// assert_eq!(syms.name(a), "goal");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    ids: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = SymbolId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned symbol without inserting.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.ids.get(name).copied()
    }

    /// Returns the text of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SymbolId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut t = SymbolTable::new();
        assert!(t.lookup("x").is_none());
        let x = t.intern("x");
        assert_eq!(t.lookup("x"), Some(x));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn name_round_trips() {
        let mut t = SymbolTable::new();
        for s in ["goal", "block", "^color", "find-blk"] {
            let id = t.intern(s);
            assert_eq!(t.name(id), s);
        }
    }

    #[test]
    fn iter_preserves_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn from_index_round_trips() {
        let mut t = SymbolTable::new();
        let id = t.intern("q");
        assert_eq!(SymbolId::from_index(id.index()), id);
    }

    #[test]
    fn display_is_nonempty() {
        let mut t = SymbolTable::new();
        let id = t.intern("z");
        assert!(!format!("{id}").is_empty());
        assert!(!format!("{id:?}").is_empty());
    }
}
