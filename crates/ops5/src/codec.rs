//! A tiny self-describing binary codec for snapshots and write-ahead
//! logs.
//!
//! The workspace is intentionally zero-dependency, so checkpoint files
//! (`psm-fault`) and Rete state snapshots (`rete::snapshot`) share this
//! hand-rolled little-endian format instead of serde. Every top-level
//! artifact starts with a four-byte magic and a `u32` version so stale
//! files fail loudly instead of deserializing garbage.
//!
//! Encoding is canonical: writers must emit collections in a
//! deterministic order (sorted keys for hash maps), which makes
//! byte-for-byte comparison of two snapshots a valid state-equality
//! check — the property the recovery audit in `psm-fault` relies on.

use std::fmt;

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// Magic bytes did not match the expected artifact type.
    BadMagic {
        /// The magic the reader expected.
        expected: [u8; 4],
        /// The magic actually found.
        found: [u8; 4],
    },
    /// The artifact version is not one this build can read.
    BadVersion {
        /// Highest version this build understands.
        supported: u32,
        /// Version found in the artifact.
        found: u32,
    },
    /// A structurally invalid value (bad enum tag, length overflow, …).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of snapshot data"),
            CodecError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::BadVersion { supported, found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads <= {supported})"
            ),
            CodecError::Invalid(what) => write!(f, "invalid snapshot data: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Little-endian binary writer over a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer that starts with `magic` and `version`.
    pub fn with_header(magic: [u8; 4], version: u32) -> Self {
        let mut w = Self::new();
        w.buf.extend_from_slice(&magic);
        w.u32(version);
        w
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` (lengths, indices).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Little-endian binary reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Creates a reader, checking the four-byte `magic` and returning
    /// the version that follows it.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadMagic`] on mismatch, [`CodecError::UnexpectedEof`]
    /// if the buffer is shorter than the header.
    pub fn with_header(buf: &'a [u8], magic: [u8; 4]) -> Result<(Self, u32), CodecError> {
        let mut r = Self::new(buf);
        let found = r.bytes4()?;
        if found != magic {
            return Err(CodecError::BadMagic {
                expected: magic,
                found,
            });
        }
        let version = r.u32()?;
        Ok((r, version))
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the reader consumed the entire buffer.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn bytes4(&mut self) -> Result<[u8; 4], CodecError> {
        let b = self.take(4)?;
        Ok([b[0], b[1], b[2], b[3]])
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Reads an `i32`.
    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(self.u32()? as i32)
    }

    /// Reads a `usize` written by [`ByteWriter::usize`], rejecting
    /// lengths that cannot fit (or that exceed the remaining buffer, a
    /// cheap corruption guard for collection lengths).
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid("length overflows usize"))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("non-UTF-8 string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = ByteWriter::with_header(*b"TEST", 3);
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.i32(-1);
        w.str("hello");
        let bytes = w.finish();

        let (mut r, version) = ByteReader::with_header(&bytes, *b"TEST").unwrap();
        assert_eq!(version, 3);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.i32().unwrap(), -1);
        assert_eq!(r.str().unwrap(), "hello");
        assert!(r.is_done());
    }

    #[test]
    fn bad_magic_and_eof_are_reported() {
        let w = ByteWriter::with_header(*b"AAAA", 1);
        let bytes = w.finish();
        assert!(matches!(
            ByteReader::with_header(&bytes, *b"BBBB"),
            Err(CodecError::BadMagic { .. })
        ));
        let (mut r, _) = ByteReader::with_header(&bytes, *b"AAAA").unwrap();
        assert_eq!(r.u8(), Err(CodecError::UnexpectedEof));
    }
}
