//! Parser for the OPS5 surface syntax.
//!
//! Grammar (Section 2.1 of the paper):
//!
//! ```text
//! program    := production*
//! production := '(' 'p' name ce+ '-->' action* ')'
//! ce         := ['-'] '(' class ('^attr' value-test)* ')'
//! value-test := const | <var> | pred (const | <var>)
//!             | '{' value-test+ '}' | '<<' const+ '>>'
//! action     := '(' 'make' class ('^attr' rhs-arg)* ')'
//!             | '(' 'remove' int+ ')'
//!             | '(' 'modify' int ('^attr' rhs-arg)* ')'
//!             | '(' 'write' rhs-arg* ')'
//!             | '(' 'halt' ')'
//! ```
//!
//! Element designators in `remove`/`modify` are 1-based over *all*
//! condition elements and must name a non-negated one, as in OPS5.

use std::collections::HashMap;

use crate::ast::{
    Action, ArithOp, BindingSite, ComputeExpr, ComputeOperand, ConditionElement, PredOp,
    Production, ProductionId, Program, RhsArg, TestArg, ValueTest, VarId,
};
use crate::error::Error;
use crate::lexer::{Lexer, PredToken, Token, TokenKind};
use crate::symbol::SymbolTable;
use crate::value::Value;
use crate::wme::Wme;

/// Parses a whole OPS5 program.
///
/// # Errors
///
/// Returns [`Error`] on lexical, syntactic, or semantic problems
/// (duplicate production names, bad element designators, RHS variables
/// that are never bound by a positive condition element, …).
///
/// # Examples
///
/// ```
/// let program = ops5::parse_program(
///     "(p done (goal ^state finished) --> (halt))",
/// )?;
/// assert_eq!(program.productions.len(), 1);
/// # Ok::<(), ops5::Error>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, Error> {
    let mut program = Program::new();
    Parser::new(src)?.parse_into(&mut program)?;
    Ok(program)
}

/// Like [`parse_program`], but skips the `literalize` attribute check
/// and the RHS variable-binding check.
///
/// Real OPS5 (and [`parse_program`]) hard-rejects a program that tests
/// or writes an attribute not declared by its class's `literalize`, or
/// whose RHS references a variable never bound by a positive condition
/// element or an earlier `bind`. Analysis tools such as `psmlint` want
/// to *report* those uses as diagnostics rather than refuse to look at
/// the program at all, so this entry point parses the same grammar but
/// leaves the declarations in [`Program::literalizations`] unvalidated
/// and unbound RHS variables with an empty binding site (exactly the
/// shape PSM001 flags).
///
/// # Errors
///
/// Returns [`Error`] for lexical, parse, and all other semantic errors —
/// only the two checks above are skipped.
pub fn parse_program_lenient(src: &str) -> Result<Program, Error> {
    let mut program = Program::new();
    let mut parser = Parser::new(src)?;
    parser.lenient = true;
    parser.parse_forms(&mut program)?;
    Ok(program)
}

/// Parses one WME literal, e.g. `(block ^color red ^size 3)`, interning
/// symbols into `symbols`.
///
/// # Errors
///
/// Returns [`Error`] if the literal is malformed or contains variables.
pub fn parse_wme(src: &str, symbols: &mut SymbolTable) -> Result<Wme, Error> {
    let mut wmes = parse_wmes(src, symbols)?;
    match wmes.len() {
        1 => Ok(wmes.pop().expect("length checked")),
        n => Err(Error::Parse {
            line: 1,
            message: format!("expected exactly one WME literal, found {n}"),
        }),
    }
}

/// Parses a sequence of WME literals (e.g. an initial working memory).
///
/// # Errors
///
/// Returns [`Error`] if any literal is malformed.
pub fn parse_wmes(src: &str, symbols: &mut SymbolTable) -> Result<Vec<Wme>, Error> {
    let mut parser = Parser::new(src)?;
    let mut out = Vec::new();
    while !parser.at_end() {
        out.push(parser.parse_wme_literal(symbols)?);
    }
    Ok(out)
}

/// A recursive-descent parser over a token stream.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// When set, defer semantic checks that lints re-report (unbound RHS
    /// variables); see [`parse_program_lenient`].
    lenient: bool,
}

/// Per-production parsing state: variable interning and occurrence
/// tracking used to compute binding sites.
#[derive(Debug, Default)]
struct ProdCtx {
    var_ids: HashMap<String, VarId>,
    variables: Vec<String>,
    /// (ce index over all CEs, positive ce index, attr) of the first bare
    /// occurrence of each variable in a positive CE.
    first_bare: Vec<Option<BindingSite>>,
    /// Variables bound (so far) by RHS `bind` actions.
    rhs_bound: std::collections::HashSet<VarId>,
}

impl ProdCtx {
    fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_ids.get(name) {
            return v;
        }
        let v = VarId(self.variables.len() as u16);
        self.variables.push(name.to_owned());
        self.var_ids.insert(name.to_owned(), v);
        self.first_bare.push(None);
        v
    }
}

impl Parser {
    /// Creates a parser by tokenizing `src`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Lex`] if tokenization fails.
    pub fn new(src: &str) -> Result<Self, Error> {
        Ok(Parser {
            tokens: Lexer::tokenize(src)?,
            pos: 0,
            lenient: false,
        })
    }

    /// True when all tokens have been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), Error> {
        match self.bump() {
            Some(ref k) if k == kind => Ok(()),
            Some(other) => Err(self.err(format!("expected {what}, found {other:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_symbol(&mut self, what: &str) -> Result<String, Error> {
        match self.bump() {
            Some(TokenKind::Symbol(s)) => Ok(s),
            Some(other) => Err(self.err(format!("expected {what}, found {other:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    /// Parses every top-level form (`p` productions and `literalize`
    /// declarations) in the stream into `program`.
    ///
    /// # Errors
    ///
    /// Returns the first parse or semantic error encountered, including
    /// uses of undeclared attributes on literalized classes.
    pub fn parse_into(&mut self, program: &mut Program) -> Result<(), Error> {
        self.parse_forms(program)?;
        validate_literalizations(program)
    }

    /// [`Parser::parse_into`] without the final `literalize` attribute
    /// validation (the lenient path behind
    /// [`parse_program_lenient`]).
    fn parse_forms(&mut self, program: &mut Program) -> Result<(), Error> {
        while !self.at_end() {
            self.expect(&TokenKind::LParen, "`(` starting a top-level form")?;
            let head = self.expect_symbol("`p` or `literalize`")?;
            match head.as_str() {
                "p" => {
                    let production = self.parse_production(program)?;
                    if program
                        .productions
                        .iter()
                        .any(|p| p.name == production.name)
                    {
                        return Err(Error::Semantic {
                            production: production.name,
                            message: "duplicate production name".into(),
                        });
                    }
                    program.productions.push(production);
                }
                "literalize" => self.parse_literalize(program)?,
                other => {
                    return Err(self.err(format!(
                        "expected `p` or `literalize` at top level, found `{other}`"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Parses `(literalize class attr …)` after the head symbol.
    fn parse_literalize(&mut self, program: &mut Program) -> Result<(), Error> {
        let class_name = self.expect_symbol("class for `literalize`")?;
        let class = program.symbols.intern(&class_name);
        let mut attrs = Vec::new();
        loop {
            match self.bump() {
                Some(TokenKind::RParen) => break,
                Some(TokenKind::Symbol(a)) => attrs.push(program.symbols.intern(&a)),
                other => {
                    return Err(self.err(format!(
                        "expected an attribute name in `literalize`, found {other:?}"
                    )))
                }
            }
        }
        program
            .literalizations
            .entry(class)
            .or_default()
            .extend(attrs);
        Ok(())
    }

    /// Parses a production body after `(p` has been consumed.
    fn parse_production(&mut self, program: &mut Program) -> Result<Production, Error> {
        let name = self.expect_symbol("production name")?;

        let mut ctx = ProdCtx::default();
        let mut ces = Vec::new();
        loop {
            match self.peek() {
                Some(TokenKind::Arrow) => {
                    self.bump();
                    break;
                }
                Some(TokenKind::Minus) | Some(TokenKind::LParen) => {
                    ces.push(self.parse_ce(program, &mut ctx, &ces)?);
                }
                _ => return Err(self.err("expected a condition element or `-->`")),
            }
        }
        if !ces.iter().any(|ce: &ConditionElement| !ce.negated) {
            return Err(Error::Semantic {
                production: name,
                message: "a production needs at least one positive condition element".into(),
            });
        }

        let mut actions = Vec::new();
        while self.peek() != Some(&TokenKind::RParen) {
            self.parse_action(program, &mut ctx, &ces, &name, &mut actions)?;
        }
        self.expect(&TokenKind::RParen, "`)` closing the production")?;

        let specificity = ces.iter().map(ConditionElement::test_count).sum();
        Ok(Production {
            name,
            id: ProductionId(program.productions.len() as u32),
            ces,
            actions,
            variables: ctx.variables,
            binding_sites: ctx.first_bare,
            specificity,
        })
    }

    fn parse_ce(
        &mut self,
        program: &mut Program,
        ctx: &mut ProdCtx,
        earlier: &[ConditionElement],
    ) -> Result<ConditionElement, Error> {
        let negated = if self.peek() == Some(&TokenKind::Minus) {
            self.bump();
            true
        } else {
            false
        };
        self.expect(&TokenKind::LParen, "`(` starting a condition element")?;
        let class_name = self.expect_symbol("condition-element class")?;
        let class = program.symbols.intern(&class_name);

        let positive_index = earlier.iter().filter(|ce| !ce.negated).count();
        let mut tests = Vec::new();
        loop {
            match self.bump() {
                Some(TokenKind::RParen) => break,
                Some(TokenKind::Caret(attr_name)) => {
                    let attr = program.symbols.intern(&attr_name);
                    let test = self.parse_value_test(program, ctx)?;
                    if !negated {
                        record_bare_bindings(&test, ctx, positive_index, attr);
                    }
                    tests.push((attr, test));
                }
                Some(other) => {
                    return Err(self.err(format!(
                        "expected `^attr` or `)` in condition element, found {other:?}"
                    )))
                }
                None => return Err(self.err("unterminated condition element")),
            }
        }
        Ok(ConditionElement {
            class,
            tests,
            negated,
        })
    }

    fn parse_value_test(
        &mut self,
        program: &mut Program,
        ctx: &mut ProdCtx,
    ) -> Result<ValueTest, Error> {
        match self.bump() {
            Some(TokenKind::Symbol(s)) => {
                Ok(ValueTest::Const(Value::Sym(program.symbols.intern(&s))))
            }
            Some(TokenKind::Integer(i)) => Ok(ValueTest::Const(Value::Int(i))),
            Some(TokenKind::Variable(v)) => Ok(ValueTest::Var(ctx.var(&v))),
            Some(TokenKind::Pred(p)) => {
                let op = pred_op(p);
                let arg = match self.bump() {
                    Some(TokenKind::Symbol(s)) => {
                        TestArg::Const(Value::Sym(program.symbols.intern(&s)))
                    }
                    Some(TokenKind::Integer(i)) => TestArg::Const(Value::Int(i)),
                    Some(TokenKind::Variable(v)) => TestArg::Var(ctx.var(&v)),
                    other => {
                        return Err(self.err(format!(
                            "predicate `{op}` needs a constant or variable operand, found {other:?}"
                        )))
                    }
                };
                Ok(ValueTest::Pred(op, arg))
            }
            Some(TokenKind::LBrace) => {
                let mut inner = Vec::new();
                while self.peek() != Some(&TokenKind::RBrace) {
                    if self.peek().is_none() {
                        return Err(self.err("unterminated `{` conjunction"));
                    }
                    inner.push(self.parse_value_test(program, ctx)?);
                }
                self.bump();
                if inner.is_empty() {
                    return Err(self.err("empty `{}` conjunction"));
                }
                Ok(ValueTest::Conj(inner))
            }
            Some(TokenKind::LDisj) => {
                let mut vals = Vec::new();
                loop {
                    match self.bump() {
                        Some(TokenKind::RDisj) => break,
                        Some(TokenKind::Symbol(s)) => {
                            vals.push(Value::Sym(program.symbols.intern(&s)))
                        }
                        Some(TokenKind::Integer(i)) => vals.push(Value::Int(i)),
                        other => {
                            return Err(self.err(format!(
                                "disjunctions may contain only constants, found {other:?}"
                            )))
                        }
                    }
                }
                if vals.is_empty() {
                    return Err(self.err("empty `<< >>` disjunction"));
                }
                Ok(ValueTest::Disj(vals))
            }
            other => Err(self.err(format!("expected a value test, found {other:?}"))),
        }
    }

    fn parse_action(
        &mut self,
        program: &mut Program,
        ctx: &mut ProdCtx,
        ces: &[ConditionElement],
        prod_name: &str,
        actions: &mut Vec<Action>,
    ) -> Result<(), Error> {
        self.expect(&TokenKind::LParen, "`(` starting an action")?;
        let head = self.expect_symbol("action name")?;
        match head.as_str() {
            "make" => {
                let class_name = self.expect_symbol("class for `make`")?;
                let class = program.symbols.intern(&class_name);
                let attrs = self.parse_rhs_attrs(program, ctx, prod_name)?;
                actions.push(Action::Make { class, attrs });
            }
            "remove" => {
                let mut any = false;
                while let Some(TokenKind::Integer(_)) = self.peek() {
                    let Some(TokenKind::Integer(k)) = self.bump() else {
                        unreachable!()
                    };
                    let positive_ce = designator_to_positive(k, ces, prod_name)?;
                    actions.push(Action::Remove { positive_ce });
                    any = true;
                }
                if !any {
                    return Err(self.err("`remove` needs at least one element designator"));
                }
                self.expect(&TokenKind::RParen, "`)` closing `remove`")?;
                return Ok(());
            }
            "modify" => {
                let k = match self.bump() {
                    Some(TokenKind::Integer(k)) => k,
                    other => {
                        return Err(self.err(format!(
                            "`modify` needs an element designator, found {other:?}"
                        )))
                    }
                };
                let positive_ce = designator_to_positive(k, ces, prod_name)?;
                let attrs = self.parse_rhs_attrs(program, ctx, prod_name)?;
                self.expect(&TokenKind::RParen, "`)` closing `modify`")?;
                actions.push(Action::Modify { positive_ce, attrs });
                return Ok(());
            }
            "write" => {
                let mut args = Vec::new();
                loop {
                    match self.bump() {
                        Some(TokenKind::RParen) => break,
                        Some(TokenKind::Symbol(s)) => {
                            args.push(RhsArg::Const(Value::Sym(program.symbols.intern(&s))))
                        }
                        Some(TokenKind::Integer(i)) => args.push(RhsArg::Const(Value::Int(i))),
                        Some(TokenKind::Variable(v)) => {
                            args.push(RhsArg::Var(self.rhs_var(ctx, &v, prod_name)?))
                        }
                        Some(TokenKind::LParen) => {
                            args.push(RhsArg::Compute(self.parse_compute(ctx, prod_name)?))
                        }
                        other => {
                            return Err(self.err(format!("unexpected token in `write`: {other:?}")))
                        }
                    }
                }
                actions.push(Action::Write { args });
                return Ok(());
            }
            "halt" => {
                self.expect(&TokenKind::RParen, "`)` closing `halt`")?;
                actions.push(Action::Halt);
                return Ok(());
            }
            "bind" => {
                let var = match self.bump() {
                    Some(TokenKind::Variable(v)) => ctx.var(&v),
                    other => {
                        return Err(self.err(format!("`bind` needs a variable, found {other:?}")))
                    }
                };
                let value = match self.bump() {
                    Some(TokenKind::Symbol(s)) => {
                        RhsArg::Const(Value::Sym(program.symbols.intern(&s)))
                    }
                    Some(TokenKind::Integer(i)) => RhsArg::Const(Value::Int(i)),
                    Some(TokenKind::Variable(v)) => RhsArg::Var(self.rhs_var(ctx, &v, prod_name)?),
                    Some(TokenKind::LParen) => RhsArg::Compute(self.parse_compute(ctx, prod_name)?),
                    other => return Err(self.err(format!("`bind` needs a value, found {other:?}"))),
                };
                self.expect(&TokenKind::RParen, "`)` closing `bind`")?;
                // Later actions may now reference the variable.
                ctx.rhs_bound.insert(var);
                actions.push(Action::Bind { var, value });
                return Ok(());
            }
            other => return Err(self.err(format!("unknown action `{other}`"))),
        }
        self.expect(&TokenKind::RParen, "`)` closing the action")?;
        Ok(())
    }

    fn parse_rhs_attrs(
        &mut self,
        program: &mut Program,
        ctx: &mut ProdCtx,
        prod_name: &str,
    ) -> Result<Vec<(crate::symbol::SymbolId, RhsArg)>, Error> {
        let mut attrs = Vec::new();
        while self.peek() != Some(&TokenKind::RParen) {
            match self.bump() {
                Some(TokenKind::Caret(attr_name)) => {
                    let attr = program.symbols.intern(&attr_name);
                    let arg = match self.bump() {
                        Some(TokenKind::Symbol(s)) => {
                            RhsArg::Const(Value::Sym(program.symbols.intern(&s)))
                        }
                        Some(TokenKind::Integer(i)) => RhsArg::Const(Value::Int(i)),
                        Some(TokenKind::Variable(v)) => {
                            RhsArg::Var(self.rhs_var(ctx, &v, prod_name)?)
                        }
                        Some(TokenKind::LParen) => {
                            RhsArg::Compute(self.parse_compute(ctx, prod_name)?)
                        }
                        other => {
                            return Err(self.err(format!(
                                "expected a value after `^{attr_name}`, found {other:?}"
                            )))
                        }
                    };
                    attrs.push((attr, arg));
                }
                other => {
                    return Err(self.err(format!("expected `^attr` in action, found {other:?}")))
                }
            }
        }
        Ok(attrs)
    }

    /// Parses `(compute operand {op operand})` after the opening paren
    /// has been consumed.
    fn parse_compute(&mut self, ctx: &mut ProdCtx, prod_name: &str) -> Result<ComputeExpr, Error> {
        let head = self.expect_symbol("`compute`")?;
        if head != "compute" {
            return Err(self.err(format!(
                "only `(compute …)` is allowed in a value position, found `({head}`"
            )));
        }
        let first = self.parse_compute_operand(ctx, prod_name)?;
        let mut rest = Vec::new();
        loop {
            let op = match self.bump() {
                Some(TokenKind::RParen) => break,
                Some(TokenKind::Symbol(s)) => match s.as_str() {
                    "+" => ArithOp::Add,
                    "*" => ArithOp::Mul,
                    "//" => ArithOp::Div,
                    "\\\\" => ArithOp::Mod,
                    other => {
                        return Err(
                            self.err(format!("unknown arithmetic operator `{other}` in compute"))
                        )
                    }
                },
                Some(TokenKind::Minus) => ArithOp::Sub,
                other => {
                    return Err(self.err(format!(
                        "expected an operator or `)` in compute, found {other:?}"
                    )))
                }
            };
            rest.push((op, self.parse_compute_operand(ctx, prod_name)?));
        }
        Ok(ComputeExpr { first, rest })
    }

    fn parse_compute_operand(
        &mut self,
        ctx: &mut ProdCtx,
        prod_name: &str,
    ) -> Result<ComputeOperand, Error> {
        match self.bump() {
            Some(TokenKind::Integer(i)) => Ok(ComputeOperand::Const(i)),
            Some(TokenKind::Variable(v)) => {
                Ok(ComputeOperand::Var(self.rhs_var(ctx, &v, prod_name)?))
            }
            other => Err(self.err(format!(
                "compute operands are integers or variables, found {other:?}"
            ))),
        }
    }

    /// Resolves an RHS variable reference, requiring it to be bound by a
    /// positive condition element or by an earlier `bind` action. In
    /// lenient mode an unbound variable is interned with no binding site
    /// instead of rejected, so lints (PSM001) can report it.
    fn rhs_var(&self, ctx: &mut ProdCtx, name: &str, prod_name: &str) -> Result<VarId, Error> {
        if self.lenient {
            return Ok(ctx.var(name));
        }
        match ctx.var_ids.get(name) {
            Some(&v) if ctx.first_bare[v.index()].is_some() || ctx.rhs_bound.contains(&v) => Ok(v),
            _ => Err(Error::Semantic {
                production: prod_name.to_owned(),
                message: format!(
                    "variable `<{name}>` used on the right-hand side is never bound by a \
                     positive condition element or an earlier `bind`"
                ),
            }),
        }
    }

    /// Parses one WME literal `(class ^attr const …)`.
    fn parse_wme_literal(&mut self, symbols: &mut SymbolTable) -> Result<Wme, Error> {
        self.expect(&TokenKind::LParen, "`(` starting a WME")?;
        let class_name = self.expect_symbol("WME class")?;
        let class = symbols.intern(&class_name);
        let mut attrs = Vec::new();
        loop {
            match self.bump() {
                Some(TokenKind::RParen) => break,
                Some(TokenKind::Caret(attr_name)) => {
                    let attr = symbols.intern(&attr_name);
                    let value = match self.bump() {
                        Some(TokenKind::Symbol(s)) => Value::Sym(symbols.intern(&s)),
                        Some(TokenKind::Integer(i)) => Value::Int(i),
                        other => {
                            return Err(self.err(format!(
                                "WME attribute values must be constants, found {other:?}"
                            )))
                        }
                    };
                    attrs.push((attr, value));
                }
                other => {
                    return Err(self.err(format!("expected `^attr` or `)` in WME, found {other:?}")))
                }
            }
        }
        Ok(Wme::new(class, attrs))
    }
}

/// Records the binding site of every bare variable occurrence in `test`
/// (first occurrence in a positive CE wins).
fn record_bare_bindings(
    test: &ValueTest,
    ctx: &mut ProdCtx,
    positive_ce: usize,
    attr: crate::symbol::SymbolId,
) {
    match test {
        ValueTest::Var(v) => {
            let slot = &mut ctx.first_bare[v.index()];
            if slot.is_none() {
                *slot = Some(BindingSite { positive_ce, attr });
            }
        }
        ValueTest::Conj(ts) => {
            for t in ts {
                record_bare_bindings(t, ctx, positive_ce, attr);
            }
        }
        _ => {}
    }
}

/// Checks every attribute use against `literalize` declarations: when a
/// class is declared, only declared attributes may be tested or written.
fn validate_literalizations(program: &Program) -> Result<(), Error> {
    if program.literalizations.is_empty() {
        return Ok(());
    }
    let check =
        |prod: &str, class: crate::symbol::SymbolId, attr: crate::symbol::SymbolId| match program
            .literalizations
            .get(&class)
        {
            Some(decl) if !decl.contains(&attr) => Err(Error::Semantic {
                production: prod.to_owned(),
                message: format!(
                    "attribute `{}` is not literalized for class `{}`",
                    program.symbols.name(attr),
                    program.symbols.name(class)
                ),
            }),
            _ => Ok(()),
        };
    for p in &program.productions {
        for ce in &p.ces {
            for (attr, _) in &ce.tests {
                check(&p.name, ce.class, *attr)?;
            }
        }
        let positive: Vec<&ConditionElement> = p.ces.iter().filter(|ce| !ce.negated).collect();
        for action in &p.actions {
            match action {
                Action::Make { class, attrs } => {
                    for (attr, _) in attrs {
                        check(&p.name, *class, *attr)?;
                    }
                }
                Action::Modify { positive_ce, attrs } => {
                    let class = positive[*positive_ce].class;
                    for (attr, _) in attrs {
                        check(&p.name, class, *attr)?;
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

fn pred_op(p: PredToken) -> PredOp {
    match p {
        PredToken::Eq => PredOp::Eq,
        PredToken::Ne => PredOp::Ne,
        PredToken::Lt => PredOp::Lt,
        PredToken::Le => PredOp::Le,
        PredToken::Gt => PredOp::Gt,
        PredToken::Ge => PredOp::Ge,
        PredToken::SameType => PredOp::SameType,
    }
}

/// Converts a 1-based designator over all CEs to a 0-based index into the
/// positive CEs, rejecting designators that point at negated CEs.
fn designator_to_positive(
    k: i64,
    ces: &[ConditionElement],
    prod_name: &str,
) -> Result<usize, Error> {
    let idx = usize::try_from(k - 1).ok().filter(|i| *i < ces.len());
    match idx {
        Some(i) if !ces[i].negated => Ok(ces[..i].iter().filter(|ce| !ce.negated).count()),
        Some(_) => Err(Error::Semantic {
            production: prod_name.to_owned(),
            message: format!("element designator {k} names a negated condition element"),
        }),
        None => Err(Error::Semantic {
            production: prod_name.to_owned(),
            message: format!("element designator {k} is out of range"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Action, ValueTest};

    #[test]
    fn parses_paper_figure_2_1() {
        let program = parse_program(
            r#"
            (p find-colored-blk
               (goal ^type find-blk ^color <c>)
               (block ^id <i> ^color <c> ^selected no)
               -->
               (modify 2 ^selected yes))
            "#,
        )
        .unwrap();
        assert_eq!(program.productions.len(), 1);
        let p = &program.productions[0];
        assert_eq!(p.name, "find-colored-blk");
        assert_eq!(p.ces.len(), 2);
        assert_eq!(p.variables, vec!["c", "i"]);
        // <c> binds in CE 0 at ^color.
        let site = p.binding_sites[0].unwrap();
        assert_eq!(site.positive_ce, 0);
        assert_eq!(program.symbols.name(site.attr), "color");
        assert!(matches!(
            p.actions[0],
            Action::Modify { positive_ce: 1, .. }
        ));
        // class + 2 tests, class + 3 tests
        assert_eq!(p.specificity, 3 + 4);
    }

    #[test]
    fn parses_paper_figure_2_2_productions() {
        // p1 and p2 from Figure 2-2 (reconstructed from the network).
        let program = parse_program(
            r#"
            (p p1 (c1 ^attr1 <x> ^attr2 12)
                  (c2 ^attr1 15 ^attr2 <x>)
                  (c3 ^attr1 <x>)
                  -->
                  (modify 1 ^attr1 12))
            (p p2 (c2 ^attr1 15 ^attr2 <y>)
                  (c4 ^attr1 <y>)
                  -->
                  (remove 2))
            "#,
        )
        .unwrap();
        assert_eq!(program.productions.len(), 2);
        assert_eq!(program.productions[0].ces.len(), 3);
        assert_eq!(program.productions[1].ces.len(), 2);
    }

    #[test]
    fn negated_ce_and_designators() {
        let program = parse_program(
            r#"
            (p no-red
               (goal ^want block)
               - (block ^color red)
               -->
               (remove 1))
            "#,
        )
        .unwrap();
        let p = &program.productions[0];
        assert!(p.ces[1].negated);
        assert_eq!(p.positive_ce_count(), 1);
        assert!(matches!(p.actions[0], Action::Remove { positive_ce: 0 }));
    }

    #[test]
    fn designator_on_negated_ce_is_rejected() {
        let err = parse_program(
            r#"
            (p bad (a ^x 1) - (b ^y 2) --> (remove 2))
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, Error::Semantic { .. }), "{err}");
    }

    #[test]
    fn designator_out_of_range_is_rejected() {
        let err = parse_program("(p bad (a ^x 1) --> (remove 3))").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rhs_variable_must_be_bound_positively() {
        let err = parse_program(
            r#"
            (p bad (a ^x 1) - (b ^y <z>) --> (make c ^v <z>))
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("never bound"));
    }

    #[test]
    fn conjunction_and_disjunction_tests() {
        let program = parse_program(
            r#"
            (p range
               (reading ^value { > 0 <= 100 <v> } ^unit << celsius kelvin >>)
               -->
               (make ok ^value <v>))
            "#,
        )
        .unwrap();
        let p = &program.productions[0];
        let (_, test) = &p.ces[0].tests[0];
        match test {
            ValueTest::Conj(ts) => assert_eq!(ts.len(), 3),
            other => panic!("expected conjunction, got {other:?}"),
        }
        let (_, disj) = &p.ces[0].tests[1];
        assert!(matches!(disj, ValueTest::Disj(vs) if vs.len() == 2));
        // <v> bound inside the conjunction is usable on the RHS.
        assert!(p.binding_sites[0].is_some());
    }

    #[test]
    fn duplicate_production_names_rejected() {
        let err = parse_program("(p r (a ^x 1) --> (halt)) (p r (a ^x 2) --> (halt))").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn production_needs_positive_ce() {
        let err = parse_program("(p neg - (a ^x 1) --> (halt))").unwrap_err();
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn remove_accepts_multiple_designators() {
        let program = parse_program("(p r2 (a ^x 1) (b ^y 2) --> (remove 1 2))").unwrap();
        assert_eq!(program.productions[0].actions.len(), 2);
    }

    #[test]
    fn write_and_halt_actions() {
        let program = parse_program("(p w (a ^x <v>) --> (write found <v> 42) (halt))").unwrap();
        let p = &program.productions[0];
        assert!(matches!(&p.actions[0], Action::Write { args } if args.len() == 3));
        assert!(matches!(p.actions[1], Action::Halt));
    }

    #[test]
    fn parse_wme_literal_works() {
        let mut syms = SymbolTable::new();
        let wme = parse_wme("(block ^color red ^size 3)", &mut syms).unwrap();
        let color = syms.lookup("color").unwrap();
        let red = syms.lookup("red").unwrap();
        assert_eq!(wme.get(color), Some(Value::Sym(red)));
    }

    #[test]
    fn parse_wmes_multiple() {
        let mut syms = SymbolTable::new();
        let wmes = parse_wmes("(a ^x 1) (b ^y 2) (c)", &mut syms).unwrap();
        assert_eq!(wmes.len(), 3);
    }

    #[test]
    fn wme_with_variable_is_rejected() {
        let mut syms = SymbolTable::new();
        assert!(parse_wme("(a ^x <v>)", &mut syms).is_err());
    }

    #[test]
    fn variables_shared_across_ces_get_one_id() {
        let program = parse_program("(p share (a ^x <v>) (b ^y <v>) --> (halt))").unwrap();
        assert_eq!(program.productions[0].variables.len(), 1);
    }

    #[test]
    fn pred_with_variable_operand() {
        let program = parse_program("(p cmp (a ^x <v>) (b ^y > <v>) --> (halt))").unwrap();
        let p = &program.productions[0];
        let (_, test) = &p.ces[1].tests[0];
        assert!(matches!(test, ValueTest::Pred(PredOp::Gt, TestArg::Var(_))));
    }

    #[test]
    fn bind_action_introduces_rhs_variables() {
        let program = parse_program(
            r#"
            (p b (a ^x <n>)
               -->
               (bind <tmp> (compute <n> * 2))
               (make out ^v <tmp>)
               (bind <tmp> 5)
               (write <tmp>))
            "#,
        )
        .unwrap();
        let p = &program.productions[0];
        assert!(matches!(p.actions[0], Action::Bind { .. }));
        // <tmp> has no LHS binding site.
        let tmp = p.variables.iter().position(|v| v == "tmp").unwrap();
        assert!(p.binding_sites[tmp].is_none());
    }

    #[test]
    fn lenient_parse_keeps_unbound_rhs_variable() {
        let src = "(p unbound-rhs (a ^x 1) --> (make out ^x <v>))";
        // Strict mode still rejects the program outright.
        assert!(parse_program(src).is_err());
        let program = parse_program_lenient(src).unwrap();
        let p = &program.productions[0];
        assert_eq!(p.variables, vec!["v"]);
        // The unbound variable has no binding site — the shape PSM001
        // reports.
        assert_eq!(p.binding_sites, vec![None]);
        match &p.actions[0] {
            Action::Make { attrs, .. } => {
                assert!(matches!(attrs[0].1, RhsArg::Var(v) if v.index() == 0));
            }
            other => panic!("expected make, got {other:?}"),
        }
    }

    #[test]
    fn rhs_variable_before_bind_is_rejected() {
        let err =
            parse_program("(p b (a ^x 1) --> (make out ^v <tmp>) (bind <tmp> 5))").unwrap_err();
        assert!(err.to_string().contains("never bound"));
    }

    #[test]
    fn literalize_validates_attribute_use() {
        // Declared attributes pass.
        parse_program(
            r#"
            (literalize block color size)
            (p ok (block ^color red) --> (modify 1 ^size 3))
            "#,
        )
        .unwrap();
        // Undeclared CE attribute fails.
        let err = parse_program(
            r#"
            (literalize block color)
            (p bad (block ^weight 9) --> (halt))
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("not literalized"), "{err}");
        // Undeclared make attribute fails, declaration order irrelevant.
        let err = parse_program(
            r#"
            (p bad (goal ^g 1) --> (make block ^weight 9))
            (literalize block color)
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("not literalized"));
        // Undeclared classes stay unchecked.
        parse_program(
            r#"
            (literalize block color)
            (p ok (goal ^anything 1) --> (make thing ^whatever 2))
            "#,
        )
        .unwrap();
    }

    #[test]
    fn unknown_top_level_form_is_rejected() {
        assert!(parse_program("(frobnicate x)").is_err());
    }

    #[test]
    fn compute_expressions_parse() {
        let program = parse_program(
            r#"
            (p arith (c ^n <n>)
               -->
               (make out ^v (compute <n> + 1 * 2))
               (make out2 ^v (compute 10 - <n>))
               (make out3 ^v (compute <n> // 2 \\ 3))
               (write (compute <n> + <n>)))
            "#,
        )
        .unwrap();
        let p = &program.productions[0];
        assert_eq!(p.actions.len(), 4);
        match &p.actions[0] {
            Action::Make { attrs, .. } => match &attrs[0].1 {
                RhsArg::Compute(e) => {
                    assert_eq!(e.rest.len(), 2);
                    assert_eq!(e.rest[0].0, crate::ast::ArithOp::Add);
                    assert_eq!(e.rest[1].0, crate::ast::ArithOp::Mul);
                }
                other => panic!("expected compute, got {other:?}"),
            },
            other => panic!("expected make, got {other:?}"),
        }
    }

    #[test]
    fn compute_rejects_bad_forms() {
        // Unknown head.
        assert!(parse_program("(p r (c ^n <n>) --> (make o ^v (frob 1)))").is_err());
        // Symbol operand.
        assert!(parse_program("(p r (c ^n <n>) --> (make o ^v (compute red + 1)))").is_err());
        // Unknown operator.
        assert!(parse_program("(p r (c ^n <n>) --> (make o ^v (compute 1 ? 2)))").is_err());
        // Unbound variable operand.
        assert!(parse_program("(p r (c ^n <n>) --> (make o ^v (compute <zz> + 1)))").is_err());
    }

    #[test]
    fn unknown_action_is_rejected() {
        assert!(parse_program("(p r (a ^x 1) --> (frobnicate))").is_err());
    }

    #[test]
    fn empty_conj_or_disj_rejected() {
        assert!(parse_program("(p r (a ^x { }) --> (halt))").is_err());
        assert!(parse_program("(p r (a ^x << >>) --> (halt))").is_err());
    }
}
