//! Lexer for the OPS5 surface syntax.
//!
//! Token inventory follows Section 2.1 of the paper: parentheses,
//! `^attribute` operators, `<var>` variables, predicate symbols
//! (`<`, `<=`, `>`, `>=`, `<>`, `=`, `<=>`), conjunctive braces,
//! disjunctive `<< … >>`, the `-->` arrow, `-` for negated condition
//! elements, symbolic atoms, and integers. Comments run from `;` to end
//! of line.

use crate::error::Error;

/// A lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// 1-based line number where the token starts.
    pub line: usize,
}

/// Token kinds of the OPS5 surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<<`
    LDisj,
    /// `>>`
    RDisj,
    /// `-->`
    Arrow,
    /// `-` (condition-element negation)
    Minus,
    /// `^attr`
    Caret(String),
    /// `<name>`
    Variable(String),
    /// A predicate operator: `=`, `<>`, `<`, `<=`, `>`, `>=`, `<=>`.
    Pred(PredToken),
    /// A symbolic atom.
    Symbol(String),
    /// An integer literal.
    Integer(i64),
}

/// Predicate operator spellings (resolved to [`crate::PredOp`] by the
/// parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredToken {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<=>`
    SameType,
}

/// A streaming lexer over OPS5 source text.
///
/// # Examples
///
/// ```
/// use ops5::Lexer;
///
/// let tokens = Lexer::tokenize("(p r1 (a ^x <v>) --> (halt))").unwrap();
/// assert!(!tokens.is_empty());
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

fn is_sym_char(b: u8) -> bool {
    // Symbols may contain letters, digits, and common punctuation used by
    // OPS5 identifiers like `find-blk` or `eight*puzzle`.
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'*' | b'.' | b'?' | b'!' | b'/' | b'+')
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Tokenizes the whole input.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Lex`] on an unexpected character or an unterminated
    /// variable.
    pub fn tokenize(src: &'a str) -> Result<Vec<Token>, Error> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        while let Some(tok) = lx.next_token()? {
            out.push(tok);
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, k: usize) -> Option<u8> {
        self.src.get(self.pos + k).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn read_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Produces the next token, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Lex`] on malformed input.
    pub fn next_token(&mut self) -> Result<Option<Token>, Error> {
        self.skip_ws_and_comments();
        let line = self.line;
        let Some(b) = self.peek() else {
            return Ok(None);
        };
        let kind = match b {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'^' => {
                self.bump();
                let name = self.read_while(is_sym_char);
                if name.is_empty() {
                    return Err(Error::Lex {
                        offset: self.pos,
                        message: "`^` must be followed by an attribute name".into(),
                    });
                }
                TokenKind::Caret(name)
            }
            b'=' => {
                self.bump();
                TokenKind::Pred(PredToken::Eq)
            }
            b'>' => {
                self.bump();
                match self.peek() {
                    Some(b'>') => {
                        self.bump();
                        TokenKind::RDisj
                    }
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Pred(PredToken::Ge)
                    }
                    _ => TokenKind::Pred(PredToken::Gt),
                }
            }
            b'<' => self.lex_angle()?,
            b'-' => {
                // `-->`, a negative integer, or CE negation.
                if self.peek_at(1) == Some(b'-') && self.peek_at(2) == Some(b'>') {
                    self.bump();
                    self.bump();
                    self.bump();
                    TokenKind::Arrow
                } else if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                    let digits = self.read_while(|c| c.is_ascii_digit());
                    TokenKind::Integer(-parse_int(&digits, self.pos)?)
                } else {
                    self.bump();
                    TokenKind::Minus
                }
            }
            b'\\' => {
                // OPS5 spells modulus `\\`.
                self.bump();
                if self.peek() == Some(b'\\') {
                    self.bump();
                    TokenKind::Symbol("\\\\".into())
                } else {
                    return Err(Error::Lex {
                        offset: self.pos,
                        message: "expected `\\\\` (modulus)".into(),
                    });
                }
            }
            b if b.is_ascii_digit() => {
                let digits = self.read_while(|c| c.is_ascii_digit());
                TokenKind::Integer(parse_int(&digits, self.pos)?)
            }
            b if is_sym_char(b) => {
                let name = self.read_while(is_sym_char);
                TokenKind::Symbol(name)
            }
            other => {
                return Err(Error::Lex {
                    offset: self.pos,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        };
        Ok(Some(Token { kind, line }))
    }

    /// Disambiguates tokens beginning with `<`: `<<`, `<=>`, `<=`, `<>`,
    /// `<var>`, or bare `<`.
    fn lex_angle(&mut self) -> Result<TokenKind, Error> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.bump();
        match self.peek() {
            Some(b'<') => {
                self.bump();
                Ok(TokenKind::LDisj)
            }
            Some(b'=') => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Ok(TokenKind::Pred(PredToken::SameType))
                } else {
                    Ok(TokenKind::Pred(PredToken::Le))
                }
            }
            Some(b'>') => {
                self.bump();
                Ok(TokenKind::Pred(PredToken::Ne))
            }
            Some(b) if is_sym_char(b) => {
                let name = self.read_while(is_sym_char);
                if self.peek() == Some(b'>') {
                    self.bump();
                    Ok(TokenKind::Variable(name))
                } else {
                    Err(Error::Lex {
                        offset: self.pos,
                        message: format!("unterminated variable `<{name}`"),
                    })
                }
            }
            _ => Ok(TokenKind::Pred(PredToken::Lt)),
        }
    }
}

fn parse_int(digits: &str, offset: usize) -> Result<i64, Error> {
    digits.parse::<i64>().map_err(|_| Error::Lex {
        offset,
        message: format!("integer literal `{digits}` out of range"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_structure_tokens() {
        assert_eq!(
            kinds("( ) { } << >> -->"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LDisj,
                TokenKind::RDisj,
                TokenKind::Arrow,
            ]
        );
    }

    #[test]
    fn predicates_disambiguate() {
        assert_eq!(
            kinds("< <= <> <=> > >= ="),
            vec![
                TokenKind::Pred(PredToken::Lt),
                TokenKind::Pred(PredToken::Le),
                TokenKind::Pred(PredToken::Ne),
                TokenKind::Pred(PredToken::SameType),
                TokenKind::Pred(PredToken::Gt),
                TokenKind::Pred(PredToken::Ge),
                TokenKind::Pred(PredToken::Eq),
            ]
        );
    }

    #[test]
    fn variables_and_attrs() {
        assert_eq!(
            kinds("<x> ^color <long-name2>"),
            vec![
                TokenKind::Variable("x".into()),
                TokenKind::Caret("color".into()),
                TokenKind::Variable("long-name2".into()),
            ]
        );
    }

    #[test]
    fn numbers_including_negative() {
        assert_eq!(
            kinds("12 -5 0"),
            vec![
                TokenKind::Integer(12),
                TokenKind::Integer(-5),
                TokenKind::Integer(0),
            ]
        );
    }

    #[test]
    fn minus_alone_is_negation() {
        assert_eq!(
            kinds("- (x)"),
            vec![
                TokenKind::Minus,
                TokenKind::LParen,
                TokenKind::Symbol("x".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn symbols_with_punctuation() {
        assert_eq!(
            kinds("find-blk eight*puzzle a_b"),
            vec![
                TokenKind::Symbol("find-blk".into()),
                TokenKind::Symbol("eight*puzzle".into()),
                TokenKind::Symbol("a_b".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let toks = Lexer::tokenize("; header\n(p ; trailing\nfoo)").unwrap();
        assert_eq!(toks[0].kind, TokenKind::LParen);
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[2].kind, TokenKind::Symbol("foo".into()));
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn unterminated_variable_errors() {
        assert!(Lexer::tokenize("<abc").is_err());
    }

    #[test]
    fn caret_requires_name() {
        assert!(Lexer::tokenize("^ )").is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(Lexer::tokenize("@").is_err());
    }

    #[test]
    fn sample_production_from_paper_lexes() {
        // Figure 2-1 of the paper, transliterated.
        let src = r#"
            (p find-colored-blk
               (goal ^type find-blk ^color <c>)
               (block ^id <i> ^color <c> ^selected no)
               -->
               (modify 2 ^selected yes))
        "#;
        let toks = Lexer::tokenize(src).unwrap();
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Variable("c".into())));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Arrow));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Caret("selected".into())));
    }
}
