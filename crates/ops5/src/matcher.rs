//! The matcher abstraction every match algorithm implements.
//!
//! The paper compares algorithms along the "amount of state stored" axis
//! (Section 3.2): naive (none), TREAT (alpha memories), Rete (fixed CE
//! combinations), Oflazer (all CE combinations) — and, orthogonally,
//! sequential versus parallel execution. All of them speak the same
//! protocol: working-memory changes in, conflict-set changes out. The
//! [`Matcher`] trait is that protocol, and the interpreter and every
//! experiment in this repository are generic over it.

use std::fmt;

use crate::ast::ProductionId;
use crate::symbol::SymbolTable;
use crate::wme::{WmeId, WorkingMemory};

/// An instantiation: a production together with the WMEs matching its
/// positive condition elements, in condition-element order.
///
/// Two instantiations are equal iff they name the same production and the
/// same WME handles; since handles are never reused, this is exactly
/// OPS5's identity for refraction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instantiation {
    /// The satisfied production.
    pub production: ProductionId,
    /// WMEs matching the positive CEs, in CE order.
    pub wmes: Vec<WmeId>,
}

impl Instantiation {
    /// Creates an instantiation.
    pub fn new(production: ProductionId, wmes: Vec<WmeId>) -> Self {
        Instantiation { production, wmes }
    }

    /// Renders `p3[w1 w7]` style debugging output.
    pub fn display<'a>(&'a self, _symbols: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Instantiation);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}[", self.0.production)?;
                for (i, w) in self.0.wmes.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{w}")?;
                }
                write!(f, "]")
            }
        }
        D(self)
    }
}

/// The conflict-set changes produced by processing working-memory changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchDelta {
    /// Instantiations that became satisfied.
    pub added: Vec<Instantiation>,
    /// Instantiations that ceased to be satisfied.
    pub removed: Vec<Instantiation>,
}

impl MatchDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges `other` (which happened *after* `self`) into a net delta.
    ///
    /// An instantiation added by an earlier change and removed by a later
    /// one (or vice versa) cancels out, so the merged delta describes the
    /// net conflict-set change of the whole batch and can be applied
    /// without ordering information.
    pub fn merge(&mut self, other: MatchDelta) {
        for inst in other.removed {
            if let Some(pos) = self.added.iter().position(|i| *i == inst) {
                self.added.swap_remove(pos);
            } else {
                self.removed.push(inst);
            }
        }
        for inst in other.added {
            if let Some(pos) = self.removed.iter().position(|i| *i == inst) {
                self.removed.swap_remove(pos);
            } else {
                self.added.push(inst);
            }
        }
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Sorts both lists into a canonical order so deltas from different
    /// matchers (or different parallel schedules) can be compared.
    pub fn canonicalize(&mut self) {
        let key = |i: &Instantiation| (i.production, i.wmes.clone());
        self.added.sort_by_key(key);
        self.added.dedup();
        self.removed.sort_by_key(key);
        self.removed.dedup();
    }
}

/// A working-memory change, the unit of work matchers consume.
///
/// A `modify` action is represented as a `Remove` of the old element plus
/// an `Add` of the new one, exactly as OPS5's Rete implementations did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Change {
    /// The WME was just asserted (it is live in the working memory).
    Add(WmeId),
    /// The WME is about to be retracted (still live while matching).
    Remove(WmeId),
}

impl Change {
    /// The WME the change concerns.
    pub fn wme(self) -> WmeId {
        match self {
            Change::Add(w) | Change::Remove(w) => w,
        }
    }

    /// True for `Add`.
    pub fn is_add(self) -> bool {
        matches!(self, Change::Add(_))
    }
}

/// A match algorithm: consumes working-memory changes, produces
/// conflict-set deltas.
///
/// # Contract
///
/// * On [`Matcher::add_wme`] the WME is already live in `wm`.
/// * On [`Matcher::remove_wme`] the WME is *still* live in `wm`; the
///   caller retracts it afterwards. This lets state-saving matchers locate
///   the state to delete, step 2 of the Section 3.1 cost model.
/// * Deltas must be exact: every reported `added` instantiation is newly
///   satisfied, every `removed` one was previously reported as added.
///   All matchers in this workspace are cross-checked against the naive
///   reference semantics under this contract.
pub trait Matcher {
    /// Processes one assertion.
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta;

    /// Processes one retraction (the WME is still resolvable via `wm`).
    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta;

    /// Processes a batch of changes from one production firing.
    ///
    /// The default processes changes sequentially in order; parallel
    /// matchers override this — processing multiple changes per firing in
    /// parallel is one of the paper's main parallelism sources (§4).
    fn process(&mut self, wm: &WorkingMemory, changes: &[Change]) -> MatchDelta {
        let mut delta = MatchDelta::new();
        for &change in changes {
            match change {
                Change::Add(id) => delta.merge(self.add_wme(wm, id)),
                Change::Remove(id) => delta.merge(self.remove_wme(wm, id)),
            }
        }
        delta
    }

    /// Human-readable algorithm name (for reports and experiment tables).
    fn algorithm_name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_merge_and_canonicalize() {
        let i1 = Instantiation::new(ProductionId(1), vec![WmeId::from_index(2)]);
        let i0 = Instantiation::new(ProductionId(0), vec![WmeId::from_index(5)]);
        let mut d = MatchDelta::new();
        assert!(d.is_empty());
        d.merge(MatchDelta {
            added: vec![i1.clone(), i0.clone()],
            removed: vec![],
        });
        d.canonicalize();
        assert_eq!(d.added, vec![i0, i1], "sorted");
    }

    #[test]
    fn merge_cancels_add_then_remove() {
        let i = Instantiation::new(ProductionId(0), vec![WmeId::from_index(1)]);
        let mut d = MatchDelta {
            added: vec![i.clone()],
            removed: vec![],
        };
        d.merge(MatchDelta {
            added: vec![],
            removed: vec![i],
        });
        assert!(d.is_empty(), "add then remove nets to nothing");
    }

    #[test]
    fn merge_cancels_remove_then_add() {
        let i = Instantiation::new(ProductionId(0), vec![WmeId::from_index(1)]);
        let mut d = MatchDelta {
            added: vec![],
            removed: vec![i.clone()],
        };
        d.merge(MatchDelta {
            added: vec![i],
            removed: vec![],
        });
        assert!(d.is_empty(), "remove then re-add nets to nothing");
    }

    #[test]
    fn change_accessors() {
        let w = WmeId::from_index(3);
        assert_eq!(Change::Add(w).wme(), w);
        assert_eq!(Change::Remove(w).wme(), w);
        assert!(Change::Add(w).is_add());
        assert!(!Change::Remove(w).is_add());
    }

    #[test]
    fn instantiation_display() {
        let syms = SymbolTable::new();
        let i = Instantiation::new(
            ProductionId(2),
            vec![WmeId::from_index(1), WmeId::from_index(4)],
        );
        assert_eq!(format!("{}", i.display(&syms)), "p2[w1 w4]");
    }
}
