//! # ops5 — an OPS5 production-system language substrate
//!
//! This crate implements the OPS5 production-system language described in
//! Section 2 of Gupta, Forgy, Newell & Wedig, *"Parallel Algorithms and
//! Architectures for Rule-Based Systems"* (ISCA 1986): productions with
//! condition elements (constants, variables, predicates, conjunctive and
//! disjunctive tests, negated condition elements), a working memory of
//! attribute–value elements, `make`/`modify`/`remove`/`write`/`halt`
//! right-hand-side actions, LEX and MEA conflict resolution, and the
//! recognize–act interpreter loop.
//!
//! The crate deliberately knows nothing about *how* match is performed:
//! every match algorithm (sequential Rete, parallel Rete, TREAT, the naive
//! non-state-saving matcher, the Oflazer full-state matcher) implements the
//! [`Matcher`] trait, and the [`Interpreter`] is generic over it. This is
//! the seam along which the paper compares algorithms.
//!
//! ## Quick example
//!
//! ```
//! use ops5::{parse_program, Interpreter, Wme};
//!
//! # fn main() -> Result<(), ops5::Error> {
//! let src = r#"
//!   (p hello
//!     (request ^kind greet ^who <w>)
//!     -->
//!     (make greeting ^to <w>)
//!     (remove 1))
//! "#;
//! let program = parse_program(src)?;
//! // Any matcher works here; the `rete` crate provides the fast one.
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod ast;
pub mod builder;
pub mod codec;
pub mod conflict;
pub mod effects;
pub mod error;
pub mod explain;
pub mod fxhash;
pub mod interp;
pub mod lexer;
pub mod matcher;
pub mod parser;
pub mod symbol;
pub mod value;
pub mod wme;

pub use ast::{
    match_and_bind, Action, ArithOp, ComputeExpr, ComputeOperand, ConditionElement, PredOp,
    Production, ProductionId, Program, RhsArg, TestArg, ValueTest, VarId,
};
pub use builder::ProductionBuilder;
pub use codec::{ByteReader, ByteWriter, CodecError};
pub use conflict::{compare as compare_instantiations, ConflictSet, Strategy};
pub use effects::{
    production_writes, write_effects, write_set_table, ClassWrites, EffectKind, ProductionWrites,
    SanitizerViolation, WriteEffect, WriteSanitizer, WriteValue,
};
pub use error::Error;
pub use explain::explain_instantiation;
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use interp::{CycleOutcome, Interpreter, RunStats};
pub use lexer::{Lexer, Token};
pub use matcher::{Change, Instantiation, MatchDelta, Matcher};
pub use parser::{parse_program, parse_program_lenient, parse_wme, parse_wmes, Parser};
pub use symbol::{SymbolId, SymbolTable};
pub use value::Value;
pub use wme::{TimeTag, Wme, WmeId, WorkingMemory};
