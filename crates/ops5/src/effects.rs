//! Static right-hand-side write effects and the runtime write-set
//! sanitizer.
//!
//! The paper caps production-level parallelism by how many rules a WM
//! change *affects* and by interference between their actions (§4).
//! Reasoning about that interference statically needs, for every
//! production, the set of working-memory touches its RHS can perform:
//! which classes it can `make`, which it can `remove`, and — through
//! `modify` — which attributes it can rewrite. This module derives that
//! **write set** from the AST ([`write_effects`], [`production_writes`])
//! and wires it into the runtime as a debug **sanitizer**
//! ([`WriteSanitizer`]): the interpreter reports each firing's actual
//! WME touches and the sanitizer asserts they fall inside the static
//! set, the same cross-check discipline `psm-analyze`'s calibrator
//! applies to join selectivities.
//!
//! Derivation rules (conservative in the *allowing* direction — the
//! static set over-approximates, so a violation is always a real bug):
//!
//! * `make` writes exactly its listed attributes; a constant argument
//!   stays a constant, anything else (variable, `compute`) is dynamic.
//! * `modify` is widened to the whole class: the re-asserted WME carries
//!   every unmodified attribute of the old one with values only the run
//!   can know. Explicitly modified attributes keep their refinement.
//! * `remove` (and the retraction half of `modify`) may retract any WME
//!   of the designated condition element's class.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use psm_obs::Obs;

use crate::ast::{Action, Production, ProductionId, Program, RhsArg};
use crate::matcher::Change;
use crate::symbol::{SymbolId, SymbolTable};
use crate::wme::{Wme, WorkingMemory};

/// Static knowledge about one written attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteValue {
    /// The RHS writes this exact constant.
    Const(crate::value::Value),
    /// The value is only known at fire time (variable or `compute`).
    Dynamic,
}

/// Which RHS action produced a [`WriteEffect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// `(make class …)` — asserts a fresh WME with exactly the listed
    /// attributes.
    Make,
    /// `(modify k …)` — retracts the designated WME and re-asserts it
    /// with the listed attributes overridden (write set widened to the
    /// class).
    Modify,
    /// `(remove k)` — retracts the designated WME.
    Remove,
}

/// One static RHS write effect, with the class resolved (element
/// designators are resolved through the production's positive CEs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteEffect {
    /// The producing action kind.
    pub kind: EffectKind,
    /// Class of the touched WME.
    pub class: SymbolId,
    /// Explicitly written attributes with their static refinement
    /// (empty for `remove`).
    pub attrs: Vec<(SymbolId, WriteValue)>,
    /// True when unlisted attributes may also be present with dynamic
    /// values (`modify` re-asserts the old WME's remaining attributes).
    pub widened: bool,
    /// The designated positive CE for `modify`/`remove` (its pattern
    /// refines which WMEs can be touched); `None` for `make`.
    pub positive_ce: Option<usize>,
}

/// Visits every RHS write effect of `p` in action order — the effect
/// visitor the static interference analysis builds on. `write`, `halt`
/// and `bind` touch no working memory and produce no effect.
pub fn for_each_write_effect(p: &Production, f: &mut impl FnMut(WriteEffect)) {
    let positive_classes: Vec<SymbolId> = p
        .ces
        .iter()
        .filter(|ce| !ce.negated)
        .map(|ce| ce.class)
        .collect();
    let refine = |attrs: &[(SymbolId, RhsArg)]| {
        attrs
            .iter()
            .map(|(a, arg)| {
                let v = match arg {
                    RhsArg::Const(v) => WriteValue::Const(*v),
                    RhsArg::Var(_) | RhsArg::Compute(_) => WriteValue::Dynamic,
                };
                (*a, v)
            })
            .collect()
    };
    for action in &p.actions {
        match action {
            Action::Make { class, attrs } => f(WriteEffect {
                kind: EffectKind::Make,
                class: *class,
                attrs: refine(attrs),
                widened: false,
                positive_ce: None,
            }),
            Action::Modify { positive_ce, attrs } => {
                if let Some(&class) = positive_classes.get(*positive_ce) {
                    f(WriteEffect {
                        kind: EffectKind::Modify,
                        class,
                        attrs: refine(attrs),
                        widened: true,
                        positive_ce: Some(*positive_ce),
                    });
                }
            }
            Action::Remove { positive_ce } => {
                if let Some(&class) = positive_classes.get(*positive_ce) {
                    f(WriteEffect {
                        kind: EffectKind::Remove,
                        class,
                        attrs: Vec::new(),
                        widened: false,
                        positive_ce: Some(*positive_ce),
                    });
                }
            }
            Action::Write { .. } | Action::Halt | Action::Bind { .. } => {}
        }
    }
}

/// All RHS write effects of `p`, in action order.
pub fn write_effects(p: &Production) -> Vec<WriteEffect> {
    let mut out = Vec::new();
    for_each_write_effect(p, &mut |e| out.push(e));
    out
}

/// The attributes one production may write on one class, merged over
/// all of its `make`/`modify` effects targeting that class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassWrites {
    /// True when any attribute may appear with a dynamic value (a
    /// `modify` on this class, or merged `make`s that disagree).
    pub widened: bool,
    /// Explicit per-attribute refinements (authoritative only when
    /// `widened` is false).
    pub attrs: HashMap<SymbolId, WriteValue>,
}

impl ClassWrites {
    fn merge_attr(&mut self, attr: SymbolId, value: WriteValue) {
        match self.attrs.get(&attr) {
            None => {
                self.attrs.insert(attr, value);
            }
            Some(existing) if *existing == value => {}
            // Two effects write different things to one attribute; the
            // allowance is their union, which we widen to dynamic.
            Some(_) => {
                self.attrs.insert(attr, WriteValue::Dynamic);
            }
        }
    }

    /// True when `wme` falls inside this allowance: every attribute it
    /// carries is either explicitly allowed (with a matching constant
    /// when pinned) or covered by widening.
    pub fn allows(&self, wme: &Wme) -> bool {
        if self.widened {
            // Widened: unlisted attributes may carry old (dynamic)
            // values, but an explicitly pinned constant must hold.
            return wme.attrs().all(|(a, v)| match self.attrs.get(&a) {
                Some(WriteValue::Const(c)) => v == *c,
                _ => true,
            });
        }
        wme.attrs().all(|(a, v)| match self.attrs.get(&a) {
            Some(WriteValue::Const(c)) => v == *c,
            Some(WriteValue::Dynamic) => true,
            None => false,
        })
    }
}

/// The complete static write set of one production, in the form the
/// runtime sanitizer checks against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProductionWrites {
    /// Classes the production may assert WMEs of, with per-class
    /// attribute allowances.
    pub adds: HashMap<SymbolId, ClassWrites>,
    /// Classes the production may retract WMEs of (`remove` and the
    /// retraction half of `modify`).
    pub removes: HashSet<SymbolId>,
}

impl ProductionWrites {
    /// True when the production's RHS touches no working memory.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty()
    }
}

/// Derives the static write set of one production.
pub fn production_writes(p: &Production) -> ProductionWrites {
    let mut out = ProductionWrites::default();
    for_each_write_effect(p, &mut |e| match e.kind {
        EffectKind::Make => {
            let cw = out.adds.entry(e.class).or_default();
            for (a, v) in &e.attrs {
                cw.merge_attr(*a, *v);
            }
        }
        EffectKind::Modify => {
            let cw = out.adds.entry(e.class).or_default();
            cw.widened = true;
            for (a, v) in &e.attrs {
                cw.merge_attr(*a, *v);
            }
            out.removes.insert(e.class);
        }
        EffectKind::Remove => {
            out.removes.insert(e.class);
        }
    });
    out
}

/// The write-set table for a whole program, indexed by
/// [`ProductionId`].
pub fn write_set_table(program: &Program) -> Vec<ProductionWrites> {
    program.productions.iter().map(production_writes).collect()
}

/// One recorded sanitizer violation: a firing touched working memory
/// outside its production's static write set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerViolation {
    /// Name of the firing production.
    pub production: String,
    /// What the illegal touch was.
    pub detail: String,
}

/// The runtime write-set sanitizer: a thread-safe, shareable assertion
/// layer cross-checking actual WME touches against [`write_set_table`].
///
/// The interpreter brackets each firing with
/// [`WriteSanitizer::begin_firing`] / [`WriteSanitizer::end_firing`]
/// and reports each pending touch; matchers (sequential Rete, the
/// parallel engine, the fault supervisor) additionally validate the
/// change batches they are handed via [`WriteSanitizer::check_batch`].
/// Violations are recorded, counted, and published to an attached
/// [`Obs`] registry (`sanitizer.checks`, `sanitizer.violations`,
/// `sanitizer.firings`) — they never panic, so a production run with
/// the sanitizer left on degrades to bookkeeping, not crashes.
#[derive(Debug)]
pub struct WriteSanitizer {
    table: Vec<ProductionWrites>,
    names: Vec<String>,
    symbols: SymbolTable,
    current: Mutex<Option<ProductionId>>,
    violations: Mutex<Vec<SanitizerViolation>>,
    checks: AtomicU64,
    violation_count: AtomicU64,
    obs: OnceLock<Arc<Obs>>,
}

impl WriteSanitizer {
    /// Builds the sanitizer for `program`, deriving the static write-set
    /// table.
    pub fn new(program: &Program) -> Self {
        WriteSanitizer {
            table: write_set_table(program),
            names: program.productions.iter().map(|p| p.name.clone()).collect(),
            symbols: program.symbols.clone(),
            current: Mutex::new(None),
            violations: Mutex::new(Vec::new()),
            checks: AtomicU64::new(0),
            violation_count: AtomicU64::new(0),
            obs: OnceLock::new(),
        }
    }

    /// Attaches an observability handle; check/violation/firing counts
    /// are then published as `sanitizer.*` counters. Only the first
    /// attach wins.
    pub fn attach_obs(&self, obs: Arc<Obs>) {
        let _ = self.obs.set(obs);
    }

    /// Marks `production` as the firing whose touches are being checked.
    pub fn begin_firing(&self, production: ProductionId) {
        *self.current.lock().expect("sanitizer lock") = Some(production);
        if let Some(obs) = self.obs.get() {
            obs.metrics.counter("sanitizer.firings").inc();
        }
    }

    /// Clears the firing context (matcher batch checks become no-ops).
    pub fn end_firing(&self) {
        *self.current.lock().expect("sanitizer lock") = None;
    }

    /// The production currently firing, if any.
    pub fn current_firing(&self) -> Option<ProductionId> {
        *self.current.lock().expect("sanitizer lock")
    }

    fn sym(&self, id: SymbolId) -> String {
        if id.index() < self.symbols.len() {
            self.symbols.name(id).to_string()
        } else {
            format!("sym{}", id.index())
        }
    }

    fn production_name(&self, id: ProductionId) -> String {
        self.names
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| format!("{id}"))
    }

    fn bump_checks(&self) {
        self.checks.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.metrics.counter("sanitizer.checks").inc();
        }
    }

    fn record_violation(&self, production: ProductionId, detail: String) {
        self.violation_count.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.metrics.counter("sanitizer.violations").inc();
        }
        self.violations
            .lock()
            .expect("sanitizer lock")
            .push(SanitizerViolation {
                production: self.production_name(production),
                detail,
            });
    }

    /// Checks one asserted WME against `production`'s static write set
    /// (attribute-level). Returns false (and records a violation) when
    /// the touch falls outside.
    pub fn check_add(&self, production: ProductionId, wme: &Wme) -> bool {
        self.bump_checks();
        let ok = self
            .table
            .get(production.index())
            .and_then(|w| w.adds.get(&wme.class()))
            .is_some_and(|cw| cw.allows(wme));
        if !ok {
            self.record_violation(
                production,
                format!(
                    "asserted a `{}` WME outside the static write set",
                    self.sym(wme.class())
                ),
            );
        }
        ok
    }

    /// Checks one retraction against `production`'s static write set
    /// (class-level). Returns false (and records a violation) when the
    /// class is not removable by this production.
    pub fn check_remove(&self, production: ProductionId, class: SymbolId) -> bool {
        self.bump_checks();
        let ok = self
            .table
            .get(production.index())
            .is_some_and(|w| w.removes.contains(&class));
        if !ok {
            self.record_violation(
                production,
                format!(
                    "retracted a `{}` WME outside the static write set",
                    self.sym(class)
                ),
            );
        }
        ok
    }

    /// Validates a whole change batch against the currently firing
    /// production — the hook matchers call from `process`. A batch seen
    /// outside any firing (initial working memory, driver-synthesized
    /// changes) is not the result of an RHS and is not checked.
    pub fn check_batch(&self, wm: &WorkingMemory, changes: &[Change]) {
        let Some(production) = self.current_firing() else {
            return;
        };
        for change in changes {
            match *change {
                Change::Add(id) => {
                    if let Some(wme) = wm.get(id) {
                        self.check_add(production, wme);
                    }
                }
                Change::Remove(id) => {
                    if let Some(wme) = wm.get(id) {
                        self.check_remove(production, wme.class());
                    }
                }
            }
        }
    }

    /// Total touch checks performed.
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// Total violations recorded.
    pub fn violation_count(&self) -> u64 {
        self.violation_count.load(Ordering::Relaxed)
    }

    /// True when no touch has fallen outside a static write set.
    pub fn is_clean(&self) -> bool {
        self.violation_count() == 0
    }

    /// The recorded violations (clone of the log).
    pub fn violations(&self) -> Vec<SanitizerViolation> {
        self.violations.lock().expect("sanitizer lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::value::Value;

    fn program(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn make_effect_keeps_constant_refinement() {
        let prog = program("(p r (a ^x <v>) --> (make out ^tag done ^of <v>))");
        let effects = write_effects(&prog.productions[0]);
        assert_eq!(effects.len(), 1);
        let e = &effects[0];
        assert_eq!(e.kind, EffectKind::Make);
        assert!(!e.widened);
        let tag = prog.symbols.lookup("tag").unwrap();
        let of = prog.symbols.lookup("of").unwrap();
        let done = prog.symbols.lookup("done").unwrap();
        assert!(e
            .attrs
            .contains(&(tag, WriteValue::Const(Value::Sym(done)))));
        assert!(e.attrs.contains(&(of, WriteValue::Dynamic)));
    }

    #[test]
    fn modify_widens_to_class_and_removes() {
        let prog = program("(p r (a ^x 1) (b ^y 2) --> (modify 2 ^y 3) (remove 1))");
        let w = production_writes(&prog.productions[0]);
        let a = prog.symbols.lookup("a").unwrap();
        let b = prog.symbols.lookup("b").unwrap();
        assert!(w.adds.get(&b).is_some_and(|cw| cw.widened));
        assert!(w.removes.contains(&b), "modify also retracts");
        assert!(w.removes.contains(&a));
        assert!(!w.adds.contains_key(&a));
    }

    #[test]
    fn designators_resolve_through_negated_ces() {
        let prog = program("(p r (a ^x 1) - (n ^q 1) (b ^y 2) --> (remove 3))");
        let effects = write_effects(&prog.productions[0]);
        let b = prog.symbols.lookup("b").unwrap();
        assert_eq!(effects[0].class, b, "designator skips the negated CE");
        assert_eq!(effects[0].positive_ce, Some(1));
    }

    #[test]
    fn class_writes_allowance_checks_attributes() {
        let prog = program("(p r (a ^x <v>) --> (make out ^tag done ^of <v>))");
        let w = production_writes(&prog.productions[0]);
        let out = prog.symbols.lookup("out").unwrap();
        let tag = prog.symbols.lookup("tag").unwrap();
        let of = prog.symbols.lookup("of").unwrap();
        let done = prog.symbols.lookup("done").unwrap();
        let other = prog.symbols.lookup("x").unwrap();
        let cw = w.adds.get(&out).unwrap();
        assert!(cw.allows(&Wme::new(
            out,
            vec![(tag, Value::Sym(done)), (of, Value::Int(9))]
        )));
        // Wrong pinned constant.
        assert!(!cw.allows(&Wme::new(out, vec![(tag, Value::Int(1))])));
        // Attribute the make never writes.
        assert!(!cw.allows(&Wme::new(out, vec![(other, Value::Int(1))])));
    }

    #[test]
    fn sanitizer_accepts_legal_and_flags_illegal_touches() {
        let prog = program("(p r (a ^x <v>) --> (make out ^of <v>) (remove 1))");
        let s = WriteSanitizer::new(&prog);
        let id = prog.productions[0].id;
        let a = prog.symbols.lookup("a").unwrap();
        let out = prog.symbols.lookup("out").unwrap();
        let of = prog.symbols.lookup("of").unwrap();
        assert!(s.check_add(id, &Wme::new(out, vec![(of, Value::Int(1))])));
        assert!(s.check_remove(id, a));
        assert!(s.is_clean());
        // Illegal: asserting the class it only reads.
        assert!(!s.check_add(id, &Wme::new(a, vec![])));
        // Illegal: retracting the class it only makes.
        assert!(!s.check_remove(id, out));
        assert_eq!(s.violation_count(), 2);
        assert_eq!(s.checks(), 4);
        let v = s.violations();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].production, "r");
        assert!(v[0].detail.contains("`a`"), "{}", v[0].detail);
    }

    #[test]
    fn batch_check_is_inert_outside_a_firing() {
        let prog = program("(p r (a ^x 1) --> (remove 1))");
        let s = WriteSanitizer::new(&prog);
        let mut wm = WorkingMemory::new();
        let a = prog.symbols.lookup("a").unwrap();
        let (id, _) = wm.add(Wme::new(a, vec![]));
        // No firing context: driver-synthesized changes are not checked.
        s.check_batch(&wm, &[Change::Add(id)]);
        assert_eq!(s.checks(), 0);
        // Inside a firing the same batch is validated.
        s.begin_firing(prog.productions[0].id);
        s.check_batch(&wm, &[Change::Add(id)]);
        s.end_firing();
        assert_eq!(s.checks(), 1);
        assert_eq!(s.violation_count(), 1, "rule `r` cannot assert `a`");
        assert_eq!(s.current_firing(), None);
    }

    #[test]
    fn obs_counters_track_activity() {
        let prog = program("(p r (a ^x 1) --> (remove 1))");
        let s = WriteSanitizer::new(&prog);
        let obs = Arc::new(Obs::with_flight(0, 0));
        s.attach_obs(Arc::clone(&obs));
        let a = prog.symbols.lookup("a").unwrap();
        s.begin_firing(prog.productions[0].id);
        s.check_remove(prog.productions[0].id, a);
        s.check_add(prog.productions[0].id, &Wme::new(a, vec![]));
        s.end_firing();
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counters.get("sanitizer.firings"), Some(&1));
        assert_eq!(snap.counters.get("sanitizer.checks"), Some(&2));
        assert_eq!(snap.counters.get("sanitizer.violations"), Some(&1));
    }
}
