//! Abstract syntax of OPS5 productions.
//!
//! A [`Production`] is the paper's `(p name <LHS> --> <RHS>)`: a list of
//! [`ConditionElement`]s (possibly negated) and a list of [`Action`]s.
//! Condition-element value positions carry [`ValueTest`]s — constants,
//! variables, predicate tests, conjunctive `{ … }` and disjunctive
//! `<< … >>` forms — mirroring Section 2.1 of the paper.

use std::fmt;

use crate::symbol::{SymbolId, SymbolTable};
use crate::value::Value;

/// Identifies a production within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProductionId(pub u32);

impl ProductionId {
    /// Raw index into [`Program::productions`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProductionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a variable within a single production.
///
/// Variables are production-scoped in OPS5: `<x>` in one rule is
/// unrelated to `<x>` in another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u16);

impl VarId {
    /// Raw index into [`Production::variables`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// OPS5 predicate operators usable in condition-element value positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PredOp {
    /// `=` — equal.
    Eq,
    /// `<>` — not equal.
    Ne,
    /// `<` — numerically less than.
    Lt,
    /// `<=` — numerically less than or equal.
    Le,
    /// `>` — numerically greater than.
    Gt,
    /// `>=` — numerically greater than or equal.
    Ge,
    /// `<=>` — same type (both symbols or both integers).
    SameType,
}

impl fmt::Display for PredOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PredOp::Eq => "=",
            PredOp::Ne => "<>",
            PredOp::Lt => "<",
            PredOp::Le => "<=",
            PredOp::Gt => ">",
            PredOp::Ge => ">=",
            PredOp::SameType => "<=>",
        };
        f.write_str(s)
    }
}

/// The operand of a predicate test: a constant or a variable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestArg {
    /// Compare against a constant.
    Const(Value),
    /// Compare against the value bound to a variable.
    Var(VarId),
}

/// A test in a condition-element value position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueTest {
    /// A bare constant: equality with that constant.
    Const(Value),
    /// A bare variable: binds on first occurrence, tests equality after.
    Var(VarId),
    /// `pred arg`, e.g. `> 7` or `<> <x>`.
    Pred(PredOp, TestArg),
    /// `<< a b c >>` — value must equal one of the constants.
    Disj(Vec<Value>),
    /// `{ t1 t2 … }` — all sub-tests must hold.
    Conj(Vec<ValueTest>),
}

impl ValueTest {
    /// Counts the primitive tests inside, for LEX/MEA specificity.
    pub fn test_count(&self) -> usize {
        match self {
            ValueTest::Const(_) | ValueTest::Var(_) | ValueTest::Pred(..) | ValueTest::Disj(_) => 1,
            ValueTest::Conj(ts) => ts.iter().map(ValueTest::test_count).sum(),
        }
    }

    /// Visits every variable reference in the test.
    pub fn for_each_var(&self, f: &mut impl FnMut(VarId)) {
        match self {
            ValueTest::Var(v) => f(*v),
            ValueTest::Pred(_, TestArg::Var(v)) => f(*v),
            ValueTest::Conj(ts) => {
                for t in ts {
                    t.for_each_var(f);
                }
            }
            _ => {}
        }
    }

    /// Visits every primitive (non-conjunctive) test, flattening `{ … }`
    /// forms so callers see only `Const`/`Var`/`Pred`/`Disj` nodes.
    pub fn for_each_primitive(&self, f: &mut impl FnMut(&ValueTest)) {
        match self {
            ValueTest::Conj(ts) => {
                for t in ts {
                    t.for_each_primitive(f);
                }
            }
            other => f(other),
        }
    }
}

/// One condition element of a left-hand side.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConditionElement {
    /// Required class of the matching WME.
    pub class: SymbolId,
    /// Per-attribute tests, in source order.
    pub tests: Vec<(SymbolId, ValueTest)>,
    /// Whether the element is negated (`-` prefix).
    pub negated: bool,
}

impl ConditionElement {
    /// True when `wme_class` and per-attribute values satisfy this CE
    /// under the partial binding `lookup` (returns the bound value of a
    /// variable, or `None` when unbound — an unbound bare variable always
    /// matches, the binding occurrence).
    ///
    /// This is the *semantic reference implementation* used by the naive
    /// matcher and by tests that cross-check Rete; compiled matchers must
    /// agree with it.
    pub fn matches_with(
        &self,
        wme: &crate::wme::Wme,
        lookup: &impl Fn(VarId) -> Option<Value>,
    ) -> bool {
        if wme.class() != self.class {
            return false;
        }
        self.tests.iter().all(|(attr, test)| match wme.get(*attr) {
            Some(v) => eval_test(test, v, lookup),
            None => false,
        })
    }

    /// Counts primitive tests (class counts as one), for specificity.
    pub fn test_count(&self) -> usize {
        1 + self
            .tests
            .iter()
            .map(|(_, t)| t.test_count())
            .sum::<usize>()
    }

    /// Visits every primitive test with its attribute, flattening
    /// conjunctive `{ … }` forms. A given attribute is visited once per
    /// primitive constraint placed on it.
    pub fn for_each_primitive_test(&self, f: &mut impl FnMut(SymbolId, &ValueTest)) {
        for (attr, test) in &self.tests {
            test.for_each_primitive(&mut |t| f(*attr, t));
        }
    }
}

/// Evaluates a [`ValueTest`] against a concrete value under a binding
/// lookup. An unbound bare `Var` matches anything (binding occurrence);
/// an unbound variable inside a predicate fails (OPS5 requires predicate
/// operands to be bound).
pub fn eval_test(test: &ValueTest, v: Value, lookup: &impl Fn(VarId) -> Option<Value>) -> bool {
    match test {
        ValueTest::Const(c) => v == *c,
        ValueTest::Var(var) => match lookup(*var) {
            Some(bound) => v == bound,
            None => true,
        },
        ValueTest::Pred(op, arg) => {
            let rhs = match arg {
                TestArg::Const(c) => Some(*c),
                TestArg::Var(var) => lookup(*var),
            };
            match rhs {
                Some(r) => v.compare(*op, r),
                None => false,
            }
        }
        ValueTest::Disj(vals) => vals.contains(&v),
        ValueTest::Conj(tests) => tests.iter().all(|t| eval_test(t, v, lookup)),
    }
}

/// Matches `ce` against `wme` under the partial binding `bindings`,
/// extending `bindings` in place with bare-variable binding occurrences
/// when the match succeeds test-by-test.
///
/// This is the reference join semantics used by the naive and TREAT
/// matchers and by cross-checking tests; compiled matchers (Rete) must
/// agree with it. Bindings already present are tested; absent ones are
/// installed by the first bare occurrence. On failure `bindings` may be
/// partially extended — clone before calling if that matters.
pub fn match_and_bind(
    ce: &ConditionElement,
    wme: &crate::wme::Wme,
    bindings: &mut [Option<Value>],
) -> bool {
    if wme.class() != ce.class {
        return false;
    }
    for (attr, test) in &ce.tests {
        let Some(v) = wme.get(*attr) else {
            return false;
        };
        if !eval_test(test, v, &|var| bindings[var.index()]) {
            return false;
        }
        bind_bare(test, v, bindings);
    }
    true
}

/// Installs bare-variable bindings from a successful test evaluation.
fn bind_bare(test: &ValueTest, v: Value, bindings: &mut [Option<Value>]) {
    match test {
        ValueTest::Var(var) if bindings[var.index()].is_none() => {
            bindings[var.index()] = Some(v);
        }
        ValueTest::Conj(ts) => {
            for t in ts {
                bind_bare(t, v, bindings);
            }
        }
        _ => {}
    }
}

/// A right-hand-side operand: a constant, a bound variable, or an
/// arithmetic `(compute …)` expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RhsArg {
    /// A literal value.
    Const(Value),
    /// The value bound to a variable by the LHS match.
    Var(VarId),
    /// `(compute a op b op c …)` evaluated left-to-right at fire time.
    Compute(ComputeExpr),
}

impl RhsArg {
    /// Visits every variable the operand reads.
    pub fn for_each_var(&self, f: &mut impl FnMut(VarId)) {
        match self {
            RhsArg::Const(_) => {}
            RhsArg::Var(v) => f(*v),
            RhsArg::Compute(e) => {
                if let ComputeOperand::Var(v) = e.first {
                    f(v);
                }
                for (_, o) in &e.rest {
                    if let ComputeOperand::Var(v) = o {
                        f(*v);
                    }
                }
            }
        }
    }
}

/// An OPS5 `compute` expression: integer arithmetic over constants and
/// bound variables, evaluated left-associatively (as OPS5 did — no
/// precedence).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ComputeExpr {
    /// First operand.
    pub first: ComputeOperand,
    /// Chained `(op, operand)` applications.
    pub rest: Vec<(ArithOp, ComputeOperand)>,
}

/// Operand of a `compute` expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeOperand {
    /// Integer literal.
    Const(i64),
    /// Value bound to an LHS variable (must be an integer at fire time).
    Var(VarId),
}

/// Arithmetic operators of `compute`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `//` — truncating integer division.
    Div,
    /// `\\` — modulus (OPS5 spelling).
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "//",
            ArithOp::Mod => "\\\\",
        })
    }
}

/// A right-hand-side action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// `(make class ^attr val …)` — assert a new WME.
    Make {
        /// Class of the new element.
        class: SymbolId,
        /// Attribute–value pairs (values may reference LHS bindings).
        attrs: Vec<(SymbolId, RhsArg)>,
    },
    /// `(remove k)` — retract the WME matching the `k`-th CE (1-based).
    Remove {
        /// Zero-based index into the production's *positive* CEs.
        positive_ce: usize,
    },
    /// `(modify k ^attr val …)` — retract and re-assert with updates.
    Modify {
        /// Zero-based index into the production's *positive* CEs.
        positive_ce: usize,
        /// Attribute overrides.
        attrs: Vec<(SymbolId, RhsArg)>,
    },
    /// `(write …)` — append the rendered args to the interpreter output.
    Write {
        /// Values to print.
        args: Vec<RhsArg>,
    },
    /// `(halt)` — stop the recognize–act loop after this firing.
    Halt,
    /// `(bind <x> value)` — binds (or rebinds) a variable for the rest
    /// of this right-hand side.
    Bind {
        /// Variable receiving the value.
        var: VarId,
        /// Value expression (constant, variable, or `compute`).
        value: RhsArg,
    },
}

impl Action {
    /// Visits every variable the action *reads*. A `bind` target is a
    /// write, not a read, so only its value expression is visited.
    pub fn for_each_read_var(&self, f: &mut impl FnMut(VarId)) {
        match self {
            Action::Make { attrs, .. } | Action::Modify { attrs, .. } => {
                for (_, arg) in attrs {
                    arg.for_each_var(f);
                }
            }
            Action::Write { args } => {
                for arg in args {
                    arg.for_each_var(f);
                }
            }
            Action::Bind { value, .. } => value.for_each_var(f),
            Action::Remove { .. } | Action::Halt => {}
        }
    }
}

/// Where a variable receives its binding: the `ce`-th positive condition
/// element, attribute `attr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BindingSite {
    /// Index into the production's positive CEs (not all CEs).
    pub positive_ce: usize,
    /// Attribute whose value binds the variable.
    pub attr: SymbolId,
}

/// A compiled production rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Production {
    /// Rule name, unique within a program.
    pub name: String,
    /// Identity within the owning [`Program`].
    pub id: ProductionId,
    /// LHS condition elements in source order.
    pub ces: Vec<ConditionElement>,
    /// RHS actions in source order.
    pub actions: Vec<Action>,
    /// Variable names (index = `VarId`).
    pub variables: Vec<String>,
    /// For each variable, its binding occurrence in a positive CE, or
    /// `None` when the variable only occurs in negated CEs.
    pub binding_sites: Vec<Option<BindingSite>>,
    /// Number of primitive LHS tests, used by conflict resolution.
    pub specificity: usize,
}

impl Production {
    /// Positive (non-negated) condition elements, in order.
    pub fn positive_ces(&self) -> impl Iterator<Item = (usize, &ConditionElement)> {
        self.ces.iter().filter(|ce| !ce.negated).enumerate()
    }

    /// Number of positive condition elements.
    pub fn positive_ce_count(&self) -> usize {
        self.ces.iter().filter(|ce| !ce.negated).count()
    }

    /// Renders the production back to OPS5 surface syntax.
    ///
    /// The output reparses to a structurally identical production
    /// (printer-normal-form round trip, verified by property tests).
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> impl fmt::Display + 'a {
        DisplayProduction {
            production: self,
            symbols,
        }
    }

    /// Visits every variable read by the RHS, in action order. `bind`
    /// targets count as writes, not reads (they may rebind an LHS
    /// variable, or introduce a fresh one).
    pub fn for_each_rhs_read_var(&self, f: &mut impl FnMut(VarId)) {
        for action in &self.actions {
            action.for_each_read_var(f);
        }
    }

    /// Visits every variable occurrence in the LHS, flattening
    /// conjunctive tests, as `(ce_index, attr, var)`.
    pub fn for_each_lhs_var(&self, f: &mut impl FnMut(usize, SymbolId, VarId)) {
        for (i, ce) in self.ces.iter().enumerate() {
            ce.for_each_primitive_test(&mut |attr, t| {
                t.for_each_var(&mut |v| f(i, attr, v));
            });
        }
    }

    /// Maps a zero-based positive-CE index to the 1-based designator
    /// over all CEs used by the surface syntax.
    pub fn designator(&self, positive_ce: usize) -> usize {
        let mut seen = 0usize;
        for (i, ce) in self.ces.iter().enumerate() {
            if !ce.negated {
                if seen == positive_ce {
                    return i + 1;
                }
                seen += 1;
            }
        }
        unreachable!("positive CE index out of range")
    }
}

struct DisplayProduction<'a> {
    production: &'a Production,
    symbols: &'a SymbolTable,
}

impl DisplayProduction<'_> {
    fn var(&self, v: VarId) -> String {
        format!("<{}>", self.production.variables[v.index()])
    }

    fn write_value_test(&self, f: &mut fmt::Formatter<'_>, t: &ValueTest) -> fmt::Result {
        match t {
            ValueTest::Const(v) => write!(f, "{}", v.display(self.symbols)),
            ValueTest::Var(v) => write!(f, "{}", self.var(*v)),
            ValueTest::Pred(op, arg) => {
                write!(f, "{op} ")?;
                match arg {
                    TestArg::Const(v) => write!(f, "{}", v.display(self.symbols)),
                    TestArg::Var(v) => write!(f, "{}", self.var(*v)),
                }
            }
            ValueTest::Disj(vals) => {
                write!(f, "<<")?;
                for v in vals {
                    write!(f, " {}", v.display(self.symbols))?;
                }
                write!(f, " >>")
            }
            ValueTest::Conj(tests) => {
                write!(f, "{{")?;
                for t in tests {
                    write!(f, " ")?;
                    self.write_value_test(f, t)?;
                }
                write!(f, " }}")
            }
        }
    }

    fn write_rhs_arg(&self, f: &mut fmt::Formatter<'_>, arg: &RhsArg) -> fmt::Result {
        match arg {
            RhsArg::Const(v) => write!(f, "{}", v.display(self.symbols)),
            RhsArg::Var(v) => write!(f, "{}", self.var(*v)),
            RhsArg::Compute(e) => {
                write!(f, "(compute ")?;
                self.write_operand(f, &e.first)?;
                for (op, o) in &e.rest {
                    write!(f, " {op} ")?;
                    self.write_operand(f, o)?;
                }
                write!(f, ")")
            }
        }
    }

    fn write_operand(&self, f: &mut fmt::Formatter<'_>, o: &ComputeOperand) -> fmt::Result {
        match o {
            ComputeOperand::Const(i) => write!(f, "{i}"),
            ComputeOperand::Var(v) => write!(f, "{}", self.var(*v)),
        }
    }

    fn write_attrs(&self, f: &mut fmt::Formatter<'_>, attrs: &[(SymbolId, RhsArg)]) -> fmt::Result {
        for (attr, arg) in attrs {
            write!(f, " ^{} ", self.symbols.name(*attr))?;
            self.write_rhs_arg(f, arg)?;
        }
        Ok(())
    }
}

impl fmt::Display for DisplayProduction<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.production;
        writeln!(f, "(p {}", p.name)?;
        for ce in &p.ces {
            write!(f, "  ")?;
            if ce.negated {
                write!(f, "- ")?;
            }
            write!(f, "({}", self.symbols.name(ce.class))?;
            for (attr, test) in &ce.tests {
                write!(f, " ^{} ", self.symbols.name(*attr))?;
                self.write_value_test(f, test)?;
            }
            writeln!(f, ")")?;
        }
        writeln!(f, "  -->")?;
        for action in &p.actions {
            write!(f, "  ")?;
            match action {
                Action::Make { class, attrs } => {
                    write!(f, "(make {}", self.symbols.name(*class))?;
                    self.write_attrs(f, attrs)?;
                    writeln!(f, ")")?;
                }
                Action::Remove { positive_ce } => {
                    writeln!(f, "(remove {})", p.designator(*positive_ce))?;
                }
                Action::Modify { positive_ce, attrs } => {
                    write!(f, "(modify {}", p.designator(*positive_ce))?;
                    self.write_attrs(f, attrs)?;
                    writeln!(f, ")")?;
                }
                Action::Write { args } => {
                    write!(f, "(write")?;
                    for arg in args {
                        write!(f, " ")?;
                        self.write_rhs_arg(f, arg)?;
                    }
                    writeln!(f, ")")?;
                }
                Action::Halt => writeln!(f, "(halt)")?,
                Action::Bind { var, value } => {
                    write!(f, "(bind {} ", self.var(*var))?;
                    self.write_rhs_arg(f, value)?;
                    writeln!(f, ")")?;
                }
            }
        }
        writeln!(f, ")")
    }
}

/// A parsed OPS5 program: productions plus the symbol table they intern
/// into. The symbol table is shared with the runtime so WMEs built at run
/// time (by `make`) reuse the same identities.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Interned symbols for the whole program.
    pub symbols: SymbolTable,
    /// All productions, indexed by [`ProductionId`].
    pub productions: Vec<Production>,
    /// `(literalize class attr …)` declarations: class → declared
    /// attributes. When a class is declared, condition elements and
    /// `make`/`modify` actions naming it may only use declared
    /// attributes (checked at parse time, as real OPS5 did).
    pub literalizations: std::collections::HashMap<SymbolId, Vec<SymbolId>>,
}

impl Program {
    /// Creates an empty program (useful for building programs in code).
    pub fn new() -> Self {
        Self::default()
    }

    /// The production behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn production(&self, id: ProductionId) -> &Production {
        &self.productions[id.index()]
    }

    /// Finds a production by name.
    pub fn find(&self, name: &str) -> Option<&Production> {
        self.productions.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wme::Wme;

    fn no_bindings(_: VarId) -> Option<Value> {
        None
    }

    #[test]
    fn eval_const_and_disj() {
        let t = ValueTest::Const(Value::Int(5));
        assert!(eval_test(&t, Value::Int(5), &no_bindings));
        assert!(!eval_test(&t, Value::Int(6), &no_bindings));

        let d = ValueTest::Disj(vec![Value::Int(1), Value::Int(2)]);
        assert!(eval_test(&d, Value::Int(2), &no_bindings));
        assert!(!eval_test(&d, Value::Int(3), &no_bindings));
    }

    #[test]
    fn eval_var_binding_and_test_occurrence() {
        let v = ValueTest::Var(VarId(0));
        // Unbound bare variable matches anything.
        assert!(eval_test(&v, Value::Int(42), &no_bindings));
        // Bound variable requires equality.
        let bound = |_: VarId| Some(Value::Int(7));
        assert!(eval_test(&v, Value::Int(7), &bound));
        assert!(!eval_test(&v, Value::Int(8), &bound));
    }

    #[test]
    fn eval_pred_with_unbound_var_fails() {
        let t = ValueTest::Pred(PredOp::Ne, TestArg::Var(VarId(0)));
        assert!(!eval_test(&t, Value::Int(1), &no_bindings));
        let bound = |_: VarId| Some(Value::Int(1));
        assert!(!eval_test(&t, Value::Int(1), &bound));
        assert!(eval_test(&t, Value::Int(2), &bound));
    }

    #[test]
    fn eval_conj_requires_all() {
        let t = ValueTest::Conj(vec![
            ValueTest::Pred(PredOp::Gt, TestArg::Const(Value::Int(0))),
            ValueTest::Pred(PredOp::Lt, TestArg::Const(Value::Int(10))),
        ]);
        assert!(eval_test(&t, Value::Int(5), &no_bindings));
        assert!(!eval_test(&t, Value::Int(0), &no_bindings));
        assert!(!eval_test(&t, Value::Int(10), &no_bindings));
        assert_eq!(t.test_count(), 2);
    }

    #[test]
    fn ce_matches_with_reference_semantics() {
        let mut syms = SymbolTable::new();
        let goal = syms.intern("goal");
        let ty = syms.intern("type");
        let find = syms.intern("find-blk");
        let color = syms.intern("color");

        let ce = ConditionElement {
            class: goal,
            tests: vec![
                (ty, ValueTest::Const(Value::Sym(find))),
                (color, ValueTest::Var(VarId(0))),
            ],
            negated: false,
        };

        let w = Wme::new(goal, vec![(ty, Value::Sym(find)), (color, Value::Int(3))]);
        assert!(ce.matches_with(&w, &no_bindings));

        // Wrong class.
        let w2 = Wme::new(ty, vec![]);
        assert!(!ce.matches_with(&w2, &no_bindings));

        // Missing attribute fails the test.
        let w3 = Wme::new(goal, vec![(ty, Value::Sym(find))]);
        assert!(!ce.matches_with(&w3, &no_bindings));

        assert_eq!(ce.test_count(), 3);
    }

    #[test]
    fn for_each_var_visits_nested() {
        let t = ValueTest::Conj(vec![
            ValueTest::Var(VarId(1)),
            ValueTest::Pred(PredOp::Ne, TestArg::Var(VarId(2))),
            ValueTest::Const(Value::Int(0)),
        ]);
        let mut seen = Vec::new();
        t.for_each_var(&mut |v| seen.push(v));
        assert_eq!(seen, vec![VarId(1), VarId(2)]);
    }

    #[test]
    fn for_each_primitive_flattens_conj() {
        let t = ValueTest::Conj(vec![
            ValueTest::Pred(PredOp::Gt, TestArg::Const(Value::Int(0))),
            ValueTest::Conj(vec![
                ValueTest::Var(VarId(0)),
                ValueTest::Const(Value::Int(3)),
            ]),
        ]);
        let mut n = 0;
        t.for_each_primitive(&mut |p| {
            assert!(!matches!(p, ValueTest::Conj(_)));
            n += 1;
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn rhs_and_action_var_visitation() {
        let src = r#"
            (p rw
               (goal ^color <c> ^n <v>)
               -->
               (bind <t> (compute <v> + 1))
               (make done ^of <c> ^next <t>)
               (write <v>)
               (remove 1))
        "#;
        let program = crate::parser::parse_program(src).unwrap();
        let p = &program.productions[0];
        let mut reads = Vec::new();
        p.for_each_rhs_read_var(&mut |v| reads.push(p.variables[v.index()].clone()));
        assert_eq!(reads, vec!["v", "c", "t", "v"]);

        let mut lhs = Vec::new();
        p.for_each_lhs_var(&mut |ce, _, v| lhs.push((ce, p.variables[v.index()].clone())));
        assert_eq!(lhs, vec![(0, "c".to_string()), (0, "v".to_string())]);
    }

    #[test]
    fn designator_skips_negated_ces() {
        let src = r#"
            (p d
               (a ^x 1)
               - (b ^x 2)
               (c ^x 3)
               -->
               (remove 3))
        "#;
        let program = crate::parser::parse_program(src).unwrap();
        let p = &program.productions[0];
        assert_eq!(p.designator(0), 1);
        assert_eq!(p.designator(1), 3);
        assert_eq!(p.actions, vec![Action::Remove { positive_ce: 1 }]);
    }

    #[test]
    fn display_impls_nonempty() {
        assert_eq!(format!("{}", PredOp::SameType), "<=>");
        assert_eq!(format!("{}", ProductionId(3)), "p3");
        assert_eq!(format!("{}", VarId(2)), "v2");
        assert_eq!(format!("{}", ArithOp::Div), "//");
    }

    #[test]
    fn pretty_print_round_trips() {
        let src = r#"
            (p kitchen-sink
               (goal ^type << find seek >> ^color <c> ^n { > 0 <v> })
               - (veto ^color <c>)
               (block ^id <i> ^color <c> ^weight <=> <v>)
               -->
               (write found <i> (compute <v> + 1 * 2 \\ 7))
               (make done ^of <i> ^next (compute <v> - 1))
               (modify 3 ^color blue)
               (remove 1)
               (halt))
        "#;
        let program = crate::parser::parse_program(src).unwrap();
        let printed = format!("{}", program.productions[0].display(&program.symbols));
        let reparsed = crate::parser::parse_program(&printed).unwrap();
        let reprinted = format!("{}", reparsed.productions[0].display(&reparsed.symbols));
        assert_eq!(printed, reprinted, "printer normal form is stable");
        // Structure survives (names and shapes; symbol ids may differ).
        assert_eq!(
            program.productions[0].ces.len(),
            reparsed.productions[0].ces.len()
        );
        assert_eq!(
            program.productions[0].actions.len(),
            reparsed.productions[0].actions.len()
        );
        assert_eq!(
            program.productions[0].variables,
            reparsed.productions[0].variables
        );
    }
}
