//! The recognize–act interpreter (Section 2.1 of the paper).
//!
//! Each cycle: **match** (delegated to the [`Matcher`]), **conflict
//! resolution** ([`crate::ConflictSet::select`]), **act** (execute the
//! selected production's right-hand side). The act phase turns `make`,
//! `modify` and `remove` actions into a batch of working-memory
//! [`Change`]s which is handed to the matcher as a unit — the batch is
//! exactly what the parallel implementations process concurrently.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use psm_obs::{FlightKind, Obs, Phase, PhaseProfile};

use crate::ast::{Action, Production, Program, RhsArg, VarId};
use crate::conflict::{ConflictSet, Strategy};
use crate::error::Error;
use crate::matcher::{Change, Instantiation, Matcher};
use crate::symbol::SymbolTable;
use crate::value::Value;
use crate::wme::{Wme, WmeId, WorkingMemory};

/// What one recognize–act cycle did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleOutcome {
    /// A production fired.
    Fired(Instantiation),
    /// No unfired instantiation was satisfied; the interpreter halts.
    Quiescent,
    /// A `(halt)` action executed.
    Halted,
}

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Recognize–act cycles executed (= production firings).
    pub firings: u64,
    /// Working-memory changes processed (inserts + deletes).
    pub wme_changes: u64,
    /// Working-memory inserts.
    pub inserts: u64,
    /// Working-memory deletes.
    pub deletes: u64,
    /// Largest conflict-set size observed.
    pub conflict_set_peak: usize,
}

impl RunStats {
    /// Average WM changes per firing, the paper's key per-cycle quantity.
    pub fn changes_per_firing(&self) -> f64 {
        if self.firings == 0 {
            0.0
        } else {
            self.wme_changes as f64 / self.firings as f64
        }
    }
}

/// The production-system interpreter, generic over the match algorithm.
///
/// # Examples
///
/// Run a two-rule program to quiescence with any matcher (here the naive
/// reference matcher lives in the `baselines` crate; this example uses a
/// trivial custom matcher elided for brevity).
#[derive(Debug)]
pub struct Interpreter<M> {
    program: Program,
    matcher: M,
    wm: WorkingMemory,
    conflict: ConflictSet,
    strategy: Strategy,
    output: Vec<String>,
    halted: bool,
    stats: RunStats,
    firing_log: Option<Vec<Instantiation>>,
    /// Per-phase (match/select/act) latency histograms; `None` (free)
    /// unless [`Interpreter::enable_phase_profiling`] was called.
    phases: Option<Box<PhaseProfile>>,
    /// Telemetry sink; see [`Interpreter::attach_obs`].
    obs: Option<Arc<Obs>>,
    /// Debug write-set sanitizer; see [`Interpreter::attach_sanitizer`].
    sanitizer: Option<Arc<crate::effects::WriteSanitizer>>,
}

impl<M: Matcher> Interpreter<M> {
    /// Creates an interpreter over `program` using `matcher`.
    ///
    /// The matcher must have been compiled from the same program.
    pub fn new(program: Program, matcher: M) -> Self {
        Interpreter {
            program,
            matcher,
            wm: WorkingMemory::new(),
            conflict: ConflictSet::new(),
            strategy: Strategy::Lex,
            output: Vec::new(),
            halted: false,
            stats: RunStats::default(),
            firing_log: None,
            phases: None,
            obs: None,
            sanitizer: None,
        }
    }

    /// Attaches a debug [`crate::effects::WriteSanitizer`]: every firing's
    /// actual WME touches are checked against the production's static
    /// write set (violations are recorded on the sanitizer, never
    /// panicked on). Share the same `Arc` with the matcher's own
    /// `attach_sanitizer` so change batches are cross-checked at both
    /// layers.
    pub fn attach_sanitizer(&mut self, sanitizer: Arc<crate::effects::WriteSanitizer>) {
        self.sanitizer = Some(sanitizer);
    }

    /// The attached write-set sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&Arc<crate::effects::WriteSanitizer>> {
        self.sanitizer.as_ref()
    }

    /// Attaches an observability handle. Per-cycle phase latencies are
    /// recorded into `phase.{match,select,act}_ns` registry histograms,
    /// run counters are published under `interp.*` after every cycle,
    /// and — when the handle's flight recorder has capacity — the
    /// interpreter records the conflict-set / firing end of the causal
    /// chain (WME changes with time tags, conflict inserts/removes,
    /// firings). Matchers take their own handle via their `attach_obs`;
    /// use the same `Arc` so everything lands in one registry.
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        self.obs = Some(obs);
    }

    /// Records `ns` into the registry histogram for `phase`.
    fn obs_phase_ns(&self, phase: Phase, ns: u64) {
        if let Some(obs) = &self.obs {
            obs.metrics
                .histogram(match phase {
                    Phase::Match => "phase.match_ns",
                    Phase::Select => "phase.select_ns",
                    Phase::Act => "phase.act_ns",
                })
                .record(ns);
        }
    }

    /// Publishes run-level gauges/counters after a cycle.
    fn obs_publish_cycle(&self) {
        if let Some(obs) = &self.obs {
            obs.metrics
                .gauge("interp.conflict_size")
                .set(self.conflict.len() as i64);
            obs.metrics
                .gauge("interp.wm_size")
                .set(self.wm.len() as i64);
            obs.metrics.counter("interp.firings").inc();
        }
    }

    /// Flight-records the conflict-set delta of one match, with the
    /// time tags that justify each instantiation.
    fn obs_flight_delta(&self, delta: &crate::matcher::MatchDelta) {
        let Some(obs) = &self.obs else { return };
        if !obs.flight.enabled() {
            return;
        }
        for inst in &delta.removed {
            obs.flight.record(FlightKind::ConflictRemove {
                rule: self.production_name(inst.production),
                wmes: inst.wmes.iter().map(|id| id.index() as u32).collect(),
            });
        }
        for inst in &delta.added {
            obs.flight.record(FlightKind::ConflictInsert {
                rule: self.production_name(inst.production),
                wmes: inst.wmes.iter().map(|id| id.index() as u32).collect(),
                time_tags: self.instantiation_time_tags(inst),
            });
        }
    }

    fn production_name(&self, id: crate::ast::ProductionId) -> String {
        self.program.production(id).name.clone()
    }

    fn instantiation_time_tags(&self, inst: &Instantiation) -> Vec<u64> {
        inst.wmes
            .iter()
            .map(|id| self.wm.time_tag(*id).map_or(0, |t| t.0))
            .collect()
    }

    /// Flight-records a working-memory change (with its time tag).
    fn obs_flight_wme(&self, id: WmeId, is_add: bool) {
        let Some(obs) = &self.obs else { return };
        if !obs.flight.enabled() {
            return;
        }
        obs.flight.record(FlightKind::WmeChange {
            wme: id.index() as u32,
            time_tag: self.wm.time_tag(id).map_or(0, |t| t.0),
            is_add,
        });
    }

    /// Starts recording every fired instantiation (off by default; the
    /// log grows with the run).
    pub fn enable_firing_log(&mut self) {
        self.firing_log = Some(Vec::new());
    }

    /// Starts per-phase (match / select / act) span timing, recorded
    /// into `psm-obs` histograms in nanoseconds. Off by default.
    pub fn enable_phase_profiling(&mut self) {
        self.phases = Some(Box::new(PhaseProfile::new()));
    }

    /// The per-phase latency profile (if phase profiling is enabled).
    pub fn phase_profile(&self) -> Option<&PhaseProfile> {
        self.phases.as_deref()
    }

    /// The fired instantiations recorded so far (empty unless
    /// [`Interpreter::enable_firing_log`] was called).
    pub fn firing_log(&self) -> &[Instantiation] {
        self.firing_log.as_deref().unwrap_or(&[])
    }

    /// Sets the conflict-resolution strategy (default LEX).
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// The program being interpreted.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Mutable access to the program's symbol table, for interning
    /// symbols used by WMEs built at run time. Prefer this over cloning
    /// the table: symbols interned into a clone are unknown to the
    /// interpreter's own table, so `display` cannot resolve them.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.program.symbols
    }

    /// The working memory.
    pub fn working_memory(&self) -> &WorkingMemory {
        &self.wm
    }

    /// The conflict set.
    pub fn conflict_set(&self) -> &ConflictSet {
        &self.conflict
    }

    /// The underlying matcher.
    pub fn matcher(&self) -> &M {
        &self.matcher
    }

    /// Mutable access to the matcher, e.g. to enable or collect the Rete
    /// node-activation trace mid-run.
    pub fn matcher_mut(&mut self) -> &mut M {
        &mut self.matcher
    }

    /// Lines produced by `write` actions so far.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Counters for the run so far.
    pub fn stats(&self) -> RunStats {
        let mut s = self.stats;
        s.conflict_set_peak = self.conflict.peak();
        s
    }

    /// Asserts an initial WME (before or between runs), updating the
    /// match state.
    pub fn insert(&mut self, wme: Wme) -> WmeId {
        let (id, _) = self.wm.add(wme);
        self.stats.wme_changes += 1;
        self.stats.inserts += 1;
        self.obs_flight_wme(id, true);
        let timer = self.obs.is_some().then(Instant::now);
        let _span = self.phases.as_ref().map(|p| p.span(Phase::Match));
        let delta = self.matcher.process(&self.wm, &[Change::Add(id)]);
        if let Some(t) = timer {
            self.obs_phase_ns(Phase::Match, t.elapsed().as_nanos() as u64);
        }
        self.obs_flight_delta(&delta);
        self.conflict.apply(&delta);
        id
    }

    /// Asserts several initial WMEs.
    pub fn insert_all<I: IntoIterator<Item = Wme>>(&mut self, wmes: I) -> Vec<WmeId> {
        wmes.into_iter().map(|w| self.insert(w)).collect()
    }

    /// Runs one recognize–act cycle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Runtime`] if an action references a WME that is no
    /// longer live (cannot happen for programs produced by the parser and
    /// a correct matcher, but guarded for custom [`Matcher`]s).
    pub fn cycle(&mut self) -> Result<CycleOutcome, Error> {
        if self.halted {
            return Ok(CycleOutcome::Halted);
        }
        if let Some(obs) = &self.obs {
            obs.flight.set_cycle(self.stats.firings + 1);
        }
        let timer = self.obs.is_some().then(Instant::now);
        let selected = {
            let _span = self.phases.as_ref().map(|p| p.span(Phase::Select));
            self.conflict.select(&self.wm, &self.program, self.strategy)
        };
        if let Some(t) = timer {
            self.obs_phase_ns(Phase::Select, t.elapsed().as_nanos() as u64);
        }
        let Some(inst) = selected else {
            return Ok(CycleOutcome::Quiescent);
        };
        self.conflict.mark_fired(&inst);
        if let Some(log) = self.firing_log.as_mut() {
            log.push(inst.clone());
        }
        self.fire(&inst)?;
        self.stats.firings += 1;
        self.obs_publish_cycle();
        Ok(if self.halted {
            CycleOutcome::Halted
        } else {
            CycleOutcome::Fired(inst)
        })
    }

    /// Runs until quiescence, `halt`, or `max_cycles` firings; returns the
    /// number of firings executed by this call.
    ///
    /// # Errors
    ///
    /// Propagates any [`Error::Runtime`] from [`Interpreter::cycle`].
    pub fn run(&mut self, max_cycles: u64) -> Result<u64, Error> {
        let mut fired = 0;
        while fired < max_cycles {
            match self.cycle()? {
                CycleOutcome::Fired(_) => fired += 1,
                CycleOutcome::Halted => {
                    // The halting cycle itself fired a production.
                    fired += 1;
                    break;
                }
                CycleOutcome::Quiescent => break,
            }
        }
        Ok(fired)
    }

    /// Executes the RHS of `inst`, producing and applying the change
    /// batch. `bind` actions extend the bindings as the RHS proceeds.
    fn fire(&mut self, inst: &Instantiation) -> Result<(), Error> {
        if let Some(obs) = &self.obs {
            if obs.flight.enabled() {
                obs.flight.record(FlightKind::Firing {
                    rule: self.production_name(inst.production),
                    wmes: inst.wmes.iter().map(|id| id.index() as u32).collect(),
                    time_tags: self.instantiation_time_tags(inst),
                });
            }
        }
        let act_timer = self.obs.is_some().then(Instant::now);
        let act_span = self.phases.as_ref().map(|p| p.span(Phase::Act));
        let production = self.program.production(inst.production).clone();
        let mut bindings = self.extract_bindings(&production, inst)?;

        let mut pending_adds: Vec<Wme> = Vec::new();
        let mut pending_removes: Vec<WmeId> = Vec::new();
        let mut seen_removes: HashSet<WmeId> = HashSet::new();

        for action in &production.actions {
            match action {
                Action::Make { class, attrs } => {
                    let attrs = attrs
                        .iter()
                        .map(|(a, arg)| Ok((*a, self.resolve(arg, &bindings)?)))
                        .collect::<Result<Vec<_>, Error>>()?;
                    pending_adds.push(Wme::new(*class, attrs));
                }
                Action::Remove { positive_ce } => {
                    let id = self.designated(inst, *positive_ce)?;
                    if seen_removes.insert(id) {
                        pending_removes.push(id);
                    }
                }
                Action::Modify { positive_ce, attrs } => {
                    let id = self.designated(inst, *positive_ce)?;
                    let old = self
                        .wm
                        .get(id)
                        .ok_or_else(|| Error::runtime(format!("modify of dead WME {id}")))?;
                    let updates = attrs
                        .iter()
                        .map(|(a, arg)| Ok((*a, self.resolve(arg, &bindings)?)))
                        .collect::<Result<Vec<_>, Error>>()?;
                    pending_adds.push(old.modified(&updates));
                    if seen_removes.insert(id) {
                        pending_removes.push(id);
                    }
                }
                Action::Write { args } => {
                    let mut line = String::new();
                    for (i, arg) in args.iter().enumerate() {
                        if i > 0 {
                            line.push(' ');
                        }
                        let v = self.resolve(arg, &bindings)?;
                        line.push_str(&format!("{}", v.display(&self.program.symbols)));
                    }
                    self.output.push(line);
                }
                Action::Halt => self.halted = true,
                Action::Bind { var, value } => {
                    let v = self.resolve(value, &bindings)?;
                    bindings[var.index()] = Some(v);
                }
            }
        }

        // The firing's actual touches are now known; assert they fall
        // inside the production's static write set. The firing context
        // stays open across `matcher.process` so matcher-level batch
        // checks see which production the changes belong to.
        if let Some(s) = &self.sanitizer {
            s.begin_firing(inst.production);
            for wme in &pending_adds {
                s.check_add(inst.production, wme);
            }
            for &id in &pending_removes {
                if let Some(w) = self.wm.get(id) {
                    s.check_remove(inst.production, w.class());
                }
            }
        }

        // Build the batch: removes first, then adds. This ordering is the
        // batch contract parallel matchers rely on (DESIGN.md §6).
        let mut changes: Vec<Change> = pending_removes
            .iter()
            .map(|&id| Change::Remove(id))
            .collect();
        for wme in pending_adds {
            let (id, _) = self.wm.add(wme);
            changes.push(Change::Add(id));
        }
        self.stats.wme_changes += changes.len() as u64;
        self.stats.deletes += pending_removes.len() as u64;
        self.stats.inserts += (changes.len() - pending_removes.len()) as u64;

        drop(act_span);
        if let Some(t) = act_timer {
            self.obs_phase_ns(Phase::Act, t.elapsed().as_nanos() as u64);
        }
        for change in &changes {
            match *change {
                Change::Add(id) => self.obs_flight_wme(id, true),
                Change::Remove(id) => self.obs_flight_wme(id, false),
            }
        }
        let match_timer = self.obs.is_some().then(Instant::now);
        let _match_span = self.phases.as_ref().map(|p| p.span(Phase::Match));
        let delta = self.matcher.process(&self.wm, &changes);
        if let Some(t) = match_timer {
            self.obs_phase_ns(Phase::Match, t.elapsed().as_nanos() as u64);
        }
        self.obs_flight_delta(&delta);
        self.conflict.apply(&delta);
        if let Some(s) = &self.sanitizer {
            s.end_firing();
        }

        for id in pending_removes {
            self.wm.remove(id);
        }
        Ok(())
    }

    /// The WME matching the designated positive CE of `inst`.
    fn designated(&self, inst: &Instantiation, positive_ce: usize) -> Result<WmeId, Error> {
        inst.wmes.get(positive_ce).copied().ok_or_else(|| {
            Error::runtime(format!(
                "element designator {} out of range for {}",
                positive_ce + 1,
                inst.production
            ))
        })
    }

    /// Reads each bound variable's value out of the instantiation's WMEs.
    fn extract_bindings(
        &self,
        production: &Production,
        inst: &Instantiation,
    ) -> Result<Vec<Option<Value>>, Error> {
        production
            .binding_sites
            .iter()
            .map(|site| match site {
                None => Ok(None),
                Some(site) => {
                    let id =
                        inst.wmes.get(site.positive_ce).copied().ok_or_else(|| {
                            Error::runtime("instantiation shorter than binding site")
                        })?;
                    let wme = self
                        .wm
                        .get(id)
                        .ok_or_else(|| Error::runtime(format!("binding WME {id} is dead")))?;
                    Ok(wme.get(site.attr))
                }
            })
            .collect()
    }

    fn resolve(&self, arg: &RhsArg, bindings: &[Option<Value>]) -> Result<Value, Error> {
        match arg {
            RhsArg::Const(v) => Ok(*v),
            RhsArg::Var(v) => self.lookup_binding(*v, bindings),
            RhsArg::Compute(expr) => self.eval_compute(expr, bindings),
        }
    }

    /// Evaluates a `(compute …)` expression left-associatively.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Runtime`] if an operand is bound to a symbol, or
    /// on division/modulus by zero.
    fn eval_compute(
        &self,
        expr: &crate::ast::ComputeExpr,
        bindings: &[Option<Value>],
    ) -> Result<Value, Error> {
        use crate::ast::{ArithOp, ComputeOperand};
        let operand = |o: &ComputeOperand| -> Result<i64, Error> {
            match o {
                ComputeOperand::Const(i) => Ok(*i),
                ComputeOperand::Var(v) => match self.lookup_binding(*v, bindings)? {
                    Value::Int(i) => Ok(i),
                    Value::Sym(_) => Err(Error::runtime(format!(
                        "compute operand {v} is bound to a symbol"
                    ))),
                },
            }
        };
        let mut acc = operand(&expr.first)?;
        for (op, o) in &expr.rest {
            let rhs = operand(o)?;
            acc = match op {
                ArithOp::Add => acc.wrapping_add(rhs),
                ArithOp::Sub => acc.wrapping_sub(rhs),
                ArithOp::Mul => acc.wrapping_mul(rhs),
                ArithOp::Div => {
                    if rhs == 0 {
                        return Err(Error::runtime("compute division by zero"));
                    }
                    acc / rhs
                }
                ArithOp::Mod => {
                    if rhs == 0 {
                        return Err(Error::runtime("compute modulus by zero"));
                    }
                    acc % rhs
                }
            };
        }
        Ok(Value::Int(acc))
    }

    fn lookup_binding(&self, var: VarId, bindings: &[Option<Value>]) -> Result<Value, Error> {
        bindings
            .get(var.index())
            .copied()
            .flatten()
            .ok_or_else(|| Error::runtime(format!("unbound variable {var} at fire time")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ConditionElement;
    use crate::matcher::MatchDelta;
    use crate::parser::{parse_program, parse_wme};

    /// A reference matcher that recomputes all instantiations from scratch
    /// on every change using the AST-level semantics. Slow but obviously
    /// correct; the real baselines live in the `baselines` crate (this one
    /// exists so `ops5` is testable stand-alone).
    #[derive(Debug)]
    struct OracleMatcher {
        program: Program,
        current: HashSet<Instantiation>,
        /// WMEs the matcher considers live (it may lag `wm` within a
        /// batch: removed WMEs stay resolvable there until the batch is
        /// fully processed).
        live: HashSet<WmeId>,
    }

    impl OracleMatcher {
        fn new(program: &Program) -> Self {
            OracleMatcher {
                program: program.clone(),
                current: HashSet::new(),
                live: HashSet::new(),
            }
        }

        fn all_instantiations(&self, wm: &WorkingMemory) -> HashSet<Instantiation> {
            let mut out = HashSet::new();
            for p in &self.program.productions {
                let mut partial: Vec<(Vec<WmeId>, Vec<Option<Value>>)> =
                    vec![(Vec::new(), vec![None; p.variables.len()])];
                for ce in &p.ces {
                    partial = extend(ce, wm, &self.live, partial);
                }
                for (wmes, _) in partial {
                    out.insert(Instantiation::new(p.id, wmes));
                }
            }
            out
        }

        fn refresh(&mut self, wm: &WorkingMemory) -> MatchDelta {
            let next = self.all_instantiations(wm);
            let added = next.difference(&self.current).cloned().collect();
            let removed = self.current.difference(&next).cloned().collect();
            self.current = next;
            MatchDelta { added, removed }
        }
    }

    /// Extends partial matches by one condition element (reference join).
    fn extend(
        ce: &ConditionElement,
        wm: &WorkingMemory,
        live: &HashSet<WmeId>,
        partial: Vec<(Vec<WmeId>, Vec<Option<Value>>)>,
    ) -> Vec<(Vec<WmeId>, Vec<Option<Value>>)> {
        let mut out = Vec::new();
        for (wmes, bindings) in partial {
            if ce.negated {
                let blocked =
                    wm.iter()
                        .filter(|(id, _, _)| live.contains(id))
                        .any(|(_, wme, _)| {
                            // Local variables of the negated CE start unbound.
                            let mut local = bindings.clone();
                            crate::ast::match_and_bind(ce, wme, &mut local)
                        });
                if !blocked {
                    out.push((wmes, bindings));
                }
            } else {
                for (id, wme, _) in wm.iter().filter(|(id, _, _)| live.contains(id)) {
                    let mut b = bindings.clone();
                    if crate::ast::match_and_bind(ce, wme, &mut b) {
                        let mut w = wmes.clone();
                        w.push(id);
                        out.push((w, b));
                    }
                }
            }
        }
        out
    }

    impl Matcher for OracleMatcher {
        fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
            self.live.insert(id);
            self.refresh(wm)
        }
        fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
            self.live.remove(&id);
            self.refresh(wm)
        }
        fn algorithm_name(&self) -> &'static str {
            "oracle"
        }
    }

    fn interpreter(src: &str) -> Interpreter<OracleMatcher> {
        let program = parse_program(src).unwrap();
        let matcher = OracleMatcher::new(&program);
        Interpreter::new(program, matcher)
    }

    #[test]
    fn paper_figure_2_1_fires_and_modifies() {
        let mut interp = interpreter(
            r#"
            (p find-colored-blk
               (goal ^type find-blk ^color <c>)
               (block ^id <i> ^color <c> ^selected no)
               -->
               (modify 2 ^selected yes))
            "#,
        );
        let syms = &mut interp.program.symbols.clone();
        let goal = parse_wme("(goal ^type find-blk ^color red)", syms).unwrap();
        let b1 = parse_wme("(block ^id 1 ^color red ^selected no)", syms).unwrap();
        let b2 = parse_wme("(block ^id 2 ^color blue ^selected no)", syms).unwrap();
        interp.insert_all([goal, b1, b2]);
        assert_eq!(interp.conflict_set().len(), 1, "only the red block matches");

        let fired = interp.run(10).unwrap();
        assert_eq!(fired, 1, "after modify, selected=yes blocks the rule");
        let selected = interp.program().symbols.lookup("selected").unwrap();
        let yes = interp.program().symbols.lookup("yes").unwrap();
        let n = interp
            .working_memory()
            .iter()
            .filter(|(_, w, _)| w.get(selected) == Some(Value::Sym(yes)))
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn counting_loop_runs_to_halt() {
        let mut interp = interpreter(
            r#"
            (p count-up
               (counter ^value <v> ^limit > <v>)
               -->
               (write tick <v>)
               (modify 1 ^value 1))
            (p done
               (counter ^value <v> ^limit <v>)
               -->
               (write done <v>)
               (halt))
            "#,
        );
        // `modify 1 ^value 1` sets value to constant 1; to actually count
        // we need arithmetic OPS5 `compute` which we do not model, so this
        // program "counts" 0 -> 1 then halts at limit 1.
        let syms = &mut interp.program.symbols.clone();
        let c = parse_wme("(counter ^value 0 ^limit 1)", syms).unwrap();
        interp.insert(c);
        let fired = interp.run(100).unwrap();
        assert_eq!(fired, 2);
        assert_eq!(
            interp.output(),
            &["tick 0".to_string(), "done 1".to_string()]
        );
        assert_eq!(interp.cycle().unwrap(), CycleOutcome::Halted);
    }

    #[test]
    fn negated_ce_blocks_until_clear() {
        let mut interp = interpreter(
            r#"
            (p proceed
               (goal ^act go)
               - (obstacle)
               -->
               (write moving)
               (remove 1))
            "#,
        );
        let syms = &mut interp.program.symbols.clone();
        let goal = parse_wme("(goal ^act go)", syms).unwrap();
        let obstacle = parse_wme("(obstacle)", syms).unwrap();
        interp.insert(goal);
        let ob = interp.insert(obstacle);
        assert!(interp.conflict_set().is_empty(), "obstacle blocks");
        // Retract the obstacle through the public API path: a production
        // would do this; here we simulate by removing via matcher contract.
        let delta = interp.matcher.remove_wme(&interp.wm.clone(), ob);
        interp.conflict.apply(&delta);
        interp.wm.remove(ob);
        assert_eq!(interp.conflict_set().len(), 1);
        assert_eq!(interp.run(10).unwrap(), 1);
        assert_eq!(interp.output(), &["moving".to_string()]);
    }

    #[test]
    fn quiescence_without_rules() {
        let mut interp = interpreter("(p r (never ^x 1) --> (halt))");
        assert_eq!(interp.cycle().unwrap(), CycleOutcome::Quiescent);
        assert_eq!(interp.run(5).unwrap(), 0);
    }

    #[test]
    fn refraction_prevents_infinite_refiring() {
        let mut interp = interpreter(
            r#"
            (p loop-forever (thing ^here yes) --> (write saw-it))
            "#,
        );
        let syms = &mut interp.program.symbols.clone();
        interp.insert(parse_wme("(thing ^here yes)", syms).unwrap());
        let fired = interp.run(100).unwrap();
        assert_eq!(fired, 1, "refraction allows exactly one firing");
        assert_eq!(interp.output().len(), 1);
    }

    #[test]
    fn stats_count_changes() {
        let mut interp = interpreter(
            r#"
            (p expand (seed ^n <n>) --> (make leaf ^of <n>) (make leaf2 ^of <n>) (remove 1))
            "#,
        );
        let syms = &mut interp.program.symbols.clone();
        interp.insert(parse_wme("(seed ^n 7)", syms).unwrap());
        interp.run(10).unwrap();
        let stats = interp.stats();
        assert_eq!(stats.firings, 1);
        // 1 initial insert + (1 remove + 2 makes) = 4 changes.
        assert_eq!(stats.wme_changes, 4);
        assert_eq!(stats.inserts, 3);
        assert_eq!(stats.deletes, 1);
        assert!((stats.changes_per_firing() - 4.0).abs() < 1e-9);
        assert!(stats.conflict_set_peak >= 1);
    }

    #[test]
    fn compute_evaluates_left_associatively() {
        let mut interp = interpreter(
            r#"
            (p calc (in ^n <n>)
               -->
               (remove 1)
               (write (compute <n> + 1 * 2))      ; (5+1)*2 = 12, no precedence
               (write (compute 10 - <n> - 2))     ; (10-5)-2 = 3
               (write (compute <n> // 2))         ; 2
               (write (compute <n> \\ 3)))        ; 2
            "#,
        );
        let syms = &mut interp.program.symbols.clone();
        interp.insert(parse_wme("(in ^n 5)", syms).unwrap());
        interp.run(5).unwrap();
        assert_eq!(interp.output(), &["12", "3", "2", "2"]);
    }

    #[test]
    fn bind_extends_and_shadows_bindings() {
        let mut interp = interpreter(
            r#"
            (p b (a ^x <n>)
               -->
               (remove 1)
               (bind <tmp> (compute <n> * 2))
               (write first <tmp>)
               (bind <tmp> (compute <tmp> + 1))
               (write then <tmp>)
               (bind <n> 0)
               (write shadowed <n>))
            "#,
        );
        let syms = &mut interp.program.symbols.clone();
        interp.insert(parse_wme("(a ^x 21)", syms).unwrap());
        interp.run(5).unwrap();
        assert_eq!(interp.output(), &["first 42", "then 43", "shadowed 0"]);
    }

    #[test]
    fn compute_division_by_zero_is_a_runtime_error() {
        let mut interp = interpreter("(p bad (in ^n <n>) --> (write (compute 1 // <n>)))");
        let syms = &mut interp.program.symbols.clone();
        interp.insert(parse_wme("(in ^n 0)", syms).unwrap());
        let err = interp.run(5).unwrap_err();
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn compute_on_symbol_binding_is_a_runtime_error() {
        let mut interp = interpreter("(p bad (in ^n <n>) --> (write (compute <n> + 1)))");
        let syms = &mut interp.program.symbols.clone();
        interp.insert(parse_wme("(in ^n red)", syms).unwrap());
        let err = interp.run(5).unwrap_err();
        assert!(err.to_string().contains("bound to a symbol"));
    }

    #[test]
    fn sanitizer_stays_clean_on_a_legal_run() {
        let mut interp = interpreter(
            r#"
            (p expand (seed ^n <n>) --> (make leaf ^of <n>) (remove 1))
            (p relabel (leaf ^of <n>) --> (modify 1 ^of 0))
            "#,
        );
        let sanitizer = Arc::new(crate::effects::WriteSanitizer::new(interp.program()));
        interp.attach_sanitizer(Arc::clone(&sanitizer));
        let syms = &mut interp.program.symbols.clone();
        interp.insert(parse_wme("(seed ^n 7)", syms).unwrap());
        interp.run(10).unwrap();
        assert!(interp.stats().firings >= 2);
        // Interpreter-level touch checks plus matcher-batch context ran.
        assert!(sanitizer.checks() > 0);
        assert!(sanitizer.is_clean(), "{:?}", sanitizer.violations());
        assert_eq!(sanitizer.current_firing(), None, "context closed");
    }

    #[test]
    fn variable_bindings_flow_to_rhs() {
        let mut interp = interpreter(
            r#"
            (p copy (src ^val <v> ^tag <t>) --> (make dst ^val <v> ^tag <t>) (remove 1))
            "#,
        );
        let syms = &mut interp.program.symbols.clone();
        interp.insert(parse_wme("(src ^val 42 ^tag hello)", syms).unwrap());
        interp.run(10).unwrap();
        let dst = interp.program().symbols.lookup("dst").unwrap();
        let val = interp.program().symbols.lookup("val").unwrap();
        let found: Vec<_> = interp
            .working_memory()
            .iter()
            .filter(|(_, w, _)| w.class() == dst)
            .collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1.get(val), Some(Value::Int(42)));
    }
}
