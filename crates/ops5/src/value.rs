//! Attribute values.

use std::fmt;

use crate::ast::PredOp;
use crate::symbol::{SymbolId, SymbolTable};

/// A value stored in a working-memory-element attribute.
///
/// OPS5 values are symbolic or numeric constants. We support interned
/// symbols and 64-bit integers; the predicate operators (`<`, `<=`, …)
/// order integers numerically and treat symbols as incomparable, exactly
/// as OPS5's numeric predicates behaved on symbolic atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An interned symbolic constant.
    Sym(SymbolId),
    /// An integer constant.
    Int(i64),
}

impl Value {
    /// Serializes the value into `w` (one tag byte, then the payload).
    pub fn encode(self, w: &mut crate::codec::ByteWriter) {
        match self {
            Value::Sym(s) => {
                w.u8(0);
                w.u32(s.index() as u32);
            }
            Value::Int(i) => {
                w.u8(1);
                w.i64(i);
            }
        }
    }

    /// Deserializes a value written by [`Value::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::codec::CodecError`] on a bad tag or truncation.
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Value, crate::codec::CodecError> {
        match r.u8()? {
            0 => Ok(Value::Sym(SymbolId::from_index(r.u32()? as usize))),
            1 => Ok(Value::Int(r.i64()?)),
            _ => Err(crate::codec::CodecError::Invalid("bad value tag")),
        }
    }

    /// True when the value is a symbol.
    pub fn is_sym(self) -> bool {
        matches!(self, Value::Sym(_))
    }

    /// True when the value is an integer.
    pub fn is_int(self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// Evaluates `self op other`, the heart of every match test.
    ///
    /// Equality and inequality apply to any pair. The ordering predicates
    /// apply only to two integers and are false otherwise (a failed match,
    /// not an error — OPS5 condition tests never abort). `SameType`
    /// (OPS5 `<=>`) is true when both values are symbols or both are
    /// integers.
    ///
    /// # Examples
    ///
    /// ```
    /// use ops5::{Value, PredOp};
    ///
    /// assert!(Value::Int(3).compare(PredOp::Lt, Value::Int(5)));
    /// assert!(!Value::Int(5).compare(PredOp::Lt, Value::Int(3)));
    /// assert!(Value::Int(1).compare(PredOp::SameType, Value::Int(9)));
    /// ```
    pub fn compare(self, op: PredOp, other: Value) -> bool {
        match op {
            PredOp::Eq => self == other,
            PredOp::Ne => self != other,
            PredOp::SameType => matches!(
                (self, other),
                (Value::Sym(_), Value::Sym(_)) | (Value::Int(_), Value::Int(_))
            ),
            PredOp::Lt | PredOp::Le | PredOp::Gt | PredOp::Ge => match (self, other) {
                (Value::Int(a), Value::Int(b)) => match op {
                    PredOp::Lt => a < b,
                    PredOp::Le => a <= b,
                    PredOp::Gt => a > b,
                    PredOp::Ge => a >= b,
                    _ => unreachable!(),
                },
                _ => false,
            },
        }
    }

    /// Renders the value using `symbols` for symbol text.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Value, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Value::Sym(s) => write!(f, "{}", self.1.name(*s)),
                    Value::Int(i) => write!(f, "{i}"),
                }
            }
        }
        D(self, symbols)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<SymbolId> for Value {
    fn from(v: SymbolId) -> Self {
        Value::Sym(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn sym(t: &mut SymbolTable, s: &str) -> Value {
        Value::Sym(t.intern(s))
    }

    #[test]
    fn equality_covers_both_kinds() {
        let mut t = SymbolTable::new();
        let red = sym(&mut t, "red");
        let blue = sym(&mut t, "blue");
        assert!(red.compare(PredOp::Eq, red));
        assert!(red.compare(PredOp::Ne, blue));
        assert!(Value::Int(4).compare(PredOp::Eq, Value::Int(4)));
        assert!(Value::Int(4).compare(PredOp::Ne, Value::Int(5)));
        // A symbol never equals an integer.
        assert!(red.compare(PredOp::Ne, Value::Int(0)));
    }

    #[test]
    fn ordering_predicates_are_numeric_only() {
        let mut t = SymbolTable::new();
        let s = sym(&mut t, "sym");
        assert!(Value::Int(1).compare(PredOp::Lt, Value::Int(2)));
        assert!(Value::Int(2).compare(PredOp::Ge, Value::Int(2)));
        assert!(Value::Int(3).compare(PredOp::Le, Value::Int(3)));
        assert!(Value::Int(4).compare(PredOp::Gt, Value::Int(3)));
        // Symbol operands make ordering predicates fail, not panic.
        assert!(!s.compare(PredOp::Lt, Value::Int(2)));
        assert!(!Value::Int(2).compare(PredOp::Gt, s));
        assert!(!s.compare(PredOp::Ge, s));
    }

    #[test]
    fn same_type_matches_kinds() {
        let mut t = SymbolTable::new();
        let a = sym(&mut t, "a");
        let b = sym(&mut t, "b");
        assert!(a.compare(PredOp::SameType, b));
        assert!(Value::Int(1).compare(PredOp::SameType, Value::Int(-7)));
        assert!(!a.compare(PredOp::SameType, Value::Int(1)));
    }

    #[test]
    fn display_renders_symbol_text() {
        let mut t = SymbolTable::new();
        let v = sym(&mut t, "find-blk");
        assert_eq!(format!("{}", v.display(&t)), "find-blk");
        assert_eq!(format!("{}", Value::Int(-3).display(&t)), "-3");
    }

    #[test]
    fn conversions() {
        let mut t = SymbolTable::new();
        let id = t.intern("w");
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(id), Value::Sym(id));
    }
}
