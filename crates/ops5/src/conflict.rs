//! The conflict set and OPS5's conflict-resolution strategies.
//!
//! Conflict resolution is the second phase of the recognize–act cycle
//! (Section 2.1 of the paper): out of all satisfied instantiations, pick
//! one to fire. OPS5 offers two strategies, both implemented here:
//!
//! * **LEX** — refraction, then recency (time tags sorted descending,
//!   compared lexicographically), then specificity.
//! * **MEA** — like LEX, but the recency of the WME matching the *first*
//!   condition element dominates, which is what makes means–ends-analysis
//!   style goal stacks work.

use std::cmp::Ordering;
use std::collections::HashSet;

use crate::ast::Program;
use crate::matcher::{Instantiation, MatchDelta};
use crate::wme::{TimeTag, WorkingMemory};

/// Conflict-resolution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The LEX strategy (default in OPS5).
    #[default]
    Lex,
    /// The MEA (means–ends analysis) strategy.
    Mea,
}

/// The conflict set: live instantiations plus the refraction memory of
/// already-fired ones.
#[derive(Debug, Clone, Default)]
pub struct ConflictSet {
    live: HashSet<Instantiation>,
    fired: HashSet<Instantiation>,
    peak: usize,
}

impl ConflictSet {
    /// Creates an empty conflict set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a matcher delta: removals first, then additions.
    pub fn apply(&mut self, delta: &MatchDelta) {
        for inst in &delta.removed {
            self.live.remove(inst);
            // Refraction memory is keyed by WME identity; once the
            // instantiation leaves the conflict set its entry can never
            // match again (handles are not reused), so drop it.
            self.fired.remove(inst);
        }
        for inst in &delta.added {
            self.live.insert(inst.clone());
        }
        self.peak = self.peak.max(self.live.len());
    }

    /// Number of live instantiations.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no instantiation is satisfied.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Largest size the conflict set has reached.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Iterates over live instantiations (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Instantiation> {
        self.live.iter()
    }

    /// Whether `inst` has fired and is still refracted.
    pub fn has_fired(&self, inst: &Instantiation) -> bool {
        self.fired.contains(inst)
    }

    /// Records that `inst` fired (refraction).
    pub fn mark_fired(&mut self, inst: &Instantiation) {
        self.fired.insert(inst.clone());
    }

    /// Selects the dominant unfired instantiation under `strategy`.
    ///
    /// Returns `None` at quiescence (every live instantiation has already
    /// fired, or the set is empty), which halts the interpreter.
    pub fn select(
        &self,
        wm: &WorkingMemory,
        program: &Program,
        strategy: Strategy,
    ) -> Option<Instantiation> {
        self.live
            .iter()
            .filter(|inst| !self.fired.contains(*inst))
            .max_by(|a, b| compare(a, b, wm, program, strategy))
            .cloned()
    }
}

/// Recency key: the instantiation's time tags sorted descending.
fn recency_key(inst: &Instantiation, wm: &WorkingMemory) -> Vec<TimeTag> {
    let mut tags: Vec<TimeTag> = inst
        .wmes
        .iter()
        .map(|&w| wm.time_tag(w).unwrap_or_default())
        .collect();
    tags.sort_unstable_by(|a, b| b.cmp(a));
    tags
}

/// LEX recency comparison on descending tag vectors: pairwise compare;
/// on a common prefix the longer vector dominates.
fn compare_recency(a: &[TimeTag], b: &[TimeTag]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// Total order on instantiations under a strategy; `Greater` means
/// "dominates". Falls back to a deterministic arbitrary order so runs
/// are reproducible. Exposed so tools (and property tests) can inspect
/// why one instantiation beat another.
pub fn compare(
    a: &Instantiation,
    b: &Instantiation,
    wm: &WorkingMemory,
    program: &Program,
    strategy: Strategy,
) -> Ordering {
    if strategy == Strategy::Mea {
        let fa = a
            .wmes
            .first()
            .and_then(|&w| wm.time_tag(w))
            .unwrap_or_default();
        let fb = b
            .wmes
            .first()
            .and_then(|&w| wm.time_tag(w))
            .unwrap_or_default();
        match fa.cmp(&fb) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    match compare_recency(&recency_key(a, wm), &recency_key(b, wm)) {
        Ordering::Equal => {}
        other => return other,
    }
    let sa = program.production(a.production).specificity;
    let sb = program.production(b.production).specificity;
    match sa.cmp(&sb) {
        Ordering::Equal => {}
        other => return other,
    }
    // Deterministic arbitrary tie-break: lower production id, then wmes.
    match b.production.cmp(&a.production) {
        Ordering::Equal => b.wmes.cmp(&a.wmes),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Production, ProductionId};
    use crate::value::Value;
    use crate::wme::{Wme, WmeId};

    fn production(id: u32, specificity: usize) -> Production {
        Production {
            name: format!("p{id}"),
            id: ProductionId(id),
            ces: Vec::new(),
            actions: Vec::new(),
            variables: Vec::new(),
            binding_sites: Vec::new(),
            specificity,
        }
    }

    fn setup(n_wmes: usize) -> (Program, WorkingMemory, Vec<WmeId>) {
        let mut program = Program::new();
        let class = program.symbols.intern("c");
        let attr = program.symbols.intern("a");
        program.productions.push(production(0, 2));
        program.productions.push(production(1, 5));
        let mut wm = WorkingMemory::new();
        let ids = (0..n_wmes)
            .map(|i| {
                wm.add(Wme::new(class, vec![(attr, Value::Int(i as i64))]))
                    .0
            })
            .collect();
        (program, wm, ids)
    }

    #[test]
    fn lex_prefers_recency() {
        let (program, wm, ids) = setup(3);
        let older = Instantiation::new(ProductionId(0), vec![ids[0], ids[1]]);
        let newer = Instantiation::new(ProductionId(0), vec![ids[0], ids[2]]);
        let mut cs = ConflictSet::new();
        cs.apply(&MatchDelta {
            added: vec![older, newer.clone()],
            removed: vec![],
        });
        assert_eq!(cs.select(&wm, &program, Strategy::Lex), Some(newer));
    }

    #[test]
    fn lex_longer_wins_on_equal_prefix() {
        let (program, wm, ids) = setup(3);
        let short = Instantiation::new(ProductionId(0), vec![ids[2]]);
        let long = Instantiation::new(ProductionId(0), vec![ids[2], ids[0]]);
        let mut cs = ConflictSet::new();
        cs.apply(&MatchDelta {
            added: vec![short, long.clone()],
            removed: vec![],
        });
        assert_eq!(cs.select(&wm, &program, Strategy::Lex), Some(long));
    }

    #[test]
    fn specificity_breaks_recency_ties() {
        let (program, wm, ids) = setup(1);
        let weak = Instantiation::new(ProductionId(0), vec![ids[0]]);
        let strong = Instantiation::new(ProductionId(1), vec![ids[0]]);
        let mut cs = ConflictSet::new();
        cs.apply(&MatchDelta {
            added: vec![weak, strong.clone()],
            removed: vec![],
        });
        assert_eq!(cs.select(&wm, &program, Strategy::Lex), Some(strong));
    }

    #[test]
    fn mea_first_ce_recency_dominates() {
        let (program, wm, ids) = setup(3);
        // Under LEX, `a` wins (contains the newest tag anywhere).
        // Under MEA, `b` wins (newest *first-CE* tag).
        let a = Instantiation::new(ProductionId(0), vec![ids[0], ids[2]]);
        let b = Instantiation::new(ProductionId(0), vec![ids[1], ids[0]]);
        let mut cs = ConflictSet::new();
        cs.apply(&MatchDelta {
            added: vec![a.clone(), b.clone()],
            removed: vec![],
        });
        assert_eq!(cs.select(&wm, &program, Strategy::Lex), Some(a));
        assert_eq!(cs.select(&wm, &program, Strategy::Mea), Some(b));
    }

    #[test]
    fn refraction_skips_fired() {
        let (program, wm, ids) = setup(2);
        let only = Instantiation::new(ProductionId(0), vec![ids[0]]);
        let mut cs = ConflictSet::new();
        cs.apply(&MatchDelta {
            added: vec![only.clone()],
            removed: vec![],
        });
        assert_eq!(cs.select(&wm, &program, Strategy::Lex), Some(only.clone()));
        cs.mark_fired(&only);
        assert!(cs.has_fired(&only));
        assert_eq!(cs.select(&wm, &program, Strategy::Lex), None, "quiescent");
        assert_eq!(cs.len(), 1, "still satisfied, just refracted");
    }

    #[test]
    fn removal_clears_refraction() {
        let (program, wm, ids) = setup(1);
        let inst = Instantiation::new(ProductionId(0), vec![ids[0]]);
        let mut cs = ConflictSet::new();
        cs.apply(&MatchDelta {
            added: vec![inst.clone()],
            removed: vec![],
        });
        cs.mark_fired(&inst);
        cs.apply(&MatchDelta {
            added: vec![],
            removed: vec![inst.clone()],
        });
        assert!(cs.is_empty());
        assert!(!cs.has_fired(&inst));
        let _ = (&program, &wm);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let (_program, _wm, ids) = setup(3);
        let mut cs = ConflictSet::new();
        let insts: Vec<_> = ids
            .iter()
            .map(|&w| Instantiation::new(ProductionId(0), vec![w]))
            .collect();
        cs.apply(&MatchDelta {
            added: insts.clone(),
            removed: vec![],
        });
        cs.apply(&MatchDelta {
            added: vec![],
            removed: insts,
        });
        assert_eq!(cs.len(), 0);
        assert_eq!(cs.peak(), 3);
    }

    #[test]
    fn select_is_deterministic_under_full_ties() {
        let (program, wm, ids) = setup(1);
        let a = Instantiation::new(ProductionId(0), vec![ids[0]]);
        let b = Instantiation::new(ProductionId(1), vec![ids[0]]);
        // Force equal specificity.
        let mut program = program;
        program.productions[1].specificity = 2;
        let mut cs = ConflictSet::new();
        cs.apply(&MatchDelta {
            added: vec![a.clone(), b],
            removed: vec![],
        });
        // Lower production id wins the arbitrary tie-break.
        assert_eq!(cs.select(&wm, &program, Strategy::Lex), Some(a));
    }
}
