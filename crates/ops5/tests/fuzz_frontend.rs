//! Fuzz-style tests for the front end: the lexer and parser must never
//! panic, and errors must be reported, not swallowed. Inputs are
//! generated from deterministic seeds.

use ops5::{parse_program, Lexer, SymbolTable};
use psm_obs::Rng64;

/// Random (mostly printable, occasionally arbitrary) input string.
fn random_input(rng: &mut Rng64) -> String {
    let len = rng.gen_range(0..120usize);
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        let c = if rng.gen_bool(0.9) {
            // Printable ASCII plus whitespace.
            char::from(rng.gen_range(0x20..0x7fu32) as u8)
        } else {
            // Arbitrary scalar values, including multibyte and controls.
            char::from_u32(rng.gen_range(0..0x11_0000u32)).unwrap_or('\u{fffd}')
        };
        s.push(c);
    }
    s
}

/// Arbitrary input never panics the lexer.
#[test]
fn lexer_total_on_arbitrary_input() {
    let mut rng = Rng64::new(0x1E8E5);
    for _ in 0..256 {
        let s = random_input(&mut rng);
        let _ = Lexer::tokenize(&s);
    }
}

/// Arbitrary input never panics the parser.
#[test]
fn parser_total_on_arbitrary_input() {
    let mut rng = Rng64::new(0x9A85E);
    for _ in 0..256 {
        let s = random_input(&mut rng);
        let _ = parse_program(&s);
    }
}

/// OPS5-flavoured token soup never panics the parser either (this
/// reaches much deeper into the grammar than arbitrary bytes).
#[test]
fn parser_total_on_token_soup() {
    const VOCAB: &[&str] = &[
        "(",
        ")",
        "{",
        "}",
        "<<",
        ">>",
        "-->",
        "-",
        "p",
        "make",
        "remove",
        "modify",
        "write",
        "halt",
        "bind",
        "compute",
        "literalize",
        "^a",
        "^color",
        "<x>",
        "<y>",
        "red",
        "7",
        "-3",
        "=",
        "<>",
        "<",
        "<=",
        ">",
        ">=",
        "<=>",
        "+",
        "*",
        "//",
        "\\\\",
    ];
    let mut rng = Rng64::new(0x50FA);
    for _ in 0..256 {
        let n = rng.gen_range(0..40usize);
        let parts: Vec<&str> = (0..n).map(|_| *rng.choose(VOCAB)).collect();
        let src = parts.join(" ");
        let _ = parse_program(&src);
    }
}

/// Valid WME literals round-trip through display and reparse.
#[test]
fn wme_display_reparses() {
    let mut rng = Rng64::new(0x83A85E);
    let ident = |rng: &mut Rng64, max_extra: usize| {
        let mut s = String::new();
        s.push(char::from(rng.gen_range(b'a'..=b'z')));
        for _ in 0..rng.gen_range(0..=max_extra) {
            let c = if rng.gen_bool(0.7) {
                rng.gen_range(b'a'..=b'z')
            } else {
                rng.gen_range(b'0'..=b'9')
            };
            s.push(char::from(c));
        }
        s
    };
    for _ in 0..200 {
        let mut syms = SymbolTable::new();
        let class = ident(&mut rng, 6);
        let mut src = format!("({class}");
        for _ in 0..rng.gen_range(0..4usize) {
            let a = ident(&mut rng, 4);
            let v = rng.gen_range(-100..100i64);
            src.push_str(&format!(" ^{a} {v}"));
        }
        src.push(')');
        let wme = ops5::parse_wme(&src, &mut syms).unwrap();
        let printed = format!("{}", wme.display(&syms));
        let reparsed = ops5::parse_wme(&printed, &mut syms).unwrap();
        assert_eq!(wme, reparsed);
    }
}
