//! Fuzz-style property tests for the front end: the lexer and parser
//! must never panic, and errors must be reported, not swallowed.

use proptest::prelude::*;

use ops5::{parse_program, Lexer, SymbolTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary input never panics the lexer.
    #[test]
    fn lexer_total_on_arbitrary_input(s in ".*") {
        let _ = Lexer::tokenize(&s);
    }

    /// Arbitrary input never panics the parser.
    #[test]
    fn parser_total_on_arbitrary_input(s in ".*") {
        let _ = parse_program(&s);
    }

    /// OPS5-flavoured token soup never panics the parser either (this
    /// reaches much deeper into the grammar than arbitrary bytes).
    #[test]
    fn parser_total_on_token_soup(parts in prop::collection::vec(
        prop::sample::select(vec![
            "(", ")", "{", "}", "<<", ">>", "-->", "-", "p", "make", "remove",
            "modify", "write", "halt", "bind", "compute", "literalize",
            "^a", "^color", "<x>", "<y>", "red", "7", "-3", "=", "<>", "<",
            "<=", ">", ">=", "<=>", "+", "*", "//", "\\\\",
        ]),
        0..40,
    )) {
        let src = parts.join(" ");
        let _ = parse_program(&src);
    }

    /// Valid WME literals round-trip through display and reparse.
    #[test]
    fn wme_display_reparses(
        class in "[a-z][a-z0-9]{0,6}",
        attrs in prop::collection::vec(("[a-z][a-z0-9]{0,4}", -100i64..100), 0..4),
    ) {
        let mut syms = SymbolTable::new();
        let mut src = format!("({class}");
        for (a, v) in &attrs {
            src.push_str(&format!(" ^{a} {v}"));
        }
        src.push(')');
        let wme = ops5::parse_wme(&src, &mut syms).unwrap();
        let printed = format!("{}", wme.display(&syms));
        let reparsed = ops5::parse_wme(&printed, &mut syms).unwrap();
        prop_assert_eq!(wme, reparsed);
    }
}
