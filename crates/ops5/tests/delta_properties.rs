//! Properties of the conflict-set delta algebra.
//!
//! `MatchDelta::merge` implements order-insensitive cancellation (an
//! instantiation added by one change and removed by a later one nets to
//! nothing). The parallel engine relies on this: per-worker deltas are
//! merged in whatever order workers finish. These tests check that for
//! any legal event history, any segmentation of the history into batches
//! merges to the same net delta — exercised over many deterministic
//! seeds.

use ops5::{Instantiation, MatchDelta, ProductionId, WmeId};
use psm_obs::Rng64;

/// A legal event history over a small instantiation pool: each
/// instantiation alternates add/remove starting with add (legality by
/// construction; the RNG just supplies entropy).
fn random_history(rng: &mut Rng64) -> Vec<(usize, bool)> {
    let len = rng.gen_range(0..40usize);
    let mut present = [false; 6];
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let i = rng.gen_range(0..6usize);
        // Toggle: add when absent, remove when present — always legal.
        out.push((i, !present[i]));
        present[i] = !present[i];
    }
    out
}

fn inst(i: usize) -> Instantiation {
    Instantiation::new(ProductionId((i % 3) as u32), vec![WmeId::from_index(i)])
}

fn delta_of(events: &[(usize, bool)]) -> MatchDelta {
    let mut d = MatchDelta::new();
    for &(i, add) in events {
        let single = if add {
            MatchDelta {
                added: vec![inst(i)],
                removed: vec![],
            }
        } else {
            MatchDelta {
                added: vec![],
                removed: vec![inst(i)],
            }
        };
        d.merge(single);
    }
    d
}

/// Any segmentation of a legal history merges to the same net delta.
#[test]
fn merge_is_segmentation_invariant() {
    let mut rng = Rng64::new(0xDE17A);
    for case in 0..200 {
        let events = random_history(&mut rng);
        let mut whole = delta_of(&events);
        whole.canonicalize();

        let n_cuts = rng.gen_range(0..5usize);
        let mut cuts: Vec<usize> = (0..n_cuts)
            .map(|_| rng.gen_range(0..=events.len()))
            .collect();
        cuts.push(0);
        cuts.push(events.len());
        cuts.sort_unstable();
        cuts.dedup();

        let mut merged = MatchDelta::new();
        for pair in cuts.windows(2) {
            merged.merge(delta_of(&events[pair[0]..pair[1]]));
        }
        merged.canonicalize();
        assert_eq!(merged, whole, "case {case}");
    }
}

/// The net delta equals the final presence state: added = present at
/// the end but not at the start (start is empty), removed = empty.
#[test]
fn net_delta_matches_final_state() {
    let mut rng = Rng64::new(0xF17A1);
    for case in 0..200 {
        let events = random_history(&mut rng);
        let mut present = [false; 6];
        for &(i, add) in &events {
            present[i] = add;
        }
        let mut d = delta_of(&events);
        d.canonicalize();
        let mut expected: Vec<Instantiation> = present
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(i, _)| inst(i))
            .collect();
        expected.sort_by_key(|i| (i.production, i.wmes.clone()));
        assert_eq!(d.added, expected, "case {case}");
        assert!(d.removed.is_empty(), "history starts from empty");
    }
}
