//! Properties of the conflict-set delta algebra.
//!
//! `MatchDelta::merge` implements order-insensitive cancellation (an
//! instantiation added by one change and removed by a later one nets to
//! nothing). The parallel engine relies on this: per-worker deltas are
//! merged in whatever order workers finish. These tests check that for
//! any legal event history, any segmentation of the history into batches
//! merges to the same net delta.

use proptest::prelude::*;

use ops5::{Instantiation, MatchDelta, ProductionId, WmeId};

/// A legal event history over a small instantiation pool: each
/// instantiation alternates add/remove starting with add.
fn histories() -> impl Strategy<Value = Vec<(usize, bool)>> {
    // (instantiation index, is_add) — legality enforced by construction
    // below, the raw vec just supplies entropy.
    prop::collection::vec((0usize..6, any::<bool>()), 0..40)
}

fn inst(i: usize) -> Instantiation {
    Instantiation::new(
        ProductionId((i % 3) as u32),
        vec![WmeId::from_index(i)],
    )
}

/// Converts raw entropy into a legal signed event sequence.
fn legalize(raw: &[(usize, bool)]) -> Vec<(usize, bool)> {
    let mut present = [false; 6];
    let mut out = Vec::new();
    for &(i, _) in raw {
        // Toggle: add when absent, remove when present — always legal.
        out.push((i, !present[i]));
        present[i] = !present[i];
    }
    out
}

fn delta_of(events: &[(usize, bool)]) -> MatchDelta {
    let mut d = MatchDelta::new();
    for &(i, add) in events {
        let single = if add {
            MatchDelta {
                added: vec![inst(i)],
                removed: vec![],
            }
        } else {
            MatchDelta {
                added: vec![],
                removed: vec![inst(i)],
            }
        };
        d.merge(single);
    }
    d
}

proptest! {
    /// Any segmentation of a legal history merges to the same net delta.
    #[test]
    fn merge_is_segmentation_invariant(
        raw in histories(),
        cut_points in prop::collection::vec(0usize..40, 0..5),
    ) {
        let events = legalize(&raw);
        let mut whole = delta_of(&events);
        whole.canonicalize();

        let mut cuts: Vec<usize> = cut_points
            .into_iter()
            .map(|c| c % (events.len() + 1))
            .collect();
        cuts.push(0);
        cuts.push(events.len());
        cuts.sort_unstable();
        cuts.dedup();

        let mut merged = MatchDelta::new();
        for pair in cuts.windows(2) {
            merged.merge(delta_of(&events[pair[0]..pair[1]]));
        }
        merged.canonicalize();
        prop_assert_eq!(merged, whole);
    }

    /// The net delta equals the final presence state: added = present at
    /// the end but not at the start (start is empty), removed = empty.
    #[test]
    fn net_delta_matches_final_state(raw in histories()) {
        let events = legalize(&raw);
        let mut present = [false; 6];
        for &(i, add) in &events {
            present[i] = add;
        }
        let mut d = delta_of(&events);
        d.canonicalize();
        let mut expected: Vec<Instantiation> = present
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(i, _)| inst(i))
            .collect();
        expected.sort_by_key(|i| (i.production, i.wmes.clone()));
        prop_assert_eq!(d.added, expected);
        prop_assert!(d.removed.is_empty(), "history starts from empty");
    }
}
