//! Property-style tests on the discrete-event simulator: invariants
//! that must hold for any trace and any machine configuration,
//! exercised over many deterministic seeds.

use psm_obs::Rng64;
use psm_sim::{simulate_psm, simulate_psm_timeline, CostModel, PsmSpec, Scheduler};
use rete::{ActivationKind, Trace, TraceBuilder};

/// Builds a random but well-formed trace: every parent id precedes its
/// child, change/cycle structure is valid.
fn random_trace(seed: u64, cycles: usize) -> Trace {
    let mut rng = Rng64::new(seed);
    let mut b = TraceBuilder::new();
    for _ in 0..cycles {
        b.begin_cycle();
        let n_changes = rng.gen_range(1..=4usize);
        for _ in 0..n_changes {
            b.begin_change(rng.gen_bool(0.7));
            let root = b.record(
                None,
                ActivationKind::ConstantTest,
                0,
                rng.gen_range(1..20u32),
                0,
                1,
            );
            let n_acts = rng.gen_range(0..12usize);
            let mut ids = vec![root];
            for _ in 0..n_acts {
                let parent = ids[rng.gen_range(0..ids.len())];
                let kind = match rng.gen_range(0..4u32) {
                    0 => ActivationKind::AlphaMem,
                    1 => ActivationKind::JoinRight,
                    2 => ActivationKind::BetaMem,
                    _ => ActivationKind::JoinLeft,
                };
                let id = b.record(
                    Some(parent),
                    kind,
                    rng.gen_range(0..6u32),
                    rng.gen_range(0..6u32),
                    rng.gen_range(0..15u32),
                    rng.gen_range(0..3u32),
                );
                ids.push(id);
            }
        }
        b.end_cycle();
    }
    b.finish()
}

/// Concurrency can never exceed the processor count, true speed-up
/// can never exceed concurrency, and busy time never exceeds
/// P × makespan.
#[test]
fn concurrency_and_speedup_bounds() {
    let mut rng = Rng64::new(0x5EED);
    for _ in 0..40 {
        let seed = rng.gen_range(0..1000u64);
        let p = rng.gen_range(1..64usize);
        let trace = random_trace(seed, 5);
        let cost = CostModel::default();
        let spec = PsmSpec::paper_32().with_processors(p);
        let r = simulate_psm(&trace, &cost, &spec);
        assert!(r.concurrency <= p as f64 + 1e-9, "seed {seed} p {p}");
        assert!(r.busy_s <= p as f64 * r.makespan_s + 1e-9, "seed {seed}");
        // True speed-up excludes overheads and inflation, so it is
        // bounded by concurrency.
        assert!(r.true_speedup <= r.concurrency + 1e-9, "seed {seed}");
        assert!(r.lost_factor() >= 1.0 - 1e-9, "seed {seed}");
    }
}

/// Adding processors never makes the makespan longer (the greedy
/// scheduler is monotone in P for these traces).
#[test]
fn more_processors_never_hurt() {
    for seed in 0u64..40 {
        let trace = random_trace(seed * 7 + 1, 4);
        let cost = CostModel::default();
        let mut prev = f64::INFINITY;
        for p in [1usize, 2, 4, 8, 16, 32] {
            let r = simulate_psm(
                &trace,
                &cost,
                &PsmSpec {
                    processors: p,
                    work_inflation: 1.0,
                    bus_miss_ratio: 0.0,
                    per_node_exclusive: false,
                    ..PsmSpec::default()
                },
            );
            assert!(
                r.makespan_s <= prev * 1.000001,
                "seed {seed} P={p}: {} > {prev}",
                r.makespan_s
            );
            prev = r.makespan_s;
        }
    }
}

/// With one processor and no overheads, makespan equals total work.
#[test]
fn single_processor_is_serial() {
    for seed in 0u64..40 {
        let trace = random_trace(seed * 13 + 3, 3);
        let cost = CostModel::default();
        let spec = PsmSpec {
            processors: 1,
            mips: 2.0,
            scheduler: Scheduler::Hardware { bus_cycle_us: 0.0 },
            per_node_exclusive: false,
            parallel_changes: true,
            bus_miss_ratio: 0.0,
            bus_refs_per_sec: 1e12,
            work_inflation: 1.0,
        };
        let r = simulate_psm(&trace, &cost, &spec);
        let serial_s = cost.trace_cost(&trace) as f64 / 2.0e6;
        assert!((r.makespan_s - serial_s).abs() < 1e-9, "seed {seed}");
        assert!((r.true_speedup - 1.0).abs() < 1e-6, "seed {seed}");
    }
}

/// Inflating work scales the makespan proportionally (bus and
/// scheduler disabled).
#[test]
fn work_inflation_scales_linearly() {
    for seed in 0u64..30 {
        let trace = random_trace(seed * 31 + 5, 3);
        let cost = CostModel::default();
        let base_spec = PsmSpec {
            processors: 4,
            scheduler: Scheduler::Hardware { bus_cycle_us: 0.0 },
            bus_miss_ratio: 0.0,
            work_inflation: 1.0,
            per_node_exclusive: false,
            ..PsmSpec::default()
        };
        let r1 = simulate_psm(&trace, &cost, &base_spec);
        let mut doubled = base_spec;
        doubled.work_inflation = 2.0;
        let r2 = simulate_psm(&trace, &cost, &doubled);
        assert!(
            (r2.makespan_s - 2.0 * r1.makespan_s).abs() < 1e-9,
            "seed {seed}"
        );
    }
}

/// The captured timeline is consistent with the aggregate result for
/// arbitrary traces: same busy time, slices within the makespan,
/// overhead components bounded by slice durations.
#[test]
fn timeline_matches_aggregate_on_random_traces() {
    for seed in 0u64..25 {
        let trace = random_trace(seed * 17 + 11, 4);
        let cost = CostModel::default();
        let spec = PsmSpec::paper_32().with_processors(8);
        let (r, tl) = simulate_psm_timeline(&trace, &cost, &spec);
        assert_eq!(simulate_psm(&trace, &cost, &spec), r, "seed {seed}");
        let busy_s: f64 = tl.busy_us_per_proc().iter().sum::<f64>() / 1e6;
        assert!((busy_s - r.busy_s).abs() < 1e-9, "seed {seed}");
        for s in &tl.slices {
            assert!((s.proc as usize) < tl.processors, "seed {seed}");
            assert!(
                s.start_us + s.dur_us <= tl.makespan_us + 1e-9,
                "seed {seed}"
            );
            assert!(
                s.bus_stall_us + s.sched_us <= s.dur_us + 1e-9,
                "seed {seed}"
            );
        }
    }
}
