//! Publishing simulated-machine results into a live metrics registry.
//!
//! The telemetry plane (see the `psm-telemetry` crate) scrapes one
//! shared [`psm_obs::Registry`]; this module is how a DES run lands its
//! §6 headline numbers — concurrency, true speed-up, loss factor —
//! next to the real engine's counters so `psmtop` and `/metrics` show
//! both sides of the nominal-vs-true story at once.
//!
//! Gauges are integral, so ratios are published in milli-units
//! (`concurrency` 15.92 ⇒ `sim.concurrency_milli` 15920). Each metric
//! carries a `system` label distinguishing concurrent runs.

use psm_obs::Obs;

use crate::des::SimResult;

/// Publishes `result` into `obs` under `sim.*{system="..."}` gauges.
///
/// Idempotent per system: re-publishing overwrites the previous run's
/// values, so a driver loop can call this every report interval.
pub fn publish_sim_result(obs: &Obs, system: &str, result: &SimResult) {
    let g = |name: &str, value: i64| {
        obs.metrics
            .gauge(&format!("{name}{{system=\"{system}\"}}"))
            .set(value);
    };
    let milli = |x: f64| (x * 1000.0).round() as i64;
    g("sim.processors", result.processors as i64);
    g("sim.concurrency_milli", milli(result.concurrency));
    g("sim.true_speedup_milli", milli(result.true_speedup));
    g("sim.lost_factor_milli", milli(result.lost_factor()));
    g(
        "sim.wme_changes_per_sec",
        result.wme_changes_per_sec.round() as i64,
    );
    g("sim.firings_per_sec", result.firings_per_sec.round() as i64);
    g("sim.bus_utilization_milli", milli(result.bus_utilization));
    g(
        "sim.sched_overhead_us",
        milli(result.sched_overhead_s * 1e3),
    );
    g("sim.makespan_us", milli(result.makespan_s * 1e3));
    g("sim.cycles", result.cycles as i64);
    g("sim.changes", result.changes as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_labeled_milli_gauges() {
        let obs = Obs::new(0);
        let result = SimResult {
            processors: 32,
            makespan_s: 2.0,
            busy_s: 16.0,
            concurrency: 15.92,
            true_speedup: 8.25,
            wme_changes_per_sec: 1234.6,
            firings_per_sec: 99.4,
            sched_overhead_s: 0.5,
            bus_utilization: 0.75,
            cycles: 10,
            changes: 40,
        };
        publish_sim_result(&obs, "vt", &result);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.gauges["sim.concurrency_milli{system=\"vt\"}"], 15920);
        assert_eq!(snap.gauges["sim.true_speedup_milli{system=\"vt\"}"], 8250);
        // lost factor = 15.92 / 8.25 ≈ 1.930
        assert_eq!(snap.gauges["sim.lost_factor_milli{system=\"vt\"}"], 1930);
        assert_eq!(snap.gauges["sim.wme_changes_per_sec{system=\"vt\"}"], 1235);
        assert_eq!(snap.gauges["sim.processors{system=\"vt\"}"], 32);

        // Re-publishing a system overwrites rather than accumulates.
        publish_sim_result(&obs, "vt", &result);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.gauges["sim.processors{system=\"vt\"}"], 32);
    }
}
