//! The discrete-event simulator for the Production System Machine.
//!
//! Replays a node-activation trace on a model of the paper's proposed
//! machine (Section 5): `P` processors at `mips` MIPS behind a shared
//! bus, a hardware or software task scheduler, and (optionally)
//! mutual exclusion between concurrent activations of the same node.
//! Each recognize–act cycle is a synchronization barrier, exactly as in
//! the paper's simulations; within a cycle all changes of the firing are
//! processed in parallel (the paper's assumption (2) for Figures 6-1 and
//! 6-2) unless `parallel_changes` is disabled.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

use psm_obs::{json, ChromeTrace};
use rete::{ActivationKind, Trace};

use crate::cost::CostModel;

/// Task-scheduler model (§5, fourth requirement).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheduler {
    /// The custom hardware scheduler: enqueue/dispatch costs one bus
    /// cycle (given in microseconds).
    Hardware {
        /// Scheduling latency per activation, in microseconds.
        bus_cycle_us: f64,
    },
    /// Software task queues: enqueue + dequeue instructions executed by
    /// the processors themselves, serialized through the queue lock.
    Software {
        /// Instructions spent per activation on queue manipulation.
        overhead_instructions: u64,
    },
}

/// The simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsmSpec {
    /// Number of processors (the paper proposes 32–64).
    pub processors: usize,
    /// Per-processor speed in MIPS (the paper assumes 2 MIPS).
    pub mips: f64,
    /// Task scheduler model.
    pub scheduler: Scheduler,
    /// Serialize activations that target the same node. The paper's
    /// Figure 6 simulations allow multiple activations of the same node
    /// to be processed in parallel (assumption (1)), relying on hashed
    /// memories and the hardware scheduler for non-interference, so this
    /// defaults to `false`; enabling it is the locking-granularity
    /// ablation.
    pub per_node_exclusive: bool,
    /// Process all changes of one firing in parallel (assumption (2) of
    /// the paper's Figure 6 simulations).
    pub parallel_changes: bool,
    /// Fraction of instructions that miss the cache and reference the
    /// shared bus.
    pub bus_miss_ratio: f64,
    /// Bus capacity in memory references per second.
    pub bus_refs_per_sec: f64,
    /// Multiplier on every activation's instruction cost, used to model
    /// work lost to reduced node sharing in the parallel implementation
    /// (1.0 = none).
    pub work_inflation: f64,
}

impl Default for PsmSpec {
    fn default() -> Self {
        PsmSpec {
            processors: 32,
            mips: 2.0,
            scheduler: Scheduler::Hardware { bus_cycle_us: 0.1 },
            per_node_exclusive: false,
            parallel_changes: true,
            bus_miss_ratio: 0.05,
            bus_refs_per_sec: 20.0e6,
            work_inflation: 1.15,
        }
    }
}

impl PsmSpec {
    /// The paper's headline configuration: 32 processors at 2 MIPS with
    /// the hardware scheduler.
    pub fn paper_32() -> Self {
        PsmSpec::default()
    }

    /// Same machine with `processors`.
    pub fn with_processors(mut self, processors: usize) -> Self {
        self.processors = processors.max(1);
        self
    }
}

/// Simulation outputs (the paper's Figure 6 quantities).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimResult {
    /// Processors simulated.
    pub processors: usize,
    /// Total simulated time (seconds).
    pub makespan_s: f64,
    /// Total processor-busy time (seconds), including scheduling
    /// overhead — what "keeping processors busy" counts.
    pub busy_s: f64,
    /// Average concurrency: busy time / makespan (Figure 6-1's y-axis).
    pub concurrency: f64,
    /// True speed-up versus the best uniprocessor implementation (the
    /// serial shared-network Rete with no overheads), §6 footnote 2.
    pub true_speedup: f64,
    /// Execution speed in working-memory changes per second (Figure
    /// 6-2's y-axis).
    pub wme_changes_per_sec: f64,
    /// Execution speed in rule firings (cycles) per second.
    pub firings_per_sec: f64,
    /// Seconds spent on scheduling overhead.
    pub sched_overhead_s: f64,
    /// Mean bus utilization (0–1).
    pub bus_utilization: f64,
    /// Cycles replayed.
    pub cycles: u64,
    /// Changes replayed.
    pub changes: u64,
}

impl SimResult {
    /// The paper's "lost factor": concurrency / true speed-up (1.93 in
    /// the 32-processor measurement).
    pub fn lost_factor(&self) -> f64 {
        if self.true_speedup == 0.0 {
            0.0
        } else {
            self.concurrency / self.true_speedup
        }
    }
}

/// One scheduled activation on the simulated machine: which processor
/// ran it, when, and how much of its duration was overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusySlice {
    /// Processor that executed the activation.
    pub proc: u32,
    /// Recognize–act cycle index.
    pub cycle: u32,
    /// Node-activation kind.
    pub kind: ActivationKind,
    /// Beta/alpha network node id.
    pub node: u32,
    /// Start time (µs from simulation start).
    pub start_us: f64,
    /// Total duration (µs), including the overhead components below.
    pub dur_us: f64,
    /// Portion of `dur_us` that is bus-contention stall (the M/M/1
    /// inflation over the contention-free instruction time).
    pub bus_stall_us: f64,
    /// Portion of `dur_us` that is task-scheduling overhead.
    pub sched_us: f64,
}

/// Per-processor schedule captured by [`simulate_psm_timeline`]:
/// every busy slice plus cycle barriers, exportable as a Chrome trace.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Number of processors simulated.
    pub processors: usize,
    /// Busy slices in scheduling order.
    pub slices: Vec<BusySlice>,
    /// End time of each recognize–act cycle (µs).
    pub cycle_ends_us: Vec<f64>,
    /// Simulated makespan (µs).
    pub makespan_us: f64,
    /// Injected fault events `(time_us, label)` from a faulted replay,
    /// exported as instant events so kills and bus stalls are visible
    /// next to the schedule they perturbed.
    pub fault_marks: Vec<(f64, String)>,
}

impl Timeline {
    /// Busy microseconds per processor (length = `processors`).
    pub fn busy_us_per_proc(&self) -> Vec<f64> {
        let mut busy = vec![0.0f64; self.processors];
        for s in &self.slices {
            if let Some(b) = busy.get_mut(s.proc as usize) {
                *b += s.dur_us;
            }
        }
        busy
    }

    /// Idle microseconds per processor against the common makespan.
    /// This is the paper's *variance* loss: processors waiting at cycle
    /// barriers or on dependency chains while others still run.
    pub fn idle_us_per_proc(&self) -> Vec<f64> {
        self.busy_us_per_proc()
            .into_iter()
            .map(|b| (self.makespan_us - b).max(0.0))
            .collect()
    }

    /// Total bus-contention stall microseconds across all slices.
    pub fn bus_stall_us(&self) -> f64 {
        self.slices.iter().map(|s| s.bus_stall_us).sum()
    }

    /// Total scheduling-overhead microseconds across all slices.
    pub fn sched_us(&self) -> f64 {
        self.slices.iter().map(|s| s.sched_us).sum()
    }

    /// Exports the schedule as a Chrome `trace_event` trace: one
    /// process (`pid`) for the machine, one thread per processor,
    /// a complete event per busy slice (with node / cycle / overhead
    /// args) and an instant event per cycle barrier.
    pub fn to_chrome(&self, pid: u32, machine: &str) -> ChromeTrace {
        let mut t = ChromeTrace::new();
        self.append_chrome(&mut t, pid, machine);
        t
    }

    /// Appends this timeline to an existing trace under process `pid`.
    /// [`HierTimeline::to_chrome`] uses this to place each cluster in
    /// its own Perfetto process group.
    pub fn append_chrome(&self, t: &mut ChromeTrace, pid: u32, machine: &str) {
        t.process_name(pid, machine);
        for proc in 0..self.processors {
            t.thread_name(pid, proc as u32, &format!("proc {proc}"));
        }
        for s in &self.slices {
            t.complete_with_args(
                pid,
                s.proc,
                &format!("{:?} n{}", s.kind, s.node),
                "activation",
                s.start_us,
                s.dur_us,
                vec![
                    ("node".to_string(), json::number(s.node as f64)),
                    ("cycle".to_string(), json::number(s.cycle as f64)),
                    ("bus_stall_us".to_string(), json::number(s.bus_stall_us)),
                    ("sched_us".to_string(), json::number(s.sched_us)),
                ],
            );
        }
        for (i, end) in self.cycle_ends_us.iter().enumerate() {
            t.instant(pid, 0, &format!("cycle {i} barrier"), "cycle", *end);
        }
        for (at, label) in &self.fault_marks {
            t.instant(pid, 0, label, "fault", *at);
        }
    }
}

/// Per-cluster timelines captured by [`simulate_hierarchical_timeline`]:
/// one [`Timeline`] per cluster, sharing the global cycle barriers.
#[derive(Debug, Clone, Default)]
pub struct HierTimeline {
    /// One schedule per cluster; thread rows are the cluster's
    /// processors.
    pub clusters: Vec<Timeline>,
}

impl HierTimeline {
    /// Total busy microseconds across all clusters.
    pub fn busy_us(&self) -> f64 {
        self.clusters
            .iter()
            .map(|c| c.busy_us_per_proc().iter().sum::<f64>())
            .sum()
    }

    /// Exports the hierarchical schedule as a Chrome `trace_event`
    /// trace with one process group per cluster: cluster `i` becomes
    /// pid `base_pid + i` named `"<machine> cluster <i>"`, so Perfetto
    /// renders each cluster as a collapsible process with its
    /// processors as thread rows.
    pub fn to_chrome(&self, base_pid: u32, machine: &str) -> ChromeTrace {
        let mut t = ChromeTrace::new();
        for (ci, tl) in self.clusters.iter().enumerate() {
            tl.append_chrome(
                &mut t,
                base_pid + ci as u32,
                &format!("{machine} cluster {ci}"),
            );
        }
        t
    }
}

/// A fail-stop processor loss: `proc` serves no recognize–act cycle
/// that begins at or after `at_us`. Mid-cycle the processor finishes
/// its current cycle's tasks — the cycle barrier is the fault boundary,
/// matching the paper's per-cycle synchronization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorKill {
    /// Processor index (into `PsmSpec::processors`).
    pub proc: usize,
    /// Simulated time of the loss (µs).
    pub at_us: f64,
}

/// A shared-bus stall window: no activation may *start* inside
/// `[from_us, from_us + dur_us)`; ready tasks wait until the window
/// closes. Models a transient bus fault on top of the steady-state
/// M/M/1 contention model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusStall {
    /// Window start (µs).
    pub from_us: f64,
    /// Window length (µs).
    pub dur_us: f64,
}

/// A deterministic fault schedule for the simulated machine:
/// processor losses and bus-stall windows, replayed identically on
/// every run with the same trace and spec.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimFaults {
    /// Fail-stop processor losses.
    pub kills: Vec<ProcessorKill>,
    /// Transient bus-stall windows.
    pub stalls: Vec<BusStall>,
}

impl SimFaults {
    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.stalls.is_empty()
    }

    /// Adds a processor loss (builder style).
    pub fn kill(mut self, proc: usize, at_us: f64) -> Self {
        self.kills.push(ProcessorKill { proc, at_us });
        self
    }

    /// Adds a bus-stall window (builder style).
    pub fn stall(mut self, from_us: f64, dur_us: f64) -> Self {
        self.stalls.push(BusStall { from_us, dur_us });
        self
    }

    /// Kills the `n` highest-numbered of `total` processors at `at_us`,
    /// clamped so at least one processor survives. This is the §6
    /// degradation experiment's schedule.
    pub fn kill_last_n(n: usize, total: usize, at_us: f64) -> Self {
        let n = n.min(total.saturating_sub(1));
        let mut f = SimFaults::default();
        for proc in (total - n)..total {
            f.kills.push(ProcessorKill { proc, at_us });
        }
        f
    }

    /// True when `proc` has been lost by time `now_us`.
    fn dead(&self, proc: usize, now_us: f64) -> bool {
        self.kills
            .iter()
            .any(|k| k.proc == proc && now_us >= k.at_us)
    }

    /// Pushes `start_us` past every bus-stall window it lands in
    /// (windows may chain).
    fn stalled_start(&self, mut start_us: f64) -> f64 {
        loop {
            let mut moved = false;
            for w in &self.stalls {
                if start_us >= w.from_us && start_us < w.from_us + w.dur_us {
                    start_us = w.from_us + w.dur_us;
                    moved = true;
                }
            }
            if !moved {
                return start_us;
            }
        }
    }

    /// Instant-event labels for trace export.
    fn marks(&self) -> Vec<(f64, String)> {
        let mut m: Vec<(f64, String)> = self
            .kills
            .iter()
            .map(|k| (k.at_us, format!("kill proc {}", k.proc)))
            .collect();
        m.extend(
            self.stalls
                .iter()
                .map(|w| (w.from_us, format!("bus stall {:.1}us", w.dur_us))),
        );
        m
    }
}

/// Replays `trace` on the machine described by `spec` under `cost`.
///
/// Dependencies come from the trace's parent edges; each cycle is a
/// barrier. Returns aggregate [`SimResult`].
///
/// # Examples
///
/// Capture a trace from a real Rete run and simulate the paper's
/// 32-processor machine:
///
/// ```
/// use psm_sim::{simulate_psm, CostModel, PsmSpec};
/// use workloads::{capture_trace, GeneratedWorkload, Preset};
///
/// # fn main() -> Result<(), ops5::Error> {
/// let workload = GeneratedWorkload::generate(Preset::EpSoar.spec_small())?;
/// let (trace, _stats) = capture_trace(&workload, 20, 7)?;
/// let result = simulate_psm(&trace, &CostModel::default(), &PsmSpec::paper_32());
/// assert!(result.true_speedup < 10.0); // the paper's headline bound
/// # Ok(())
/// # }
/// ```
pub fn simulate_psm(trace: &Trace, cost: &CostModel, spec: &PsmSpec) -> SimResult {
    simulate_psm_core(trace, cost, spec, None, None)
}

/// [`simulate_psm`] plus the full per-processor [`Timeline`] (busy
/// slices, overhead attribution, cycle barriers) for trace export.
pub fn simulate_psm_timeline(
    trace: &Trace,
    cost: &CostModel,
    spec: &PsmSpec,
) -> (SimResult, Timeline) {
    let mut timeline = Timeline::default();
    let result = simulate_psm_core(trace, cost, spec, Some(&mut timeline), None);
    (result, timeline)
}

/// [`simulate_psm`] under an injected fault schedule: fail-stop
/// processor losses take effect at the next cycle barrier, bus-stall
/// windows delay task starts. With an empty [`SimFaults`] the result is
/// bit-identical to [`simulate_psm`]. If every processor is killed the
/// simulation keeps the lowest-numbered processor alive — a machine
/// with zero processors would deadlock at the first barrier.
pub fn simulate_psm_faulted(
    trace: &Trace,
    cost: &CostModel,
    spec: &PsmSpec,
    faults: &SimFaults,
) -> SimResult {
    simulate_psm_core(trace, cost, spec, None, Some(faults))
}

/// [`simulate_psm_faulted`] plus the [`Timeline`], with each kill and
/// bus stall recorded as an instant event for Chrome trace export.
pub fn simulate_psm_faulted_timeline(
    trace: &Trace,
    cost: &CostModel,
    spec: &PsmSpec,
    faults: &SimFaults,
) -> (SimResult, Timeline) {
    let mut timeline = Timeline {
        fault_marks: faults.marks(),
        ..Timeline::default()
    };
    let result = simulate_psm_core(trace, cost, spec, Some(&mut timeline), Some(faults));
    (result, timeline)
}

fn simulate_psm_core(
    trace: &Trace,
    cost: &CostModel,
    spec: &PsmSpec,
    mut timeline: Option<&mut Timeline>,
    faults: Option<&SimFaults>,
) -> SimResult {
    let p = spec.processors.max(1);
    // First pass: estimate bus utilization from aggregate demand, then
    // inflate instruction times by the M/M/1-style queueing factor. This
    // is the paper's "simple model of memory contention".
    let total_instr: f64 = cost.trace_cost(trace) as f64 * spec.work_inflation;
    let serial_time_s = cost.trace_cost(trace) as f64 / (spec.mips * 1e6);

    // Demand if all processors were busy: refs/sec offered to the bus.
    let offered = (p as f64).min(16.0) * spec.mips * 1e6 * spec.bus_miss_ratio;
    let utilization = (offered / spec.bus_refs_per_sec).min(0.90);
    let bus_slowdown = 1.0 / (1.0 - utilization);

    let instr_time_us =
        |instr: u64| -> f64 { (instr as f64 * spec.work_inflation) * bus_slowdown / spec.mips };
    let sched_overhead_us = match spec.scheduler {
        Scheduler::Hardware { bus_cycle_us } => bus_cycle_us,
        Scheduler::Software {
            overhead_instructions,
        } => overhead_instructions as f64 / spec.mips,
    };

    let mut now_us = 0.0f64;
    let mut busy_us = 0.0f64;
    let mut sched_us_total = 0.0f64;
    let mut changes = 0u64;

    for (cycle_idx, cycle) in trace.cycles.iter().enumerate() {
        // Processor availability heap (earliest-free first; processor
        // id as a deterministic tie-break and for timeline capture).
        // Killed processors drop out at the cycle barrier; at least
        // processor 0 always survives.
        let mut procs: BinaryHeap<Reverse<(OrderedF64, usize)>> = (0..p)
            .filter(|&i| faults.is_none_or(|f| !f.dead(i, now_us)))
            .map(|i| Reverse((OrderedF64(now_us), i)))
            .collect();
        if procs.is_empty() {
            procs.push(Reverse((OrderedF64(now_us), 0)));
        }
        let mut node_free: HashMap<(u8, u32), f64> = HashMap::new();
        let mut cycle_end = now_us;
        let mut change_start = now_us;

        for change in &cycle.changes {
            changes += 1;
            // Completion times per activation id within this change.
            let mut done: Vec<f64> = Vec::with_capacity(change.activations.len());
            for rec in &change.activations {
                let ready = match rec.parent {
                    Some(parent) => done[parent as usize],
                    None => change_start,
                };
                let instr_us = instr_time_us(cost.activation_cost(rec));
                let dur = instr_us + sched_overhead_us;
                sched_us_total += sched_overhead_us;

                let Reverse((OrderedF64(proc_free), proc)) =
                    procs.pop().expect("at least one processor");
                let mut start = ready.max(proc_free);
                if let Some(f) = faults {
                    start = f.stalled_start(start);
                }
                if spec.per_node_exclusive {
                    let key = node_key(rec.kind, rec.node);
                    let free = node_free.entry(key).or_insert(change_start);
                    start = start.max(*free);
                    *free = start + dur;
                }
                let end = start + dur;
                procs.push(Reverse((OrderedF64(end), proc)));
                busy_us += dur;
                done.push(end);
                cycle_end = cycle_end.max(end);
                if let Some(tl) = timeline.as_deref_mut() {
                    tl.slices.push(BusySlice {
                        proc: proc as u32,
                        cycle: cycle_idx as u32,
                        kind: rec.kind,
                        node: rec.node,
                        start_us: start,
                        dur_us: dur,
                        bus_stall_us: instr_us - instr_us / bus_slowdown,
                        sched_us: sched_overhead_us,
                    });
                }
            }
            if !spec.parallel_changes {
                // Serial change processing: the next change starts after
                // this one completes.
                change_start = cycle_end;
            }
        }
        now_us = cycle_end;
        if let Some(tl) = timeline.as_deref_mut() {
            tl.cycle_ends_us.push(cycle_end);
        }
    }
    if let Some(tl) = timeline {
        tl.processors = p;
        tl.makespan_us = now_us;
    }

    let makespan_s = now_us / 1e6;
    let busy_s = busy_us / 1e6;
    let concurrency = if makespan_s > 0.0 {
        busy_s / makespan_s
    } else {
        0.0
    };
    let _ = total_instr;
    SimResult {
        processors: p,
        makespan_s,
        busy_s,
        concurrency,
        true_speedup: if makespan_s > 0.0 {
            serial_time_s / makespan_s
        } else {
            0.0
        },
        wme_changes_per_sec: if makespan_s > 0.0 {
            changes as f64 / makespan_s
        } else {
            0.0
        },
        firings_per_sec: if makespan_s > 0.0 {
            trace.cycles.len() as f64 / makespan_s
        } else {
            0.0
        },
        sched_overhead_s: sched_us_total / 1e6,
        bus_utilization: utilization,
        cycles: trace.cycles.len() as u64,
        changes,
    }
}

/// The hierarchical multiprocessor the paper proposes for 100–1000
/// processors (§5): clusters of shared-memory processors, with each
/// working-memory change's activation DAG confined to one cluster
/// (preserving the fine-grain shared-state locality) and changes
/// distributed across clusters. Inter-cluster dispatch costs a fixed
/// latency per change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalSpec {
    /// Number of clusters.
    pub clusters: usize,
    /// Processors per cluster (each cluster is a small PSM).
    pub processors_per_cluster: usize,
    /// Latency to dispatch a change to a cluster (µs).
    pub dispatch_latency_us: f64,
    /// The per-cluster machine parameters (processor count ignored).
    pub node: PsmSpec,
}

impl Default for HierarchicalSpec {
    fn default() -> Self {
        HierarchicalSpec {
            clusters: 4,
            processors_per_cluster: 32,
            dispatch_latency_us: 5.0,
            node: PsmSpec::paper_32(),
        }
    }
}

/// Replays `trace` on a hierarchical machine: changes round-robin across
/// clusters, each change's activations scheduled inside its cluster, a
/// barrier per recognize–act cycle.
pub fn simulate_hierarchical(
    trace: &Trace,
    cost: &CostModel,
    spec: &HierarchicalSpec,
) -> SimResult {
    simulate_hierarchical_core(trace, cost, spec, None)
}

/// [`simulate_hierarchical`] plus a per-cluster [`HierTimeline`]:
/// each cluster's schedule (slices, cycle barriers) is captured
/// separately so [`HierTimeline::to_chrome`] can render one Perfetto
/// process group per cluster.
pub fn simulate_hierarchical_timeline(
    trace: &Trace,
    cost: &CostModel,
    spec: &HierarchicalSpec,
) -> (SimResult, HierTimeline) {
    let mut timeline = HierTimeline {
        clusters: vec![Timeline::default(); spec.clusters.max(1)],
    };
    let result = simulate_hierarchical_core(trace, cost, spec, Some(&mut timeline));
    (result, timeline)
}

fn simulate_hierarchical_core(
    trace: &Trace,
    cost: &CostModel,
    spec: &HierarchicalSpec,
    mut timeline: Option<&mut HierTimeline>,
) -> SimResult {
    let per = spec.processors_per_cluster.max(1);
    let clusters = spec.clusters.max(1);
    let serial_time_s = cost.trace_cost(trace) as f64 / (spec.node.mips * 1e6);
    let offered = (per as f64).min(16.0) * spec.node.mips * 1e6 * spec.node.bus_miss_ratio;
    let utilization = (offered / spec.node.bus_refs_per_sec).min(0.90);
    let bus_slowdown = 1.0 / (1.0 - utilization);
    let instr_time_us = |instr: u64| -> f64 {
        (instr as f64 * spec.node.work_inflation) * bus_slowdown / spec.node.mips
    };
    let sched_overhead_us = match spec.node.scheduler {
        Scheduler::Hardware { bus_cycle_us } => bus_cycle_us,
        Scheduler::Software {
            overhead_instructions,
        } => overhead_instructions as f64 / spec.node.mips,
    };

    let mut now_us = 0.0f64;
    let mut busy_us = 0.0f64;
    let mut sched_us = 0.0f64;
    let mut changes = 0u64;
    for (cycle_idx, cycle) in trace.cycles.iter().enumerate() {
        // Fresh per-cluster processor heaps each cycle (barrier);
        // processor ids give a deterministic tie-break and timeline
        // attribution.
        let mut heaps: Vec<BinaryHeap<Reverse<(OrderedF64, usize)>>> = (0..clusters)
            .map(|_| (0..per).map(|i| Reverse((OrderedF64(now_us), i))).collect())
            .collect();
        let mut cycle_end = now_us;
        for (ci, change) in cycle.changes.iter().enumerate() {
            changes += 1;
            let cluster = ci % clusters;
            let change_start = now_us + spec.dispatch_latency_us;
            let mut done: Vec<f64> = Vec::with_capacity(change.activations.len());
            for rec in &change.activations {
                let ready = match rec.parent {
                    Some(p) => done[p as usize],
                    None => change_start,
                };
                let instr_us = instr_time_us(cost.activation_cost(rec));
                let dur = instr_us + sched_overhead_us;
                sched_us += sched_overhead_us;
                let Reverse((OrderedF64(free), proc)) =
                    heaps[cluster].pop().expect("cluster has processors");
                let start = ready.max(free);
                let end = start + dur;
                heaps[cluster].push(Reverse((OrderedF64(end), proc)));
                busy_us += dur;
                done.push(end);
                cycle_end = cycle_end.max(end);
                if let Some(tl) = timeline.as_deref_mut() {
                    tl.clusters[cluster].slices.push(BusySlice {
                        proc: proc as u32,
                        cycle: cycle_idx as u32,
                        kind: rec.kind,
                        node: rec.node,
                        start_us: start,
                        dur_us: dur,
                        bus_stall_us: instr_us - instr_us / bus_slowdown,
                        sched_us: sched_overhead_us,
                    });
                }
            }
        }
        now_us = cycle_end;
        if let Some(tl) = timeline.as_deref_mut() {
            for c in &mut tl.clusters {
                c.cycle_ends_us.push(cycle_end);
            }
        }
    }
    if let Some(tl) = timeline {
        for c in &mut tl.clusters {
            c.processors = per;
            c.makespan_us = now_us;
        }
    }

    let makespan_s = now_us / 1e6;
    let busy_s = busy_us / 1e6;
    SimResult {
        processors: clusters * per,
        makespan_s,
        busy_s,
        concurrency: if makespan_s > 0.0 {
            busy_s / makespan_s
        } else {
            0.0
        },
        true_speedup: if makespan_s > 0.0 {
            serial_time_s / makespan_s
        } else {
            0.0
        },
        wme_changes_per_sec: if makespan_s > 0.0 {
            changes as f64 / makespan_s
        } else {
            0.0
        },
        firings_per_sec: if makespan_s > 0.0 {
            trace.cycles.len() as f64 / makespan_s
        } else {
            0.0
        },
        sched_overhead_s: sched_us / 1e6,
        bus_utilization: utilization,
        cycles: trace.cycles.len() as u64,
        changes,
    }
}

/// Namespaces node ids by state class so alpha and beta nodes with the
/// same index do not alias.
fn node_key(kind: ActivationKind, node: u32) -> (u8, u32) {
    let class = match kind {
        ActivationKind::ConstantTest => 0,
        ActivationKind::AlphaMem => 1,
        _ => 2,
    };
    (class, node)
}

/// Total-ordered f64 for the processor heap (times are finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rete::{ActivationKind, TraceBuilder};

    /// A cycle with one change fanning out to `width` independent join
    /// activations under one alpha-memory parent.
    fn fanout_trace(cycles: usize, width: usize) -> Trace {
        let mut b = TraceBuilder::new();
        for _ in 0..cycles {
            b.begin_cycle();
            b.begin_change(true);
            let root = b.record(None, ActivationKind::ConstantTest, 0, 4, 0, 1);
            let am = b.record(Some(root), ActivationKind::AlphaMem, 0, 0, 0, width as u32);
            for i in 0..width {
                b.record(Some(am), ActivationKind::JoinRight, i as u32 + 1, 2, 4, 1);
            }
            b.end_cycle();
        }
        b.finish()
    }

    fn spec(p: usize) -> PsmSpec {
        PsmSpec {
            processors: p,
            work_inflation: 1.0,
            bus_miss_ratio: 0.0,
            ..PsmSpec::default()
        }
    }

    #[test]
    fn one_processor_concurrency_is_one() {
        let t = fanout_trace(5, 8);
        let r = simulate_psm(&t, &CostModel::default(), &spec(1));
        assert!(r.concurrency <= 1.0 + 1e-9);
        assert!(r.concurrency > 0.9, "single processor stays busy");
        assert!(r.true_speedup <= 1.0 + 1e-9, "overheads make it < 1");
    }

    #[test]
    fn more_processors_shorten_makespan_until_saturation() {
        let t = fanout_trace(10, 16);
        let m = CostModel::default();
        let r1 = simulate_psm(&t, &m, &spec(1));
        let r8 = simulate_psm(&t, &m, &spec(8));
        let r64 = simulate_psm(&t, &m, &spec(64));
        assert!(r8.makespan_s < r1.makespan_s);
        assert!(r8.true_speedup > 2.0);
        // Fan-out of 16 cannot use 64 processors much better than 16-32.
        let r16 = simulate_psm(&t, &m, &spec(16));
        assert!(r64.true_speedup < r16.true_speedup * 1.7);
        // Concurrency never exceeds the processor count.
        assert!(r8.concurrency <= 8.0 + 1e-9);
    }

    #[test]
    fn dependencies_serialize() {
        // A chain: each activation parents the next; no parallelism.
        let mut b = TraceBuilder::new();
        b.begin_change(true);
        let mut prev = b.record(None, ActivationKind::ConstantTest, 0, 4, 0, 1);
        for i in 0..10 {
            prev = b.record(Some(prev), ActivationKind::JoinRight, i, 2, 2, 1);
        }
        let t = b.finish();
        let r = simulate_psm(&t, &CostModel::default(), &spec(32));
        assert!(
            r.concurrency < 1.2,
            "a pure chain cannot exploit processors: {}",
            r.concurrency
        );
    }

    #[test]
    fn serial_changes_option_is_slower() {
        let t = fanout_trace(6, 6);
        let m = CostModel::default();
        let par = simulate_psm(&t, &m, &spec(32));
        let mut s = spec(32);
        s.parallel_changes = false;
        let ser = simulate_psm(&t, &m, &s);
        // With one change per cycle they tie; build a multi-change trace.
        let mut b = TraceBuilder::new();
        b.begin_cycle();
        for chg in 0..4u32 {
            b.begin_change(true);
            let root = b.record(None, ActivationKind::ConstantTest, 0, 4, 0, 1);
            for i in 0..4u32 {
                // Distinct nodes per change so per-node exclusion does
                // not serialize the parallel case.
                b.record(Some(root), ActivationKind::JoinRight, chg * 4 + i, 2, 4, 1);
            }
        }
        b.end_cycle();
        let multi = b.finish();
        let par_m = simulate_psm(&multi, &m, &spec(32));
        let ser_m = simulate_psm(&multi, &m, &s);
        assert!(ser_m.makespan_s > par_m.makespan_s * 1.5);
        let _ = (par, ser);
    }

    #[test]
    fn software_scheduler_adds_overhead() {
        let t = fanout_trace(10, 8);
        let m = CostModel::default();
        let hw = simulate_psm(&t, &m, &spec(16));
        let mut s = spec(16);
        s.scheduler = Scheduler::Software {
            overhead_instructions: 100,
        };
        let sw = simulate_psm(&t, &m, &s);
        assert!(sw.makespan_s > hw.makespan_s);
        assert!(sw.sched_overhead_s > hw.sched_overhead_s);
        assert!(sw.true_speedup < hw.true_speedup);
    }

    #[test]
    fn work_inflation_reduces_true_speedup_not_concurrency() {
        let t = fanout_trace(10, 12);
        let m = CostModel::default();
        let base = simulate_psm(&t, &m, &spec(16));
        let mut s = spec(16);
        s.work_inflation = 1.5;
        let inflated = simulate_psm(&t, &m, &s);
        assert!(inflated.true_speedup < base.true_speedup * 0.8);
        assert!(inflated.lost_factor() > base.lost_factor());
    }

    #[test]
    fn per_node_exclusion_limits_same_node_parallelism() {
        // All activations hit the same node id.
        let mut b = TraceBuilder::new();
        b.begin_change(true);
        let root = b.record(None, ActivationKind::ConstantTest, 0, 4, 0, 1);
        for _ in 0..16 {
            b.record(Some(root), ActivationKind::JoinRight, 7, 2, 4, 1);
        }
        let t = b.finish();
        let m = CostModel::default();
        let mut e = spec(16);
        e.per_node_exclusive = true;
        let excl = simulate_psm(&t, &m, &e);
        let mut s = spec(16);
        s.per_node_exclusive = false;
        let free = simulate_psm(&t, &m, &s);
        assert!(excl.makespan_s > free.makespan_s * 2.0);
    }

    #[test]
    fn hierarchical_machine_scales_with_change_parallelism() {
        // Many independent changes per cycle: clusters soak them up.
        let mut b = TraceBuilder::new();
        for _ in 0..10 {
            b.begin_cycle();
            for chg in 0..16u32 {
                b.begin_change(true);
                let root = b.record(None, ActivationKind::ConstantTest, chg, 4, 0, 1);
                for i in 0..6u32 {
                    b.record(Some(root), ActivationKind::JoinRight, chg * 8 + i, 2, 6, 1);
                }
            }
            b.end_cycle();
        }
        let t = b.finish();
        let m = CostModel::default();
        let flat32 = simulate_psm(&t, &m, &spec(32));
        let hier = simulate_hierarchical(
            &t,
            &m,
            &HierarchicalSpec {
                clusters: 8,
                processors_per_cluster: 16,
                dispatch_latency_us: 2.0,
                node: spec(16),
            },
        );
        assert_eq!(hier.processors, 128);
        // With 16 parallel changes, the 128-processor hierarchy beats
        // the flat 32-processor machine.
        assert!(
            hier.true_speedup > flat32.true_speedup,
            "hier {} vs flat {}",
            hier.true_speedup,
            flat32.true_speedup
        );
        // But it cannot beat the change-parallelism bound by much: one
        // cluster per change is the ceiling.
        let hier_huge = simulate_hierarchical(
            &t,
            &m,
            &HierarchicalSpec {
                clusters: 64,
                processors_per_cluster: 16,
                dispatch_latency_us: 2.0,
                node: spec(16),
            },
        );
        assert!(
            hier_huge.true_speedup < hier.true_speedup * 1.5,
            "beyond 16 clusters the extra hardware idles"
        );
    }

    #[test]
    fn hierarchical_dispatch_latency_costs() {
        let t = fanout_trace(10, 8);
        let m = CostModel::default();
        let cheap = simulate_hierarchical(
            &t,
            &m,
            &HierarchicalSpec {
                dispatch_latency_us: 0.0,
                node: spec(8),
                ..HierarchicalSpec::default()
            },
        );
        let costly = simulate_hierarchical(
            &t,
            &m,
            &HierarchicalSpec {
                dispatch_latency_us: 50.0,
                node: spec(8),
                ..HierarchicalSpec::default()
            },
        );
        assert!(costly.makespan_s > cheap.makespan_s);
    }

    #[test]
    fn rates_are_consistent() {
        let t = fanout_trace(20, 8);
        let r = simulate_psm(&t, &CostModel::default(), &spec(32));
        assert_eq!(r.cycles, 20);
        assert_eq!(r.changes, 20);
        assert!((r.wme_changes_per_sec - r.firings_per_sec).abs() < 1e-6);
        assert!(r.lost_factor() >= 1.0);
    }

    #[test]
    fn timeline_accounts_for_every_busy_microsecond() {
        let t = fanout_trace(6, 8);
        let m = CostModel::default();
        let (r, tl) = simulate_psm_timeline(&t, &m, &spec(4));
        // The timeline and the aggregate result agree.
        assert_eq!(tl.processors, 4);
        assert_eq!(tl.cycle_ends_us.len(), 6);
        let slice_busy_s: f64 = tl.busy_us_per_proc().iter().sum::<f64>() / 1e6;
        assert!((slice_busy_s - r.busy_s).abs() < 1e-9);
        assert!((tl.makespan_us / 1e6 - r.makespan_s).abs() < 1e-12);
        // Slices stay inside the makespan and on valid processors.
        for s in &tl.slices {
            assert!((s.proc as usize) < tl.processors);
            assert!(s.start_us + s.dur_us <= tl.makespan_us + 1e-9);
            assert!(s.bus_stall_us >= 0.0 && s.bus_stall_us <= s.dur_us);
        }
        // Idle + busy = processors * makespan.
        let idle: f64 = tl.idle_us_per_proc().iter().sum();
        let busy: f64 = tl.busy_us_per_proc().iter().sum();
        assert!((idle + busy - 4.0 * tl.makespan_us).abs() < 1e-6);
        // The aggregate-only path is unchanged by capture.
        let solo = simulate_psm(&t, &m, &spec(4));
        assert_eq!(solo, r);
    }

    #[test]
    fn timeline_chrome_export_has_processor_rows() {
        let t = fanout_trace(2, 4);
        let (_, tl) = simulate_psm_timeline(&t, &CostModel::default(), &spec(3));
        let json = tl.to_chrome(1, "psm-3").to_json();
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("{\"name\":\"psm-3\"}"));
        for proc in 0..3 {
            assert!(json.contains(&format!("{{\"name\":\"proc {proc}\"}}")));
        }
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"bus_stall_us\""));
        assert!(json.contains("cycle 1 barrier"));
    }

    #[test]
    fn bus_stalls_vanish_without_misses() {
        let t = fanout_trace(3, 4);
        let (_, no_miss) = simulate_psm_timeline(&t, &CostModel::default(), &spec(4));
        assert_eq!(no_miss.bus_stall_us(), 0.0);
        let mut contended = spec(4);
        contended.bus_miss_ratio = 0.2;
        let (_, stalled) = simulate_psm_timeline(&t, &CostModel::default(), &contended);
        assert!(stalled.bus_stall_us() > 0.0);
    }

    #[test]
    fn faulted_with_empty_schedule_matches_baseline() {
        let t = fanout_trace(6, 8);
        let m = CostModel::default();
        let base = simulate_psm(&t, &m, &spec(8));
        let faulted = simulate_psm_faulted(&t, &m, &spec(8), &SimFaults::default());
        assert_eq!(base, faulted);
    }

    #[test]
    fn processor_kills_degrade_throughput_deterministically() {
        let t = fanout_trace(12, 16);
        let m = CostModel::default();
        let base = simulate_psm(&t, &m, &spec(8));
        let mid_us = base.makespan_s * 1e6 / 2.0;
        let mut prev = base.makespan_s;
        for n in [2usize, 4, 6] {
            let f = SimFaults::kill_last_n(n, 8, mid_us);
            assert_eq!(f.kills.len(), n);
            let r = simulate_psm_faulted(&t, &m, &spec(8), &f);
            assert!(
                r.makespan_s >= prev,
                "killing {n} processors must not speed things up"
            );
            assert!(r.true_speedup <= base.true_speedup + 1e-9);
            // Same schedule, same result: the fault plane is deterministic.
            let again = simulate_psm_faulted(&t, &m, &spec(8), &f);
            assert_eq!(r, again);
            prev = r.makespan_s;
        }
        // Killing everything is clamped / survived: the run still finishes.
        let all = SimFaults::kill_last_n(99, 8, 0.0);
        assert_eq!(all.kills.len(), 7, "at least one processor survives");
        let r = simulate_psm_faulted(&t, &m, &spec(8), &all);
        assert!(r.makespan_s > base.makespan_s);
        let mut total = SimFaults::default();
        for p in 0..8 {
            total = total.kill(p, 0.0);
        }
        let r = simulate_psm_faulted(&t, &m, &spec(8), &total);
        assert!(r.makespan_s.is_finite() && r.makespan_s > 0.0);
        assert!(r.concurrency <= 1.0 + 1e-9, "only the survivor runs");
    }

    #[test]
    fn bus_stall_window_delays_the_schedule() {
        let t = fanout_trace(6, 8);
        let m = CostModel::default();
        let base = simulate_psm(&t, &m, &spec(4));
        let stall_us = base.makespan_s * 1e6 / 4.0;
        let f = SimFaults::default().stall(0.0, stall_us);
        let r = simulate_psm_faulted(&t, &m, &spec(4), &f);
        assert!(
            r.makespan_s * 1e6 >= base.makespan_s * 1e6 + stall_us - 1e-6,
            "nothing can start inside the stall window"
        );
    }

    #[test]
    fn faulted_timeline_marks_faults_in_chrome_export() {
        let t = fanout_trace(4, 4);
        let m = CostModel::default();
        let f = SimFaults::kill_last_n(1, 3, 10.0).stall(5.0, 2.0);
        let (_, tl) = simulate_psm_faulted_timeline(&t, &m, &spec(3), &f);
        assert_eq!(tl.fault_marks.len(), 2);
        let json = tl.to_chrome(1, "psm-3").to_json();
        assert!(json.contains("kill proc 2"));
        assert!(json.contains("bus stall 2.0us"));
        assert!(json.contains("\"cat\":\"fault\""));
    }

    #[test]
    fn hierarchical_timeline_accounts_for_busy_time() {
        let t = fanout_trace(5, 8);
        let m = CostModel::default();
        let hspec = HierarchicalSpec {
            clusters: 3,
            processors_per_cluster: 4,
            dispatch_latency_us: 2.0,
            node: spec(4),
        };
        let solo = simulate_hierarchical(&t, &m, &hspec);
        let (r, tl) = simulate_hierarchical_timeline(&t, &m, &hspec);
        // The aggregate-only path is unchanged by capture.
        assert_eq!(solo, r);
        assert_eq!(tl.clusters.len(), 3);
        assert!((tl.busy_us() / 1e6 - r.busy_s).abs() < 1e-9);
        for c in &tl.clusters {
            assert_eq!(c.processors, 4);
            assert_eq!(c.cycle_ends_us.len(), 5);
            assert!((c.makespan_us / 1e6 - r.makespan_s).abs() < 1e-12);
            for s in &c.slices {
                assert!((s.proc as usize) < c.processors);
                assert!(s.start_us + s.dur_us <= c.makespan_us + 1e-9);
            }
        }
    }

    #[test]
    fn hierarchical_chrome_export_groups_clusters_as_processes() {
        let t = fanout_trace(2, 6);
        let hspec = HierarchicalSpec {
            clusters: 2,
            processors_per_cluster: 2,
            dispatch_latency_us: 1.0,
            node: spec(2),
        };
        let (_, tl) = simulate_hierarchical_timeline(&t, &CostModel::default(), &hspec);
        let json = tl.to_chrome(10, "hier").to_json();
        assert!(json.contains("{\"name\":\"hier cluster 0\"}"));
        assert!(json.contains("{\"name\":\"hier cluster 1\"}"));
        assert!(json.contains("\"pid\":10"));
        assert!(json.contains("\"pid\":11"));
        assert!(json.contains("cycle 1 barrier"));
    }

    #[test]
    fn empty_trace_is_all_zeros() {
        let r = simulate_psm(&Trace::default(), &CostModel::default(), &spec(8));
        assert_eq!(r.makespan_s, 0.0);
        assert_eq!(r.concurrency, 0.0);
        assert_eq!(r.wme_changes_per_sec, 0.0);
    }
}
