//! # psm-sim — the trace-driven multiprocessor simulator
//!
//! Reproduces the simulation methodology of Section 6 of Gupta, Forgy,
//! Newell & Wedig (ISCA 1986). The paper's simulator consumes
//!
//! 1. *"a detailed trace of node activations from an actual run of a
//!    production system (the trace contains information about the
//!    dependencies between node activations)"* — our [`rete::Trace`],
//!    captured by instrumenting the real Rete matcher;
//! 2. *"a cost model to help compute the cost of processing any given
//!    node activation"* — [`CostModel`], in machine instructions,
//!    calibrated to the paper's `c1 ≈ 1800` instructions per working-
//!    memory change;
//! 3. *"a specification of the parallel computational model"* —
//!    [`PsmSpec`]: processor count and MIPS, hardware vs software task
//!    scheduler, shared-bus contention, per-node serialization.
//!
//! and outputs speed-up, concurrency, execution speed, and overhead
//! decompositions ([`SimResult`]) — the quantities plotted in Figures
//! 6-1 and 6-2.
//!
//! The [`machines`] module adds the comparison models of Section 7
//! (DADO with Rete and TREAT, NON-VON, Oflazer's machine); [`analysis`]
//! implements the Section 4 granularity study; [`uniprocessor`] the
//! Section 2.2 interpreter speed ladder; and [`cost`] also carries the
//! Section 3.1 state-saving cost model.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analysis;
pub mod cost;
pub mod des;
pub mod machines;
pub mod publish;
pub mod uniprocessor;

pub use analysis::{granularity_analysis, GranularityReport};
pub use cost::{CostModel, StateSavingModel};
pub use des::{
    simulate_hierarchical, simulate_hierarchical_timeline, simulate_psm, simulate_psm_faulted,
    simulate_psm_faulted_timeline, simulate_psm_timeline, BusStall, BusySlice, HierTimeline,
    HierarchicalSpec, ProcessorKill, PsmSpec, Scheduler, SimFaults, SimResult, Timeline,
};
pub use machines::{
    simulate_dado_rete, simulate_dado_treat, simulate_nonvon, simulate_oflazer_machine,
    MachineEstimate,
};
pub use publish::publish_sim_result;
pub use uniprocessor::{uniprocessor_ladder, UniprocessorEstimate};
