//! Instruction-count cost models.
//!
//! Two models live here:
//!
//! * [`CostModel`] — per-node-activation costs for the trace-driven
//!   simulator, calibrated so an average Rete working-memory change costs
//!   about the paper's `c1 ≈ 1800` machine instructions.
//! * [`StateSavingModel`] — the Section 3.1 analytic comparison of
//!   state-saving vs non-state-saving match (`C_ss = i·c1 + d·c2` vs
//!   `C_nss = s·c3`, breakeven at `(i+d)/s = c3/c1 ≈ 0.61`).

use rete::{ActivationKind, ActivationRecord, Trace};

/// Per-activation instruction costs.
///
/// The defaults reflect the paper's observation that production-system
/// code is "simple loads, compares, and branches": a handful of
/// instructions per primitive test, tens per memory operation, and a
/// fixed overhead per activation for argument setup and dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Instructions per constant (alpha) test.
    pub per_constant_test: u64,
    /// Instructions per alpha-memory insert/delete.
    pub alpha_mem_op: u64,
    /// Fixed instructions per two-input activation (dispatch, argument
    /// fetch, lock).
    pub two_input_base: u64,
    /// Instructions per opposite-memory entry scanned.
    pub per_pair_scanned: u64,
    /// Instructions per join-test evaluation.
    pub per_join_test: u64,
    /// Instructions per output token constructed.
    pub per_output: u64,
    /// Instructions per beta-memory insert/delete.
    pub beta_mem_op: u64,
    /// Instructions per conflict-set change (terminal activation).
    pub terminal_op: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_constant_test: 4,
            alpha_mem_op: 25,
            two_input_base: 30,
            per_pair_scanned: 2,
            per_join_test: 8,
            per_output: 20,
            beta_mem_op: 25,
            terminal_op: 45,
        }
    }
}

impl CostModel {
    /// Instruction cost of one activation record.
    pub fn activation_cost(&self, rec: &ActivationRecord) -> u64 {
        let tests = rec.tests as u64;
        let scanned = rec.scanned as u64;
        let outputs = rec.outputs as u64;
        match rec.kind {
            ActivationKind::ConstantTest => 10 + self.per_constant_test * tests,
            ActivationKind::AlphaMem => self.alpha_mem_op,
            ActivationKind::JoinRight
            | ActivationKind::JoinLeft
            | ActivationKind::NegativeRight
            | ActivationKind::NegativeLeft => {
                self.two_input_base
                    + self.per_pair_scanned * scanned
                    + self.per_join_test * tests
                    + self.per_output * outputs
            }
            ActivationKind::BetaMem => self.beta_mem_op,
            ActivationKind::Terminal => self.terminal_op,
        }
    }

    /// Total instruction cost of a trace.
    pub fn trace_cost(&self, trace: &Trace) -> u64 {
        trace
            .cycles
            .iter()
            .flat_map(|c| &c.changes)
            .flat_map(|c| &c.activations)
            .map(|r| self.activation_cost(r))
            .sum()
    }

    /// Mean instructions per working-memory change — the measured
    /// counterpart of the paper's `c1 ≈ 1800`.
    pub fn mean_change_cost(&self, trace: &Trace) -> f64 {
        let changes = trace.total_changes();
        if changes == 0 {
            0.0
        } else {
            self.trace_cost(trace) as f64 / changes as f64
        }
    }

    /// Returns a copy rescaled so `trace`'s mean per-change cost equals
    /// `target_c1` instructions. This normalizes different workloads to
    /// the paper's calibration point (`c1 ≈ 1800`), making absolute
    /// wme-changes/sec numbers directly comparable to the published
    /// ones.
    ///
    /// Returns `self` unchanged if the trace is empty.
    pub fn normalized_to(&self, trace: &Trace, target_c1: f64) -> CostModel {
        let mean = self.mean_change_cost(trace);
        if mean <= 0.0 {
            return *self;
        }
        let scale = target_c1 / mean;
        let s = |v: u64| -> u64 { ((v as f64 * scale).round() as u64).max(1) };
        CostModel {
            per_constant_test: s(self.per_constant_test),
            alpha_mem_op: s(self.alpha_mem_op),
            two_input_base: s(self.two_input_base),
            per_pair_scanned: s(self.per_pair_scanned),
            per_join_test: s(self.per_join_test),
            per_output: s(self.per_output),
            beta_mem_op: s(self.beta_mem_op),
            terminal_op: s(self.terminal_op),
        }
    }
}

/// The Section 3.1 analytic model of state-saving vs non-state-saving
/// match algorithms.
///
/// # Examples
///
/// ```
/// use psm_sim::StateSavingModel;
///
/// let m = StateSavingModel::paper();
/// // The paper's breakeven: (i + d)/s < c3/c1 ≈ 0.61.
/// assert!((m.breakeven_turnover() - 0.611).abs() < 0.01);
/// // At the measured 0.5% turnover, state saving wins by ~120x; the
/// // paper conservatively reports ">20x".
/// assert!(m.advantage(0.005) > 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateSavingModel {
    /// Cost of processing one insert with the state-saving algorithm
    /// (instructions). The paper: ~1800.
    pub c1: f64,
    /// Cost of processing one delete (the paper sets `c2 = c1` for
    /// Rete).
    pub c2: f64,
    /// Per-WME cost of the non-state-saving algorithm (instructions).
    /// The paper: ~1100.
    pub c3: f64,
}

impl StateSavingModel {
    /// The paper's measured constants.
    pub fn paper() -> Self {
        StateSavingModel {
            c1: 1800.0,
            c2: 1800.0,
            c3: 1100.0,
        }
    }

    /// Per-cycle cost of the state-saving algorithm for `i` inserts and
    /// `d` deletes.
    pub fn state_saving_cost(&self, i: f64, d: f64) -> f64 {
        i * self.c1 + d * self.c2
    }

    /// Per-cycle cost of the non-state-saving algorithm for stable
    /// working-memory size `s`.
    pub fn non_state_saving_cost(&self, s: f64) -> f64 {
        s * self.c3
    }

    /// The turnover fraction `(i+d)/s` below which state saving wins.
    /// With `c1 = c2` this is `c3/c1`.
    pub fn breakeven_turnover(&self) -> f64 {
        // i·c1 + d·c2 < s·c3 with c1 = c2 reduces to (i+d)/s < c3/c1.
        self.c3 / self.c1
    }

    /// How many times cheaper state saving is at the given turnover
    /// fraction (changes per cycle / stable WM size).
    pub fn advantage(&self, turnover: f64) -> f64 {
        self.breakeven_turnover() / turnover
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rete::ActivationRecord;

    fn rec(kind: ActivationKind, tests: u32, scanned: u32, outputs: u32) -> ActivationRecord {
        ActivationRecord {
            id: 0,
            parent: None,
            kind,
            node: 0,
            tests,
            scanned,
            outputs,
        }
    }

    #[test]
    fn join_cost_composition() {
        let m = CostModel::default();
        let r = rec(ActivationKind::JoinRight, 3, 5, 2);
        assert_eq!(
            m.activation_cost(&r),
            m.two_input_base + 5 * m.per_pair_scanned + 3 * m.per_join_test + 2 * m.per_output
        );
    }

    #[test]
    fn fixed_cost_kinds() {
        let m = CostModel::default();
        assert_eq!(
            m.activation_cost(&rec(ActivationKind::AlphaMem, 0, 0, 1)),
            m.alpha_mem_op
        );
        assert_eq!(
            m.activation_cost(&rec(ActivationKind::BetaMem, 0, 0, 1)),
            m.beta_mem_op
        );
        assert_eq!(
            m.activation_cost(&rec(ActivationKind::Terminal, 0, 0, 1)),
            m.terminal_op
        );
    }

    #[test]
    fn paper_breakeven_and_advantage() {
        let m = StateSavingModel::paper();
        assert!((m.breakeven_turnover() - 1100.0 / 1800.0).abs() < 1e-12);
        // §3.1: "a non state-saving algorithm will have to recover an
        // inefficiency factor of about 20" — at 0.5% turnover, even
        // recovering 20x is not enough. Our exact model: >100x.
        assert!(m.advantage(0.005) > 100.0);
        // Above breakeven the non-state-saving side wins.
        assert!(m.advantage(0.7) < 1.0);
        // Direct cost comparison at the paper's example point.
        let s = 1000.0;
        assert!(m.state_saving_cost(2.0, 2.0) < m.non_state_saving_cost(s));
    }

    #[test]
    fn normalization_hits_the_target() {
        use rete::TraceBuilder;
        let mut b = TraceBuilder::new();
        for _ in 0..5 {
            b.begin_change(true);
            b.record(None, ActivationKind::ConstantTest, 0, 20, 0, 1);
            b.record(Some(0), ActivationKind::JoinRight, 1, 4, 30, 2);
            b.record(Some(1), ActivationKind::BetaMem, 2, 0, 0, 1);
        }
        let t = b.finish();
        let base = CostModel::default();
        let norm = base.normalized_to(&t, 1800.0);
        let achieved = norm.mean_change_cost(&t);
        // Integer rounding keeps it near, not exactly at, the target.
        assert!(
            (achieved - 1800.0).abs() / 1800.0 < 0.15,
            "normalized mean {achieved}"
        );
        // Empty traces are a no-op.
        assert_eq!(base.normalized_to(&Trace::default(), 1800.0), base);
    }

    #[test]
    fn mean_change_cost_on_synthetic_trace() {
        use rete::TraceBuilder;
        let m = CostModel::default();
        let mut b = TraceBuilder::new();
        b.begin_change(true);
        b.record(None, ActivationKind::ConstantTest, 0, 10, 0, 1);
        b.record(Some(0), ActivationKind::AlphaMem, 0, 0, 0, 1);
        b.begin_change(true);
        b.record(None, ActivationKind::ConstantTest, 0, 10, 0, 0);
        let t = b.finish();
        let per_change = m.mean_change_cost(&t);
        let c_const = 10 + m.per_constant_test * 10;
        let expected = (2 * c_const + m.alpha_mem_op) as f64 / 2.0;
        assert!((per_change - expected).abs() < 1e-9);
        assert_eq!(m.trace_cost(&t), 2 * c_const + m.alpha_mem_op);
    }
}
