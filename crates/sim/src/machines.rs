//! Analytic models of the Section 7 comparison architectures.
//!
//! Each model keeps the *structure* the paper describes — what is
//! parallel, what is serial, the processor counts and speeds — and one
//! fixed per-change overhead constant fitted to the machine's published
//! throughput on the paper's workloads. The experiments then check what
//! the paper checks: the ordering and the bands across machines, driven
//! by measured per-change work from our traces.
//!
//! | machine | published | structure modeled |
//! |---|---|---|
//! | DADO, Rete | ≈ 175 wme-ch/s | 16–32 partitions, serial within partition, 0.5-MIPS 8-bit PEs, serial changes, tree broadcast/sync overhead |
//! | DADO, TREAT | ≈ 215 wme-ch/s | as above, joins recomputed but spread over the WM-subtree associatively |
//! | NON-VON | ≈ 2000 wme-ch/s | 3-MIPS LPE/SPE tree, wider associative operations, serial changes |
//! | Oflazer | 4500–7000 wme-ch/s | 512 × 5–10 MIPS tree, all-combination state updated in parallel, **no parallel WM changes**, GC overhead |

use std::collections::HashMap;

use ops5::ProductionId;
use rete::{ActivationKind, Network, Trace};

use crate::cost::CostModel;

/// A machine model's throughput estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineEstimate {
    /// Machine (and algorithm) name.
    pub machine: &'static str,
    /// Mean time to process one working-memory change (µs).
    pub mean_change_time_us: f64,
    /// Working-memory changes per second.
    pub wme_changes_per_sec: f64,
}

impl MachineEstimate {
    /// Publishes the estimate into a `psm-obs` metrics registry as
    /// `machine.<name>.wme_changes_per_sec` and
    /// `machine.<name>.mean_change_time_us` gauges (values rounded to
    /// integers), so architecture-comparison runs land in the same
    /// snapshot/merge pipeline as the engine counters.
    pub fn publish(&self, registry: &psm_obs::Registry) {
        registry
            .gauge(&format!("machine.{}.wme_changes_per_sec", self.machine))
            .set(self.wme_changes_per_sec.round() as i64);
        registry
            .gauge(&format!("machine.{}.mean_change_time_us", self.machine))
            .set(self.mean_change_time_us.round() as i64);
    }

    fn from_change_time(machine: &'static str, mean_change_time_us: f64) -> Self {
        MachineEstimate {
            machine,
            mean_change_time_us,
            wme_changes_per_sec: if mean_change_time_us > 0.0 {
                1e6 / mean_change_time_us
            } else {
                0.0
            },
        }
    }
}

/// Per-change work statistics extracted from a trace: total
/// instructions, and the per-production split for partition-max models.
fn per_change_work(
    trace: &Trace,
    network: &Network,
    cost: &CostModel,
) -> Vec<(f64, HashMap<ProductionId, f64>)> {
    let mut out = Vec::new();
    for change in trace.cycles.iter().flat_map(|c| &c.changes) {
        let mut total = 0.0f64;
        let mut per_prod: HashMap<ProductionId, f64> = HashMap::new();
        for rec in &change.activations {
            let c = cost.activation_cost(rec) as f64;
            total += c;
            if !matches!(
                rec.kind,
                ActivationKind::ConstantTest | ActivationKind::AlphaMem
            ) {
                if let Some(p) = network
                    .nodes
                    .get(rec.node as usize)
                    .and_then(|s| s.production)
                {
                    *per_prod.entry(p).or_insert(0.0) += c;
                }
            }
        }
        out.push((total, per_prod));
    }
    out
}

/// Max partition load when productions are distributed round-robin over
/// `partitions`.
fn max_partition_us(per_prod: &HashMap<ProductionId, f64>, partitions: usize, mips: f64) -> f64 {
    let mut loads = vec![0.0f64; partitions.max(1)];
    for (p, work) in per_prod {
        loads[p.index() % partitions.max(1)] += work;
    }
    loads.into_iter().fold(0.0, f64::max) / mips
}

/// DADO running the parallel Rete algorithm (§7.1, predicted ≈ 175
/// wme-changes/s on the sixteen-thousand-PE 0.5-MIPS prototype).
pub fn simulate_dado_rete(trace: &Trace, network: &Network, cost: &CostModel) -> MachineEstimate {
    // 32 partitions of 8-bit 0.5-MIPS PEs; the datapath penalty reflects
    // multi-instruction 8-bit arithmetic on symbols/pointers. Broadcast,
    // tree synchronization and the PM-level control loop dominate.
    let partitions = 32;
    let mips = 0.5;
    let datapath_penalty = 4.0;
    let per_change_overhead_us = 3500.0;

    let work = per_change_work(trace, network, cost);
    if work.is_empty() {
        return MachineEstimate::from_change_time("dado-rete", 0.0);
    }
    let mean: f64 = work
        .iter()
        .map(|(_, per_prod)| {
            per_change_overhead_us + max_partition_us(per_prod, partitions, mips) * datapath_penalty
        })
        .sum::<f64>()
        / work.len() as f64;
    MachineEstimate::from_change_time("dado-rete", mean)
}

/// DADO running TREAT (§7.1, predicted ≈ 215 wme-changes/s). TREAT
/// recomputes joins but fans the candidate tests across the WM-subtree
/// associatively, so the per-partition serial work shrinks relative to
/// Rete while the tree overheads stay.
pub fn simulate_dado_treat(trace: &Trace, network: &Network, cost: &CostModel) -> MachineEstimate {
    let partitions = 32;
    let mips = 0.5;
    let datapath_penalty = 4.0;
    let per_change_overhead_us = 2600.0;
    // Join recomputation costs ~2.5x the incremental work, but the
    // WM-subtree evaluates candidates ~4-ways associatively.
    let recompute_factor = 2.5;
    let subtree_parallelism = 4.0;

    let work = per_change_work(trace, network, cost);
    if work.is_empty() {
        return MachineEstimate::from_change_time("dado-treat", 0.0);
    }
    let mean: f64 = work
        .iter()
        .map(|(_, per_prod)| {
            let part = max_partition_us(per_prod, partitions, mips) * datapath_penalty;
            per_change_overhead_us + part * recompute_factor / subtree_parallelism
        })
        .sum::<f64>()
        / work.len() as f64;
    MachineEstimate::from_change_time("dado-treat", mean)
}

/// NON-VON (§7.2, predicted ≈ 2000 wme-changes/s): 3-MIPS processing
/// elements (six times DADO's) and wider associative operations, still
/// tree-structured with serial change processing.
pub fn simulate_nonvon(trace: &Trace, network: &Network, cost: &CostModel) -> MachineEstimate {
    let partitions = 32;
    let mips = 3.0;
    let datapath_penalty = 1.5;
    let per_change_overhead_us = 320.0;

    let work = per_change_work(trace, network, cost);
    if work.is_empty() {
        return MachineEstimate::from_change_time("non-von", 0.0);
    }
    let mean: f64 = work
        .iter()
        .map(|(_, per_prod)| {
            per_change_overhead_us + max_partition_us(per_prod, partitions, mips) * datapath_penalty
        })
        .sum::<f64>()
        / work.len() as f64;
    MachineEstimate::from_change_time("non-von", mean)
}

/// Oflazer's machine (§7.3, 4500–7000 wme-changes/s): 512 processors at
/// 5–10 MIPS updating all-combination state in parallel. Its two
/// published drawbacks are modeled directly: extra state work plus
/// garbage-collection overhead, and **no parallel processing of multiple
/// WM changes** (each change pays the full tree latency serially).
pub fn simulate_oflazer_machine(
    trace: &Trace,
    network: &Network,
    cost: &CostModel,
) -> MachineEstimate {
    let mips = 7.5;
    // Token interactions are independent, so parallelism is wide — but
    // the paper *speculates* (its word) that the extra processors are
    // "simply used up by the less conservative state-storing strategy",
    // that garbage collection adds serial overhead, and that the machine
    // cannot process multiple WM changes in parallel. Those three
    // effects are not derivable from published data, so they are folded
    // into the fitted constants below, chosen to reproduce the §7
    // ordering (NON-VON < Oflazer < PSM) on our traces. The published
    // absolute band (4500–7000 wme-ch/s) is reported alongside in the
    // experiment output.
    let effective_parallelism = 12.0;
    // All-combination state costs roughly 2x the Rete state work (§7.3
    // reasons (1) and (2)).
    let state_overhead_factor = 2.0;
    // Serial per-change latency: tree traversal + garbage collection.
    let per_change_overhead_us = 270.0;

    let work = per_change_work(trace, network, cost);
    if work.is_empty() {
        return MachineEstimate::from_change_time("oflazer", 0.0);
    }
    let mean: f64 = work
        .iter()
        .map(|(total, _)| {
            per_change_overhead_us + total * state_overhead_factor / (effective_parallelism * mips)
        })
        .sum::<f64>()
        / work.len() as f64;
    MachineEstimate::from_change_time("oflazer", mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::parse_program;
    use rete::{CompileOptions, TraceBuilder};

    fn fixture() -> (Network, Trace) {
        let program = parse_program(
            r#"
            (p p0 (a ^x <v>) (b ^x <v>) --> (remove 1))
            (p p1 (a ^x <v>) (c ^x <v>) --> (remove 1))
            (p p2 (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))
            "#,
        )
        .unwrap();
        let network = Network::compile_with(&program, CompileOptions { share: false }).unwrap();
        let join_of = |p: u32| -> u32 {
            network
                .nodes
                .iter()
                .position(|s| {
                    s.kind == rete::network::NodeKind::Join
                        && s.production == Some(ops5::ProductionId(p))
                })
                .unwrap() as u32
        };
        let mut b = TraceBuilder::new();
        for _ in 0..20 {
            b.begin_cycle();
            b.begin_change(true);
            let root = b.record(None, ActivationKind::ConstantTest, 0, 30, 0, 2);
            for p in 0..3u32 {
                let reps = 1 + p * 2; // skewed per-production work
                for _ in 0..reps {
                    b.record(Some(root), ActivationKind::JoinRight, join_of(p), 6, 25, 1);
                }
            }
            b.end_cycle();
        }
        (network, b.finish())
    }

    #[test]
    fn published_ordering_holds() {
        let (network, trace) = fixture();
        let cost = CostModel::default();
        let dado = simulate_dado_rete(&trace, &network, &cost);
        let treat = simulate_dado_treat(&trace, &network, &cost);
        let nonvon = simulate_nonvon(&trace, &network, &cost);
        let oflazer = simulate_oflazer_machine(&trace, &network, &cost);
        // §7's ordering: DADO-Rete < DADO-TREAT < NON-VON < Oflazer.
        assert!(dado.wme_changes_per_sec < treat.wme_changes_per_sec);
        assert!(treat.wme_changes_per_sec < nonvon.wme_changes_per_sec);
        assert!(nonvon.wme_changes_per_sec < oflazer.wme_changes_per_sec);
        // Bands (loose): the tree machines sit orders of magnitude apart.
        assert!(dado.wme_changes_per_sec < 500.0);
        assert!(oflazer.wme_changes_per_sec > 1000.0);
    }

    #[test]
    fn estimates_scale_with_work() {
        let (network, trace) = fixture();
        let cheap = CostModel::default();
        let mut expensive = CostModel::default();
        expensive.per_pair_scanned *= 10;
        expensive.per_join_test *= 10;
        let a = simulate_dado_rete(&trace, &network, &cheap);
        let b = simulate_dado_rete(&trace, &network, &expensive);
        assert!(b.mean_change_time_us > a.mean_change_time_us);
        assert!(b.wme_changes_per_sec < a.wme_changes_per_sec);
    }

    #[test]
    fn ordering_survives_cost_normalization() {
        let (network, trace) = fixture();
        let cost = CostModel::default().normalized_to(&trace, 1800.0);
        let dado = simulate_dado_rete(&trace, &network, &cost);
        let treat = simulate_dado_treat(&trace, &network, &cost);
        let nonvon = simulate_nonvon(&trace, &network, &cost);
        let oflazer = simulate_oflazer_machine(&trace, &network, &cost);
        assert!(dado.wme_changes_per_sec < treat.wme_changes_per_sec);
        assert!(treat.wme_changes_per_sec < nonvon.wme_changes_per_sec);
        assert!(nonvon.wme_changes_per_sec < oflazer.wme_changes_per_sec);
    }

    #[test]
    fn empty_trace_yields_zero() {
        let (network, _) = fixture();
        let e = simulate_nonvon(&Trace::default(), &network, &CostModel::default());
        assert_eq!(e.wme_changes_per_sec, 0.0);
    }
}
