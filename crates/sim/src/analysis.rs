//! The Section 4 granularity study: production-level versus
//! node-activation-level parallelism.
//!
//! The paper's argument: ~30 productions are affected per change, but
//! production-level parallelism yields only ~5-fold speed-up (even with
//! unbounded processors) because per-production processing cost is
//! highly skewed; node-level parallelism breaks the expensive
//! productions' work into many activations and recovers the variance.
//! This module computes both bounds from a trace.

use std::collections::HashMap;

use ops5::ProductionId;
use rete::{ActivationKind, Network, Trace};

use crate::cost::CostModel;

/// Upper-bound speed-ups under the two granularities (unbounded
/// processors — scheduling and contention excluded, exactly the framing
/// of the paper's "about 5-fold" number).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GranularityReport {
    /// Mean affected productions per change (the paper's ~30).
    pub mean_affected_productions: f64,
    /// Maximum affected productions in any change.
    pub max_affected_productions: usize,
    /// Total work / Σ per-cycle critical path: node-granularity bound.
    pub node_speedup: f64,
    /// Total work / Σ per-cycle max-production time: production-
    /// granularity bound.
    pub production_speedup: f64,
    /// Mean node activations per change.
    pub mean_activations_per_change: f64,
    /// Coefficient of variation of per-production cost per change (the
    /// skew driving the gap between the two bounds).
    pub production_cost_cv: f64,
}

/// Computes the granularity bounds for `trace` over `network`.
///
/// Per-production cost attribution uses each node's owner production,
/// which is exact when the network was compiled with `share: false`
/// (production parallelism cannot share nodes anyway, §4).
pub fn granularity_analysis(
    trace: &Trace,
    network: &Network,
    cost: &CostModel,
) -> GranularityReport {
    let mut total_work = 0.0f64;
    let mut cp_sum = 0.0f64;
    let mut prod_max_sum = 0.0f64;
    let mut affected_total = 0usize;
    let mut affected_max = 0usize;
    let mut activations = 0usize;
    let mut changes = 0usize;
    let mut cost_samples: Vec<f64> = Vec::new();

    for cycle in &trace.cycles {
        let mut cycle_cp = 0.0f64;
        let mut cycle_prod: HashMap<ProductionId, f64> = HashMap::new();
        let mut cycle_preamble = 0.0f64;

        for change in &cycle.changes {
            changes += 1;
            activations += change.activations.len();
            affected_total += change.affected_productions.len();
            affected_max = affected_max.max(change.affected_productions.len());

            // Critical path with unbounded processors (changes of one
            // cycle run in parallel).
            let mut finish: Vec<f64> = Vec::with_capacity(change.activations.len());
            for rec in &change.activations {
                let dur = cost.activation_cost(rec) as f64;
                total_work += dur;
                let ready = rec.parent.map_or(0.0, |p| finish[p as usize]);
                let end = ready + dur;
                finish.push(end);
                cycle_cp = cycle_cp.max(end);

                // Production attribution for the coarse-grain bound.
                match rec.kind {
                    ActivationKind::ConstantTest | ActivationKind::AlphaMem => {
                        // Determining the affected set is a serial
                        // preamble under production parallelism.
                        cycle_preamble += dur;
                    }
                    _ => {
                        let owner = network
                            .nodes
                            .get(rec.node as usize)
                            .and_then(|s| s.production);
                        if let Some(p) = owner {
                            *cycle_prod.entry(p).or_insert(0.0) += dur;
                        } else {
                            cycle_preamble += dur;
                        }
                    }
                }
            }
        }
        let max_prod = cycle_prod.values().cloned().fold(0.0f64, f64::max);
        cost_samples.extend(cycle_prod.values().cloned());
        cp_sum += cycle_cp;
        prod_max_sum += cycle_preamble + max_prod;
    }

    let cv = coefficient_of_variation(&cost_samples);
    GranularityReport {
        mean_affected_productions: if changes == 0 {
            0.0
        } else {
            affected_total as f64 / changes as f64
        },
        max_affected_productions: affected_max,
        node_speedup: ratio(total_work, cp_sum),
        production_speedup: ratio(total_work, prod_max_sum),
        mean_activations_per_change: if changes == 0 {
            0.0
        } else {
            activations as f64 / changes as f64
        },
        production_cost_cv: cv,
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        a / b
    }
}

fn coefficient_of_variation(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::parse_program;
    use rete::{CompileOptions, TraceBuilder};

    fn network() -> Network {
        let program = parse_program(
            r#"
            (p p0 (a ^x <v>) (b ^x <v>) --> (remove 1))
            (p p1 (a ^x <v>) (c ^x <v>) --> (remove 1))
            "#,
        )
        .unwrap();
        Network::compile_with(&program, CompileOptions { share: false }).unwrap()
    }

    #[test]
    fn skewed_production_costs_cap_coarse_grain_speedup() {
        let network = network();
        // Find a join node of each production.
        let join_of = |p: u32| -> u32 {
            network
                .nodes
                .iter()
                .position(|s| {
                    s.kind == rete::network::NodeKind::Join
                        && s.production == Some(ops5::ProductionId(p))
                })
                .unwrap() as u32
        };
        let j0 = join_of(0);
        let j1 = join_of(1);

        let mut b = TraceBuilder::new();
        b.begin_cycle();
        b.begin_change(true);
        let root = b.record(None, ActivationKind::ConstantTest, 0, 4, 0, 1);
        // p0 does 10x the scanning work of p1, split across several
        // independent activations.
        for _ in 0..10 {
            b.record(Some(root), ActivationKind::JoinRight, j0, 4, 20, 1);
        }
        b.record(Some(root), ActivationKind::JoinRight, j1, 4, 20, 1);
        b.set_affected(vec![ops5::ProductionId(0), ops5::ProductionId(1)]);
        b.end_cycle();
        let trace = b.finish();

        let r = granularity_analysis(&trace, &network, &CostModel::default());
        assert!((r.mean_affected_productions - 2.0).abs() < 1e-9);
        // Node-level: the 11 activations are independent → big speedup.
        assert!(r.node_speedup > 4.0, "node speedup {}", r.node_speedup);
        // Production-level: bounded by p0's total serial work → ~1.1.
        assert!(
            r.production_speedup < 1.5,
            "production speedup {}",
            r.production_speedup
        );
        assert!(r.node_speedup > 2.0 * r.production_speedup);
        assert!(r.production_cost_cv > 0.5, "cv {}", r.production_cost_cv);
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let r = granularity_analysis(&Trace::default(), &network(), &CostModel::default());
        assert_eq!(r.mean_affected_productions, 0.0);
        assert_eq!(r.node_speedup, 0.0);
    }
}
