//! The Section 2.2 uniprocessor interpreter speed ladder.
//!
//! The paper: the Lisp OPS5 interpreter runs at ~8 wme-changes/s on a
//! VAX-11/780, the Bliss one at ~40, the OPS83-style compiled matcher at
//! ~200, projected optimized compilers at 400–800 — and the parallel
//! implementations aim for 5000–10000. This module reproduces the ladder
//! from a measured per-change instruction cost: each rung is the
//! VAX's native speed divided by a fitted interpretive-overhead factor.

/// One rung of the interpreter ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniprocessorEstimate {
    /// Implementation name.
    pub implementation: &'static str,
    /// Overhead factor relative to ideal compiled code.
    pub overhead_factor: f64,
    /// Estimated wme-changes per second.
    pub wme_changes_per_sec: f64,
    /// The figure the paper reports for this rung.
    pub paper_reported: &'static str,
}

/// VAX-11/780 speed in MIPS (the classic "1 MIPS" machine actually
/// sustains ~0.5 native MIPS on this kind of pointer-chasing code).
pub const VAX_780_MIPS: f64 = 0.5;

/// Builds the ladder for a measured mean per-change instruction cost
/// (the paper's `c1 ≈ 1800`).
///
/// # Examples
///
/// ```
/// let ladder = psm_sim::uniprocessor_ladder(1800.0);
/// // Compiled Rete on a VAX-11/780 lands near the paper's ~200/s.
/// let compiled = ladder.iter().find(|r| r.implementation == "compiled (OPS83)").unwrap();
/// assert!(compiled.wme_changes_per_sec > 150.0 && compiled.wme_changes_per_sec < 300.0);
/// ```
pub fn uniprocessor_ladder(mean_change_instructions: f64) -> Vec<UniprocessorEstimate> {
    let native = VAX_780_MIPS * 1e6 / mean_change_instructions.max(1.0);
    let rung = |implementation, overhead_factor: f64, paper_reported| UniprocessorEstimate {
        implementation,
        overhead_factor,
        wme_changes_per_sec: native / overhead_factor,
        paper_reported,
    };
    vec![
        rung("interpreted (Lisp)", 35.0, "~8/s"),
        rung("interpreted (Bliss)", 7.0, "~40/s"),
        rung("compiled (OPS83)", 1.4, "~200/s"),
        rung("optimized compiled", 0.55, "400-800/s (projected)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_paper_bands_at_c1() {
        let ladder = uniprocessor_ladder(1800.0);
        assert_eq!(ladder.len(), 4);
        let by_name = |n: &str| {
            ladder
                .iter()
                .find(|r| r.implementation == n)
                .unwrap()
                .wme_changes_per_sec
        };
        let lisp = by_name("interpreted (Lisp)");
        let bliss = by_name("interpreted (Bliss)");
        let compiled = by_name("compiled (OPS83)");
        let optimized = by_name("optimized compiled");
        assert!((4.0..16.0).contains(&lisp), "lisp {lisp}");
        assert!((25.0..60.0).contains(&bliss), "bliss {bliss}");
        assert!((150.0..300.0).contains(&compiled), "compiled {compiled}");
        assert!((400.0..800.0).contains(&optimized), "optimized {optimized}");
        // Monotone ladder.
        assert!(lisp < bliss && bliss < compiled && compiled < optimized);
    }

    #[test]
    fn scales_inversely_with_cost() {
        let cheap = uniprocessor_ladder(900.0);
        let costly = uniprocessor_ladder(3600.0);
        assert!(cheap[2].wme_changes_per_sec > costly[2].wme_changes_per_sec * 3.9);
    }
}
