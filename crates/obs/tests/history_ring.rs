//! Property tests for the history ring under concurrent writers: the
//! counter delta encoding must stay lossless and monotonic no matter
//! how sampling interleaves with recording.

use std::sync::Arc;
use std::time::Duration;

use psm_obs::{Obs, Rng64, Sampler, SeriesKind};

/// Writers hammer labeled counters while the ring samples on its own
/// thread. After everything joins and a final sample lands, every
/// counter series must decode losslessly (`base + Σ deltas ==` the
/// final cumulative value) with every delta non-negative.
#[test]
fn concurrent_writers_decode_losslessly() {
    const WRITERS: usize = 4;
    const ROUNDS: usize = 400;

    let obs = Arc::new(Obs::with_history(0, 0, 0, 32));
    let sampler = Sampler::start(Arc::clone(&obs), Duration::from_millis(1));

    let mut handles = Vec::new();
    let mut expected: Vec<u64> = Vec::new();
    for w in 0..WRITERS {
        let obs = Arc::clone(&obs);
        // Deterministic per-writer increments so the final cumulative
        // value is known without trusting the code under test.
        let mut rng = Rng64::new(0xC0FFEE ^ w as u64);
        let increments: Vec<u64> = (0..ROUNDS).map(|_| rng.next_u64() % 7 + 1).collect();
        expected.push(increments.iter().sum());
        handles.push(std::thread::spawn(move || {
            let c = obs
                .metrics
                .counter(&format!("test.hammer{{writer=\"{w}\"}}"));
            for inc in increments {
                c.add(inc);
                if inc == 7 {
                    std::thread::yield_now();
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("writer joins");
    }
    sampler.stop();
    // One deterministic final sample so the last increments are
    // captured even if the sampler thread never ran again after the
    // writers finished.
    obs.history.sample(&obs.metrics);

    let series = obs.history.series_matching("test.hammer", 0);
    assert_eq!(series.len(), WRITERS, "one series per writer label");
    for s in &series {
        assert_eq!(s.kind, SeriesKind::Counter);
        let writer: usize = s
            .name
            .split("writer=\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .and_then(|n| n.parse().ok())
            .expect("label parses");
        assert!(
            s.points.iter().all(|p| p.value >= 0),
            "{}: counter deltas must be non-negative, got {:?}",
            s.name,
            s.points
        );
        let decoded: u64 = s.base + s.points.iter().map(|p| p.value as u64).sum::<u64>();
        assert_eq!(
            decoded, expected[writer],
            "{}: base {} + deltas must reproduce the cumulative value",
            s.name, s.base
        );
        let mut last_t = 0;
        for p in &s.points {
            assert!(p.t_ms >= last_t, "{}: timestamps ordered", s.name);
            last_t = p.t_ms;
        }
    }
}

/// Capacity 0 is the permanently-off fast path: sampling is a no-op,
/// a sampler spawns no thread, and nothing allocates.
#[test]
fn capacity_zero_ring_ignores_everything() {
    let obs = Arc::new(Obs::new(0));
    assert!(!obs.history.enabled());
    obs.metrics.counter("c").add(5);
    for _ in 0..100 {
        obs.history.sample(&obs.metrics);
    }
    assert_eq!(obs.history.samples(), 0);
    assert_eq!(obs.history.series_count(), 0);
    assert!(obs.history.series_matching("c", 0).is_empty());
    let sampler = Sampler::start(Arc::clone(&obs), Duration::from_micros(1));
    std::thread::sleep(Duration::from_millis(5));
    assert_eq!(obs.history.samples(), 0, "disabled ring never samples");
    sampler.stop();
}

/// Eviction under a tiny window budget keeps the decode invariant: the
/// dropped deltas fold into `base`, so `base + retained == cumulative`.
#[test]
fn eviction_preserves_decode_invariant() {
    let obs = Obs::with_history(0, 0, 0, 3);
    let c = obs.metrics.counter("evict.me");
    let mut total = 0u64;
    let mut rng = Rng64::new(42);
    for t in 0..50u64 {
        let inc = rng.next_u64() % 100;
        c.add(inc);
        total += inc;
        obs.history.sample_at(t * 10, &obs.metrics);
    }
    let s = &obs.history.series_matching("evict.me", 0)[0];
    assert!(s.points.len() <= 3, "capacity bounds retained windows");
    assert_eq!(
        s.base + s.points.iter().map(|p| p.value as u64).sum::<u64>(),
        total
    );
}
