//! Metric time-series: windowed history of the registry, sampled on a
//! cadence.
//!
//! Everything else in `psm-obs` observes *one instant* — `/metrics` and
//! `/snapshot` expose current cumulative values. The paper's argument
//! (§4, §6) is about trajectories: throughput over a run, skew as load
//! shifts, loss factors as the machine saturates. [`HistoryRing`] keeps
//! the last `capacity` sampling windows of every registered metric so
//! the telemetry plane can serve `/timeseries` and `psmtop` can draw
//! sparklines, and so a perf regression is a *curve*, not a point.
//!
//! Encoding follows the metric type:
//!
//! * **counters** are delta-encoded: each point stores the increase
//!   over the previous sample. The invariant `base + Σ deltas ==
//!   current cumulative value` holds at all times (eviction folds the
//!   dropped delta into `base`), so a decoded series is monotonic and
//!   lossless even after the ring wraps.
//! * **gauges** store the sampled level as-is.
//! * **histograms** store per-window `count`/`sum` deltas plus the
//!   p50/p99 bucket bounds of the *window's* samples (computed from
//!   bucket deltas at sampling time), so latency quantiles track recent
//!   behaviour instead of the whole run.
//!
//! Labeled families need no special casing: the registry embeds labels
//! in the metric name (`engine.worker.tasks{worker="0"}`), so each
//! label combination is its own series and
//! [`HistoryRing::series_matching`] groups a family back together by
//! prefix.
//!
//! Gating follows the profiler discipline: a ring built with capacity 0
//! is permanently off, allocates nothing, and a would-be sample returns
//! after one check ([`HistoryRing::enabled`]). The engine's hot path is
//! never involved at all — sampling reads the same relaxed atomics the
//! scrape endpoint does, from the [`Sampler`] background thread (or a
//! caller-driven [`HistoryRing::sample`] in tests, which keeps golden
//! tests deterministic via [`HistoryRing::sample_at`]).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::json;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot, Registry};

/// What kind of metric a series tracks (fixed at first sample).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Delta-encoded monotonic counter.
    Counter,
    /// Sampled gauge level.
    Gauge,
    /// Windowed histogram summary.
    Histogram,
}

impl SeriesKind {
    /// Short label used in `/timeseries` JSON.
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// One sampled point of a counter or gauge series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Point {
    /// Milliseconds since the ring was created (or the caller-supplied
    /// clock in [`HistoryRing::sample_at`]).
    pub t_ms: u64,
    /// Counter: increase over the previous sample. Gauge: the level.
    pub value: i64,
}

/// One sampled window of a histogram series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistPoint {
    /// Sample timestamp, as in [`Point::t_ms`].
    pub t_ms: u64,
    /// Samples recorded during this window.
    pub count: u64,
    /// Sum of samples recorded during this window.
    pub sum: u64,
    /// p50 bucket bound of the window's samples (0 for an empty window).
    pub p50: u64,
    /// p99 bucket bound of the window's samples (0 for an empty window).
    pub p99: u64,
}

/// A decoded copy of one series, as returned by
/// [`HistoryRing::series_matching`].
#[derive(Clone, Debug)]
pub struct Series {
    /// Full metric name, labels included.
    pub name: String,
    /// Metric type.
    pub kind: SeriesKind,
    /// Cumulative counter value *before* the oldest retained point
    /// (counters only; 0 for gauges and histograms). The invariant
    /// `base + Σ point values == current cumulative` lets a reader
    /// verify lossless decode.
    pub base: u64,
    /// Scalar points, oldest first (empty for histogram series).
    pub points: Vec<Point>,
    /// Histogram windows, oldest first (empty for scalar series).
    pub hist_points: Vec<HistPoint>,
}

impl Series {
    /// The series as a JSON object. Scalar points are `[t_ms, value]`
    /// pairs; histogram windows are
    /// `[t_ms, count, sum, p50, p99]` tuples.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * (self.points.len() + self.hist_points.len()));
        out.push_str("{\"name\":");
        json::push_escaped(&mut out, &self.name);
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.label());
        out.push_str("\",\"base\":");
        out.push_str(&self.base.to_string());
        out.push_str(",\"points\":[");
        match self.kind {
            SeriesKind::Histogram => {
                for (i, p) in self.hist_points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "[{},{},{},{},{}]",
                        p.t_ms, p.count, p.sum, p.p50, p.p99
                    ));
                }
            }
            _ => {
                for (i, p) in self.points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{},{}]", p.t_ms, p.value));
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Per-series ring state. `prev` tracks the last sampled cumulative
/// value so the next sample can delta-encode against it.
#[derive(Debug)]
struct SeriesBuf {
    kind: SeriesKind,
    /// Cumulative value folded out of evicted counter points.
    base: u64,
    /// Last sampled cumulative counter value (counters only).
    prev: u64,
    /// Last sampled full histogram (histograms only), for windowing.
    prev_hist: HistogramSnapshot,
    points: VecDeque<Point>,
    hist_points: VecDeque<HistPoint>,
}

impl SeriesBuf {
    fn new(kind: SeriesKind) -> SeriesBuf {
        SeriesBuf {
            kind,
            base: 0,
            prev: 0,
            prev_hist: HistogramSnapshot::default(),
            points: VecDeque::new(),
            hist_points: VecDeque::new(),
        }
    }

    fn push_scalar(&mut self, capacity: usize, p: Point) {
        while self.points.len() >= capacity {
            if let Some(old) = self.points.pop_front() {
                if self.kind == SeriesKind::Counter {
                    self.base += old.value.max(0) as u64;
                }
            }
        }
        self.points.push_back(p);
    }

    fn push_hist(&mut self, capacity: usize, p: HistPoint) {
        while self.hist_points.len() >= capacity {
            self.hist_points.pop_front();
        }
        self.hist_points.push_back(p);
    }
}

#[derive(Debug, Default)]
struct Inner {
    series: BTreeMap<String, SeriesBuf>,
}

/// Windowed time-series history of a [`Registry`]. Capacity is the
/// number of sampling windows retained per series; 0 disables the ring
/// outright. All sampling goes through `&self` — the ring is shared
/// like the rest of [`Obs`](crate::Obs) — but the lock is only ever
/// touched by the sampler and by readers, never by the engine's
/// recording hot path.
#[derive(Debug)]
pub struct HistoryRing {
    capacity: usize,
    born: Instant,
    inner: Mutex<Inner>,
    samples: AtomicU64,
    /// Sampling cadence hint in milliseconds, published by the
    /// [`Sampler`] so `/timeseries` consumers can convert per-window
    /// deltas into rates. 0 until a sampler starts (or a manual caller
    /// sets it).
    interval_ms: AtomicU64,
}

impl HistoryRing {
    /// A ring retaining `capacity` windows per series; 0 disables it.
    pub fn new(capacity: usize) -> HistoryRing {
        HistoryRing {
            capacity,
            born: Instant::now(),
            inner: Mutex::new(Inner::default()),
            samples: AtomicU64::new(0),
            interval_ms: AtomicU64::new(0),
        }
    }

    /// Whether sampling does anything. The disabled check is the entire
    /// cost of a would-be sample on a capacity-0 ring.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Windows retained per series (0 = off).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// The published sampling cadence hint (ms), 0 if never set.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms.load(Ordering::Relaxed)
    }

    /// Publishes the sampling cadence hint (ms).
    pub fn set_interval_ms(&self, ms: u64) {
        self.interval_ms.store(ms, Ordering::Relaxed);
    }

    /// Number of distinct series currently tracked.
    pub fn series_count(&self) -> usize {
        if !self.enabled() {
            return 0;
        }
        self.inner.lock().unwrap().series.len()
    }

    /// Takes one sample of `registry` now, stamped with the ring's own
    /// monotonic clock.
    pub fn sample(&self, registry: &Registry) {
        self.sample_at(self.born.elapsed().as_millis() as u64, registry);
    }

    /// Takes one sample stamped `t_ms` — the deterministic entry point
    /// golden tests use. A no-op (after one check) on a capacity-0
    /// ring.
    pub fn sample_at(&self, t_ms: u64, registry: &Registry) {
        if !self.enabled() {
            return;
        }
        self.sample_snapshot(t_ms, &registry.snapshot());
    }

    /// Folds an already-taken snapshot into the ring (the sampler takes
    /// the snapshot outside the ring lock).
    pub fn sample_snapshot(&self, t_ms: u64, snap: &MetricsSnapshot) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        for (name, &v) in &snap.counters {
            let buf = inner
                .series
                .entry(name.clone())
                .or_insert_with(|| SeriesBuf::new(SeriesKind::Counter));
            // A cumulative value that went backwards means the source
            // restarted; restart the series at the new value rather
            // than emit a negative delta, so decoded series stay
            // monotonic.
            let delta = if v < buf.prev {
                buf.base = 0;
                buf.points.clear();
                v
            } else {
                v - buf.prev
            };
            buf.prev = v;
            let p = Point {
                t_ms,
                value: delta.min(i64::MAX as u64) as i64,
            };
            buf.push_scalar(self.capacity, p);
        }
        for (name, &v) in &snap.gauges {
            let buf = inner
                .series
                .entry(name.clone())
                .or_insert_with(|| SeriesBuf::new(SeriesKind::Gauge));
            buf.push_scalar(self.capacity, Point { t_ms, value: v });
        }
        for (name, h) in &snap.histograms {
            let buf = inner
                .series
                .entry(name.clone())
                .or_insert_with(|| SeriesBuf::new(SeriesKind::Histogram));
            let window = hist_window(&buf.prev_hist, h);
            buf.prev_hist = h.clone();
            let p = HistPoint {
                t_ms,
                count: window.count,
                sum: window.sum,
                p50: if window.count > 0 {
                    window.quantile_bound(0.50)
                } else {
                    0
                },
                p99: if window.count > 0 {
                    window.quantile_bound(0.99)
                } else {
                    0
                },
            };
            buf.push_hist(self.capacity, p);
        }
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Every series whose name equals `metric`, or starts with
    /// `metric{` (a labeled family), for each comma-separated entry in
    /// `metric`. The last `window` points of each (all retained points
    /// when `window` is 0). An empty `metric` matches nothing.
    pub fn series_matching(&self, metric: &str, window: usize) -> Vec<Series> {
        if !self.enabled() {
            return Vec::new();
        }
        let wanted: Vec<&str> = metric
            .split(',')
            .map(str::trim)
            .filter(|m| !m.is_empty())
            .collect();
        let inner = self.inner.lock().unwrap();
        let mut out = Vec::new();
        for (name, buf) in &inner.series {
            let hit = wanted.iter().any(|m| {
                name == m
                    || (name.len() > m.len()
                        && name.starts_with(m)
                        && name.as_bytes()[m.len()] == b'{')
            });
            if !hit {
                continue;
            }
            out.push(decode(name, buf, window));
        }
        out
    }

    /// Name, kind, and retained length of every tracked series — the
    /// `/timeseries` index when no metric is asked for.
    pub fn index(&self) -> Vec<(String, SeriesKind, usize)> {
        if !self.enabled() {
            return Vec::new();
        }
        let inner = self.inner.lock().unwrap();
        inner
            .series
            .iter()
            .map(|(name, buf)| {
                let len = match buf.kind {
                    SeriesKind::Histogram => buf.hist_points.len(),
                    _ => buf.points.len(),
                };
                (name.clone(), buf.kind, len)
            })
            .collect()
    }

    /// `{"capacity":…,"samples":…,"series":…,"interval_ms":…}` — the
    /// summary `/snapshot` embeds.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"capacity\":{},\"samples\":{},\"series\":{},\"interval_ms\":{}}}",
            self.capacity,
            self.samples(),
            self.series_count(),
            self.interval_ms(),
        )
    }
}

/// The bucket-wise difference `now - prev` (saturating), i.e. the
/// histogram of samples recorded between the two snapshots. Falls back
/// to `now` when counts went backwards (source restarted).
fn hist_window(prev: &HistogramSnapshot, now: &HistogramSnapshot) -> HistogramSnapshot {
    if now.count < prev.count {
        return now.clone();
    }
    let mut w = HistogramSnapshot {
        count: now.count - prev.count,
        sum: now.sum.wrapping_sub(prev.sum),
        ..HistogramSnapshot::default()
    };
    for i in 0..w.buckets.len() {
        w.buckets[i] = now.buckets[i].saturating_sub(prev.buckets[i]);
    }
    w
}

fn decode(name: &str, buf: &SeriesBuf, window: usize) -> Series {
    let scalar_len = buf.points.len();
    let hist_len = buf.hist_points.len();
    let skip_scalar = if window > 0 {
        scalar_len.saturating_sub(window)
    } else {
        0
    };
    let skip_hist = if window > 0 {
        hist_len.saturating_sub(window)
    } else {
        0
    };
    // Points sliced off the front by the window act like evictions for
    // the base invariant.
    let mut base = buf.base;
    if buf.kind == SeriesKind::Counter {
        for p in buf.points.iter().take(skip_scalar) {
            base += p.value.max(0) as u64;
        }
    }
    Series {
        name: name.to_string(),
        kind: buf.kind,
        base,
        points: buf.points.iter().skip(skip_scalar).copied().collect(),
        hist_points: buf.hist_points.iter().skip(skip_hist).copied().collect(),
    }
}

/// The background sampler: one thread calling [`HistoryRing::sample`]
/// every `interval` until dropped (or [`Sampler::stop`]). Shutdown is
/// prompt — the sleep is a condvar wait, so drop does not block for a
/// full interval.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `obs.metrics` into `obs.history` every
    /// `interval`. Returns a no-thread sampler when the ring is
    /// disabled (capacity 0) — starting one is then free.
    pub fn start(obs: Arc<crate::Obs>, interval: Duration) -> Sampler {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        if !obs.history.enabled() {
            return Sampler { stop, handle: None };
        }
        obs.history.set_interval_ms(interval.as_millis() as u64);
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("psm-history-sampler".to_string())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                loop {
                    // Snapshot outside the ring lock, then fold in.
                    let t_ms = obs.history.born.elapsed().as_millis() as u64;
                    let snap = obs.metrics.snapshot();
                    obs.history.sample_snapshot(t_ms, &snap);
                    let guard = lock.lock().unwrap();
                    let (guard, _) = cv.wait_timeout(guard, interval).unwrap();
                    if *guard {
                        return;
                    }
                }
            })
            .expect("history sampler spawns");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn capacity_zero_is_off_and_allocation_free() {
        let ring = HistoryRing::new(0);
        assert!(!ring.enabled());
        let r = Registry::new();
        r.counter("c").add(5);
        ring.sample(&r);
        ring.sample_at(10, &r);
        assert_eq!(ring.samples(), 0);
        assert_eq!(ring.series_count(), 0);
        assert!(ring.series_matching("c", 0).is_empty());
        assert!(ring.index().is_empty());
        assert_eq!(
            ring.summary_json(),
            "{\"capacity\":0,\"samples\":0,\"series\":0,\"interval_ms\":0}"
        );
    }

    #[test]
    fn counter_delta_encoding_round_trips() {
        let ring = HistoryRing::new(8);
        let r = Registry::new();
        let c = r.counter("interp.firings");
        c.add(3);
        ring.sample_at(100, &r);
        c.add(7);
        ring.sample_at(200, &r);
        c.add(0);
        ring.sample_at(300, &r);
        let s = &ring.series_matching("interp.firings", 0)[0];
        assert_eq!(s.kind, SeriesKind::Counter);
        assert_eq!(s.base, 0);
        let deltas: Vec<i64> = s.points.iter().map(|p| p.value).collect();
        assert_eq!(deltas, vec![3, 7, 0]);
        assert_eq!(
            s.base + deltas.iter().sum::<i64>() as u64,
            c.get(),
            "base + sum of deltas reconstructs the cumulative value"
        );
    }

    #[test]
    fn eviction_folds_into_base() {
        let ring = HistoryRing::new(3);
        let r = Registry::new();
        let c = r.counter("c");
        for i in 1..=6u64 {
            c.add(i);
            ring.sample_at(i * 10, &r);
        }
        let s = &ring.series_matching("c", 0)[0];
        assert_eq!(s.points.len(), 3, "ring bounded at capacity");
        // Evicted deltas 1,2,3 → base 6; retained 4,5,6.
        assert_eq!(s.base, 6);
        let total: u64 = s.base + s.points.iter().map(|p| p.value as u64).sum::<u64>();
        assert_eq!(total, c.get());
        // A narrower read window folds further points into base.
        let s = &ring.series_matching("c", 2)[0];
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.base, 10);
        let total: u64 = s.base + s.points.iter().map(|p| p.value as u64).sum::<u64>();
        assert_eq!(total, c.get());
    }

    #[test]
    fn counter_reset_rebases_instead_of_negative_delta() {
        let ring = HistoryRing::new(8);
        let r1 = Registry::new();
        r1.counter("c").add(100);
        ring.sample_at(10, &r1);
        // Same name, fresh registry: cumulative value goes backwards.
        let r2 = Registry::new();
        r2.counter("c").add(4);
        ring.sample_at(20, &r2);
        let s = &ring.series_matching("c", 0)[0];
        assert!(s.points.iter().all(|p| p.value >= 0));
        assert_eq!(
            s.base + s.points.iter().map(|p| p.value as u64).sum::<u64>(),
            4
        );
    }

    #[test]
    fn gauges_store_levels_and_histograms_window() {
        let ring = HistoryRing::new(4);
        let r = Registry::new();
        let g = r.gauge("depth");
        let h = r.histogram("lat");
        g.set(5);
        h.record(100);
        h.record(100);
        ring.sample_at(10, &r);
        g.set(-2);
        h.record(1_000_000);
        ring.sample_at(20, &r);
        let gs = &ring.series_matching("depth", 0)[0];
        assert_eq!(gs.kind, SeriesKind::Gauge);
        assert_eq!(
            gs.points.iter().map(|p| p.value).collect::<Vec<_>>(),
            vec![5, -2]
        );
        let hs = &ring.series_matching("lat", 0)[0];
        assert_eq!(hs.kind, SeriesKind::Histogram);
        assert_eq!(hs.hist_points.len(), 2);
        assert_eq!(hs.hist_points[0].count, 2);
        assert_eq!(hs.hist_points[0].sum, 200);
        // Second window holds only the new 1ms sample, so its p50 bound
        // reflects that bucket, not the cumulative distribution.
        assert_eq!(hs.hist_points[1].count, 1);
        assert_eq!(hs.hist_points[1].sum, 1_000_000);
        assert_eq!(
            hs.hist_points[1].p50,
            Histogram::bucket_bound(Histogram::bucket_index(1_000_000))
        );
    }

    #[test]
    fn family_prefix_and_comma_lists_match() {
        let ring = HistoryRing::new(4);
        let r = Registry::new();
        r.counter("engine.worker.tasks{worker=\"0\"}").add(1);
        r.counter("engine.worker.tasks{worker=\"1\"}").add(2);
        r.counter("engine.worker.tasks_total").add(9); // not the family
        r.gauge("replica.lag").set(3);
        ring.sample_at(5, &r);
        let fam = ring.series_matching("engine.worker.tasks", 0);
        assert_eq!(fam.len(), 2, "family prefix matches labels only");
        let multi = ring.series_matching("engine.worker.tasks,replica.lag", 0);
        assert_eq!(multi.len(), 3);
        let exact = ring.series_matching("engine.worker.tasks_total", 0);
        assert_eq!(exact.len(), 1);
        assert!(ring.series_matching("", 0).is_empty());
    }

    #[test]
    fn series_json_shape() {
        let ring = HistoryRing::new(4);
        let r = Registry::new();
        r.counter("c").add(3);
        r.histogram("h").record(7);
        ring.sample_at(50, &r);
        let c = &ring.series_matching("c", 0)[0];
        assert_eq!(
            c.to_json(),
            "{\"name\":\"c\",\"kind\":\"counter\",\"base\":0,\"points\":[[50,3]]}"
        );
        let h = &ring.series_matching("h", 0)[0];
        assert_eq!(
            h.to_json(),
            "{\"name\":\"h\",\"kind\":\"histogram\",\"base\":0,\"points\":[[50,1,7,7,7]]}"
        );
    }

    #[test]
    fn sampler_thread_samples_and_stops_promptly() {
        let obs = Arc::new(crate::Obs::with_history(16, 0, 0, 64));
        obs.metrics.counter("tick").add(1);
        let sampler = Sampler::start(Arc::clone(&obs), Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_secs(5);
        while obs.history.samples() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(obs.history.samples() >= 3, "sampler took samples");
        assert_eq!(obs.history.interval_ms(), 5);
        let t0 = Instant::now();
        sampler.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "condvar shutdown is prompt"
        );
        let taken = obs.history.samples();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(obs.history.samples(), taken, "no samples after stop");
    }

    #[test]
    fn disabled_ring_sampler_spawns_no_thread() {
        let obs = Arc::new(crate::Obs::new(16));
        assert!(!obs.history.enabled());
        let sampler = Sampler::start(Arc::clone(&obs), Duration::from_millis(1));
        assert!(sampler.handle.is_none());
        sampler.stop();
    }
}
