//! Bounded structured-event ring buffer with JSONL export.
//!
//! The ring is disabled by default: [`EventRing::emit`] is a single
//! relaxed atomic load and an immediate return until
//! [`EventRing::set_enabled`] turns it on, so instrumented code can
//! emit unconditionally. When enabled, the newest `capacity` events
//! are retained and older ones are counted as dropped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json;

/// A structured field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
}

impl FieldValue {
    fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) => json::number(*v),
            FieldValue::Str(s) => json::escape(s),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// One structured event: a name, a timestamp (µs since the ring was
/// created), and named fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since [`EventRing::new`].
    pub ts_us: u64,
    /// Event name.
    pub name: String,
    /// Structured payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// One JSONL line: `{"ts_us":…,"name":…,"fields":{…}}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"ts_us\":");
        out.push_str(&self.ts_us.to_string());
        out.push_str(",\"name\":");
        json::push_escaped(&mut out, &self.name);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_escaped(&mut out, k);
            out.push(':');
            out.push_str(&v.to_json());
        }
        out.push_str("}}");
        out
    }
}

/// Bounded ring of recent [`Event`]s.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<VecDeque<Event>>,
    capacity: usize,
    enabled: AtomicBool,
    dropped: AtomicU64,
    epoch: Instant,
}

impl EventRing {
    /// A disabled ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            enabled: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the ring is recording.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records an event if the ring is enabled; otherwise returns
    /// immediately without allocating.
    pub fn emit(&self, name: &str, fields: &[(&'static str, FieldValue)]) {
        if !self.enabled() {
            return;
        }
        let ev = Event {
            ts_us: self.epoch.elapsed().as_micros() as u64,
            name: name.to_string(),
            fields: fields.to_vec(),
        };
        let mut q = self.inner.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(ev);
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.inner.lock().unwrap().drain(..).collect()
    }

    /// The buffered events as JSON-lines text (one event per line,
    /// oldest first), without draining.
    pub fn to_jsonl(&self) -> String {
        let q = self.inner.lock().unwrap();
        let mut out = String::new();
        for ev in q.iter() {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let ring = EventRing::new(8);
        ring.emit("x", &[]);
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let ring = EventRing::new(3);
        ring.set_enabled(true);
        for i in 0..5u64 {
            ring.emit("tick", &[("i", i.into())]);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let events = ring.drain();
        assert_eq!(events[0].fields[0].1, FieldValue::U64(2));
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_shape() {
        let ring = EventRing::new(4);
        ring.set_enabled(true);
        ring.emit(
            "phase",
            &[
                ("tasks", 42u64.into()),
                ("name", "remo\"ve".into()),
                ("ratio", 0.5f64.into()),
            ],
        );
        let line = ring.to_jsonl();
        assert!(line.starts_with("{\"ts_us\":"));
        assert!(line.contains("\"name\":\"phase\""));
        assert!(line.contains("\"tasks\":42"));
        assert!(line.contains("\"name\":\"remo\\\"ve\""));
        assert!(line.contains("\"ratio\":0.5"));
        assert!(line.ends_with("}}\n"));
    }
}
