//! Per-node join profiler — the continuous measurement plane under the
//! cost model.
//!
//! The paper's §3–4 analysis runs on per-node quantities: join
//! activations, tokens compared, selectivity, and the cross-production
//! skew that caps speed-up. The rest of `psm-obs` measures per-phase
//! and per-worker aggregates; this module measures the network itself.
//! Each beta-network node gets a fixed slot of relaxed atomic counters
//! (left/right activations, tokens in/out, pairs compared) plus a
//! coarse log2 latency histogram, so the runtime can answer "which
//! join burns the cycles, and what is its *measured* selectivity?"
//! while it runs.
//!
//! Gating follows the flight-recorder discipline: a profiler built
//! with capacity 0 is permanently off, never allocates a slot, and a
//! would-be record costs one relaxed load ([`NodeProfiler::enabled`]).
//! An enabled profiler records with a handful of relaxed atomic adds —
//! no locks, no allocation — so it can stay on in production. Latency
//! histograms are one step more expensive (two clock reads per
//! activation), so callers additionally gate them behind the
//! [`Obs::set_detail`](crate::Obs::set_detail) toggle, same as the
//! span layer.
//!
//! Nodes are keyed by their dense network index. Ids at or past the
//! capacity are not silently merged into a junk slot: they count into
//! [`NodeProfiler::overflow`] so `/snapshot` can report truncation.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::json;
use crate::metrics::{Histogram, HistogramSnapshot};

/// What kind of network node a profile slot describes. This is the
/// *node* taxonomy (a join node, not a "join-R" activation): the
/// per-activation side lands in the left/right counters instead, and
/// the label doubles as the `kind` metric label on the
/// `profile.node.*` families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProfileKind {
    /// A two-input (positive) join node.
    Join,
    /// A negated-condition join node.
    Negative,
    /// A beta memory.
    BetaMem,
    /// A production terminal.
    Terminal,
    /// Anything else (alpha constant tests, alpha memories).
    Other,
}

/// All kinds, in discriminant order (the order `from_u8` decodes).
pub const PROFILE_KINDS: [ProfileKind; 5] = [
    ProfileKind::Join,
    ProfileKind::Negative,
    ProfileKind::BetaMem,
    ProfileKind::Terminal,
    ProfileKind::Other,
];

impl ProfileKind {
    /// Short label used in `/profile` JSON, metric families, and
    /// folded stacks.
    pub fn label(self) -> &'static str {
        match self {
            ProfileKind::Join => "join",
            ProfileKind::Negative => "neg",
            ProfileKind::BetaMem => "bmem",
            ProfileKind::Terminal => "term",
            ProfileKind::Other => "other",
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            ProfileKind::Join => 0,
            ProfileKind::Negative => 1,
            ProfileKind::BetaMem => 2,
            ProfileKind::Terminal => 3,
            ProfileKind::Other => 4,
        }
    }

    fn from_u8(v: u8) -> Option<ProfileKind> {
        PROFILE_KINDS.get(v as usize).copied()
    }
}

/// A batch of per-node counter increments, accumulated locally by a
/// parallel worker during a phase and flushed once with
/// [`NodeProfiler::add`] — the cold-path pattern the engine already
/// uses for its per-worker counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeDelta {
    /// Left (token-side) activations.
    pub left: u64,
    /// Right (WME-side) activations.
    pub right: u64,
    /// Input items consumed (one per activation, either side).
    pub tokens_in: u64,
    /// Tokens emitted downstream (or conflict-set changes, for
    /// terminals).
    pub tokens_out: u64,
    /// Opposite-memory pairs compared while computing the activation.
    pub pairs: u64,
}

impl NodeDelta {
    /// Folds one activation into the batch.
    #[inline]
    pub fn record(&mut self, right: bool, pairs: u64, tokens_out: u64) {
        if right {
            self.right += 1;
        } else {
            self.left += 1;
        }
        self.tokens_in += 1;
        self.tokens_out += tokens_out;
        self.pairs += pairs;
    }
}

/// One node's slot of relaxed atomics. Latency histograms live in a
/// separate parallel vector ([`NodeProfiler::latencies`]): keeping the
/// counter slots ~48 bytes packs two per cache line, so a batch flush
/// walking many touched nodes stays in cache instead of striding over
/// histogram-sized gaps.
#[derive(Debug)]
struct Slot {
    /// `u8::MAX` until the first record fixes the node kind.
    kind: AtomicU8,
    left: AtomicU64,
    right: AtomicU64,
    tokens_in: AtomicU64,
    tokens_out: AtomicU64,
    pairs: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            kind: AtomicU8::new(u8::MAX),
            left: AtomicU64::new(0),
            right: AtomicU64::new(0),
            tokens_in: AtomicU64::new(0),
            tokens_out: AtomicU64::new(0),
            pairs: AtomicU64::new(0),
        }
    }

    fn touched(&self) -> bool {
        self.kind.load(Ordering::Relaxed) != u8::MAX
    }
}

/// The per-node profiler: `capacity` slots of atomic counters, one per
/// network node index. Capacity 0 is permanently off and allocation
/// free. Shared freely across threads (`&self` everywhere, all relaxed
/// atomics).
#[derive(Debug)]
pub struct NodeProfiler {
    capacity: usize,
    slots: Vec<Slot>,
    /// Per-node latency histograms, parallel to `slots` (see the
    /// [`Slot`] layout note).
    latencies: Vec<Histogram>,
    overflow: AtomicU64,
}

impl NodeProfiler {
    /// A profiler with `capacity` node slots; 0 disables it outright
    /// (no slot vector is allocated).
    pub fn new(capacity: usize) -> NodeProfiler {
        NodeProfiler {
            capacity,
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            latencies: (0..capacity).map(|_| Histogram::default()).collect(),
            overflow: AtomicU64::new(0),
        }
    }

    /// Whether recording does anything. The disabled check is the
    /// entire cost of a would-be record on a capacity-0 profiler.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of node slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records incremented for nodes at or past capacity (dropped, not
    /// merged).
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Number of slots that have recorded at least one activation.
    pub fn retained(&self) -> usize {
        self.slots.iter().filter(|s| s.touched()).count()
    }

    fn slot(&self, node: u32) -> Option<&Slot> {
        let s = self.slots.get(node as usize);
        if s.is_none() && self.enabled() {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        s
    }

    /// Records one activation of `node`: which side it arrived on, how
    /// many opposite-memory pairs were compared, and how many tokens
    /// (or conflict-set changes) it emitted. The sequential matcher's
    /// hot-path entry point — a no-op unless [`enabled`].
    ///
    /// [`enabled`]: NodeProfiler::enabled
    #[inline]
    pub fn record(&self, node: u32, kind: ProfileKind, right: bool, pairs: u64, tokens_out: u64) {
        if !self.enabled() {
            return;
        }
        let Some(s) = self.slot(node) else { return };
        s.kind.store(kind.as_u8(), Ordering::Relaxed);
        if right {
            s.right.fetch_add(1, Ordering::Relaxed);
        } else {
            s.left.fetch_add(1, Ordering::Relaxed);
        }
        s.tokens_in.fetch_add(1, Ordering::Relaxed);
        s.tokens_out.fetch_add(tokens_out, Ordering::Relaxed);
        s.pairs.fetch_add(pairs, Ordering::Relaxed);
    }

    /// Flushes a worker-local [`NodeDelta`] batch into `node`'s slot —
    /// the parallel engine's once-per-phase cold path.
    pub fn add(&self, node: u32, kind: ProfileKind, d: &NodeDelta) {
        if !self.enabled() {
            return;
        }
        let Some(s) = self.slot(node) else { return };
        s.kind.store(kind.as_u8(), Ordering::Relaxed);
        s.left.fetch_add(d.left, Ordering::Relaxed);
        s.right.fetch_add(d.right, Ordering::Relaxed);
        s.tokens_in.fetch_add(d.tokens_in, Ordering::Relaxed);
        s.tokens_out.fetch_add(d.tokens_out, Ordering::Relaxed);
        s.pairs.fetch_add(d.pairs, Ordering::Relaxed);
    }

    /// Single-writer variant of [`add`](NodeProfiler::add): folds the
    /// batch in with relaxed load + store pairs instead of atomic RMWs
    /// (an uncontended `fetch_add` still pays a locked instruction;
    /// this does not). Correct only while the caller is the sole
    /// thread *writing* the profiler — concurrent [`snapshot`] readers
    /// are fine, they already tolerate relaxed tearing between
    /// counters. The sequential matcher's per-batch flush is the
    /// intended caller; parallel workers must keep using `add`.
    ///
    /// [`snapshot`]: NodeProfiler::snapshot
    pub fn add_single_writer(&self, node: u32, kind: ProfileKind, d: &NodeDelta) {
        if !self.enabled() {
            return;
        }
        let Some(s) = self.slot(node) else { return };
        s.kind.store(kind.as_u8(), Ordering::Relaxed);
        let bump =
            |c: &AtomicU64, v: u64| c.store(c.load(Ordering::Relaxed) + v, Ordering::Relaxed);
        bump(&s.left, d.left);
        bump(&s.right, d.right);
        bump(&s.tokens_in, d.tokens_in);
        bump(&s.tokens_out, d.tokens_out);
        bump(&s.pairs, d.pairs);
    }

    /// Records one activation's latency into `node`'s coarse log2
    /// histogram. Callers gate this behind the detail toggle — the two
    /// clock reads around an activation cost more than the counters do.
    #[inline]
    pub fn record_latency(&self, node: u32, ns: u64) {
        if !self.enabled() {
            return;
        }
        if let Some(h) = self.latencies.get(node as usize) {
            h.record(ns);
        }
    }

    /// A point-in-time copy of every touched slot, sorted hottest
    /// first (pairs compared, then input volume).
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut rows: Vec<ProfileRow> = Vec::new();
        for (i, s) in self.slots.iter().enumerate() {
            let kind = ProfileKind::from_u8(s.kind.load(Ordering::Relaxed));
            let Some(kind) = kind else { continue };
            let pairs = s.pairs.load(Ordering::Relaxed);
            let tokens_out = s.tokens_out.load(Ordering::Relaxed);
            rows.push(ProfileRow {
                node: i as u32,
                kind: kind.label(),
                left: s.left.load(Ordering::Relaxed),
                right: s.right.load(Ordering::Relaxed),
                tokens_in: s.tokens_in.load(Ordering::Relaxed),
                tokens_out,
                pairs,
                selectivity: if pairs > 0 {
                    tokens_out as f64 / pairs as f64
                } else {
                    0.0
                },
                latency: self.latencies[i].snapshot(),
            });
        }
        rows.sort_by(|a, b| {
            b.pairs
                .cmp(&a.pairs)
                .then(b.tokens_in.cmp(&a.tokens_in))
                .then(a.node.cmp(&b.node))
        });
        ProfileSnapshot {
            capacity: self.capacity,
            retained: rows.len(),
            overflow: self.overflow(),
            rows,
        }
    }
}

/// One node's profile, as captured by [`NodeProfiler::snapshot`].
#[derive(Clone, Debug)]
pub struct ProfileRow {
    /// Dense network node index.
    pub node: u32,
    /// [`ProfileKind::label`] of the node.
    pub kind: &'static str,
    /// Left (token-side) activations.
    pub left: u64,
    /// Right (WME-side) activations.
    pub right: u64,
    /// Input items consumed.
    pub tokens_in: u64,
    /// Tokens emitted (conflict-set changes for terminals).
    pub tokens_out: u64,
    /// Opposite-memory pairs compared.
    pub pairs: u64,
    /// Measured join selectivity: `tokens_out / pairs` (0 when no
    /// pairs were compared).
    pub selectivity: f64,
    /// Coarse activation-latency histogram (nanoseconds); empty unless
    /// the detail toggle was on.
    pub latency: HistogramSnapshot,
}

impl ProfileRow {
    /// The row as a JSON object. Latency is summarized (count / mean /
    /// p50 / p99) rather than dumped bucket-by-bucket: `/profile` is a
    /// polling endpoint and the full buckets are already on `/metrics`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str("{\"node\":");
        out.push_str(&self.node.to_string());
        out.push_str(",\"kind\":");
        json::push_escaped(&mut out, self.kind);
        out.push_str(",\"left\":");
        out.push_str(&self.left.to_string());
        out.push_str(",\"right\":");
        out.push_str(&self.right.to_string());
        out.push_str(",\"tokens_in\":");
        out.push_str(&self.tokens_in.to_string());
        out.push_str(",\"tokens_out\":");
        out.push_str(&self.tokens_out.to_string());
        out.push_str(",\"pairs\":");
        out.push_str(&self.pairs.to_string());
        out.push_str(",\"selectivity\":");
        out.push_str(&json::number(self.selectivity));
        out.push_str(",\"lat_count\":");
        out.push_str(&self.latency.count.to_string());
        out.push_str(",\"lat_mean_ns\":");
        out.push_str(&json::number(self.latency.mean()));
        out.push_str(",\"lat_p50_ns\":");
        out.push_str(&self.latency.quantile_bound(0.5).to_string());
        out.push_str(",\"lat_p99_ns\":");
        out.push_str(&self.latency.quantile_bound(0.99).to_string());
        out.push('}');
        out
    }
}

/// Everything `/profile` serves: capacity / retention / overflow status
/// plus the touched rows, hottest first.
#[derive(Clone, Debug)]
pub struct ProfileSnapshot {
    /// Node slots the profiler was built with (0 = profiling off).
    pub capacity: usize,
    /// Slots that recorded at least one activation.
    pub retained: usize,
    /// Records dropped because the node index was past capacity.
    pub overflow: u64,
    /// Touched rows, sorted by pairs compared descending.
    pub rows: Vec<ProfileRow>,
}

impl ProfileSnapshot {
    /// Total pairs compared across all rows (the denominator for
    /// hot-node share).
    pub fn total_pairs(&self) -> u64 {
        self.rows.iter().map(|r| r.pairs).sum()
    }

    /// The snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 192 * self.rows.len());
        out.push_str("{\"capacity\":");
        out.push_str(&self.capacity.to_string());
        out.push_str(",\"retained\":");
        out.push_str(&self.retained.to_string());
        out.push_str(",\"overflow\":");
        out.push_str(&self.overflow.to_string());
        out.push_str(",\"total_pairs\":");
        out.push_str(&self.total_pairs().to_string());
        out.push_str(",\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_zero_is_off_and_allocation_free() {
        let p = NodeProfiler::new(0);
        assert!(!p.enabled());
        assert_eq!(p.slots.capacity(), 0, "no slot vector behind capacity 0");
        p.record(3, ProfileKind::Join, true, 10, 2);
        p.record_latency(3, 500);
        p.add(3, ProfileKind::Join, &NodeDelta::default());
        assert_eq!(
            p.overflow(),
            0,
            "disabled profiler does not even count overflow"
        );
        let snap = p.snapshot();
        assert_eq!(snap.capacity, 0);
        assert_eq!(snap.retained, 0);
        assert!(snap.rows.is_empty());
    }

    #[test]
    fn records_and_sorts_hottest_first() {
        let p = NodeProfiler::new(8);
        assert!(p.enabled());
        // Node 2: a join scanning 4 pairs per right activation, half pass.
        p.record(2, ProfileKind::Join, true, 4, 2);
        p.record(2, ProfileKind::Join, true, 4, 2);
        // Node 5: a colder join.
        p.record(5, ProfileKind::Join, false, 1, 1);
        // Node 7: terminal.
        p.record(7, ProfileKind::Terminal, false, 0, 1);
        let snap = p.snapshot();
        assert_eq!(snap.retained, 3);
        assert_eq!(snap.rows[0].node, 2, "hottest (most pairs) first");
        assert_eq!(snap.rows[0].right, 2);
        assert_eq!(snap.rows[0].left, 0);
        assert_eq!(snap.rows[0].pairs, 8);
        assert_eq!(snap.rows[0].tokens_out, 4);
        assert!((snap.rows[0].selectivity - 0.5).abs() < 1e-12);
        assert_eq!(snap.rows[0].kind, "join");
        let term = snap.rows.iter().find(|r| r.node == 7).unwrap();
        assert_eq!(term.kind, "term");
        assert_eq!(term.selectivity, 0.0, "no pairs, no selectivity");
    }

    #[test]
    fn overflow_counts_out_of_range_nodes() {
        let p = NodeProfiler::new(2);
        p.record(0, ProfileKind::Join, true, 1, 0);
        p.record(9, ProfileKind::Join, true, 1, 0);
        p.add(11, ProfileKind::Join, &NodeDelta::default());
        assert_eq!(p.overflow(), 2);
        assert_eq!(p.snapshot().retained, 1);
    }

    #[test]
    fn single_writer_add_matches_atomic_add() {
        let a = NodeProfiler::new(4);
        let b = NodeProfiler::new(4);
        let d = NodeDelta {
            left: 3,
            right: 2,
            tokens_in: 5,
            tokens_out: 4,
            pairs: 17,
        };
        a.add(2, ProfileKind::Join, &d);
        a.add(2, ProfileKind::Join, &d);
        b.add_single_writer(2, ProfileKind::Join, &d);
        b.add_single_writer(2, ProfileKind::Join, &d);
        let (ra, rb) = (a.snapshot().rows, b.snapshot().rows);
        assert_eq!(ra[0].left, rb[0].left);
        assert_eq!(ra[0].right, rb[0].right);
        assert_eq!(ra[0].tokens_in, rb[0].tokens_in);
        assert_eq!(ra[0].tokens_out, rb[0].tokens_out);
        assert_eq!(ra[0].pairs, rb[0].pairs);
        assert_eq!(ra[0].kind, "join");
        // Out-of-range nodes still count into overflow.
        b.add_single_writer(9, ProfileKind::Join, &d);
        assert_eq!(b.overflow(), 1);
    }

    #[test]
    fn bulk_add_matches_singles() {
        let a = NodeProfiler::new(4);
        let b = NodeProfiler::new(4);
        let mut d = NodeDelta::default();
        for i in 0..5u64 {
            a.record(1, ProfileKind::Negative, i % 2 == 0, 3, 1);
            d.record(i % 2 == 0, 3, 1);
        }
        b.add(1, ProfileKind::Negative, &d);
        let (ra, rb) = (a.snapshot().rows, b.snapshot().rows);
        assert_eq!(ra[0].left, rb[0].left);
        assert_eq!(ra[0].right, rb[0].right);
        assert_eq!(ra[0].tokens_in, rb[0].tokens_in);
        assert_eq!(ra[0].tokens_out, rb[0].tokens_out);
        assert_eq!(ra[0].pairs, rb[0].pairs);
    }

    #[test]
    fn latency_lands_in_histogram() {
        let p = NodeProfiler::new(2);
        p.record(0, ProfileKind::Join, true, 1, 1);
        p.record_latency(0, 1000);
        p.record_latency(0, 2000);
        let snap = p.snapshot();
        assert_eq!(snap.rows[0].latency.count, 2);
        assert_eq!(snap.rows[0].latency.sum, 3000);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let p = NodeProfiler::new(2);
        p.record(0, ProfileKind::Join, true, 4, 1);
        let j = p.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"selectivity\":0.25"));
        assert!(j.contains("\"kind\":\"join\""));
        assert!(j.contains("\"total_pairs\":4"));
    }
}
