//! RAII span timers.
//!
//! A [`SpanTimer`] measures the wall time between its construction and
//! drop and records it (in nanoseconds) into a [`Histogram`]. A
//! disabled timer ([`SpanTimer::disabled`]) costs one branch at drop,
//! so instrumented code can create one unconditionally:
//!
//! ```
//! use psm_obs::{Histogram, SpanTimer};
//! let hist = Histogram::default();
//! {
//!     let _span = SpanTimer::start(&hist);
//!     // ... timed work ...
//! }
//! assert_eq!(hist.count(), 1);
//! ```

use std::time::Instant;

use crate::metrics::{Histogram, HistogramSnapshot};

/// Times a scope and records the elapsed nanoseconds on drop.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: Option<&'a Histogram>,
    start: Instant,
}

impl<'a> SpanTimer<'a> {
    /// A live timer recording into `hist` when dropped.
    #[inline]
    pub fn start(hist: &'a Histogram) -> Self {
        SpanTimer {
            hist: Some(hist),
            start: Instant::now(),
        }
    }

    /// A live timer only if `enabled`; otherwise a no-op timer.
    #[inline]
    pub fn start_if(enabled: bool, hist: &'a Histogram) -> Self {
        if enabled {
            Self::start(hist)
        } else {
            Self::disabled()
        }
    }

    /// A timer that records nothing.
    #[inline]
    pub fn disabled() -> Self {
        SpanTimer {
            hist: None,
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for SpanTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(h) = self.hist {
            h.record(self.start.elapsed().as_nanos() as u64);
        }
    }
}

/// The three phases of the recognize–act cycle (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Match: compute conflict-set changes from WM changes.
    Match,
    /// Conflict resolution: pick the next instantiation.
    Select,
    /// Act: execute the RHS, producing the next WM change batch.
    Act,
}

impl Phase {
    /// All phases in cycle order.
    pub const ALL: [Phase; 3] = [Phase::Match, Phase::Select, Phase::Act];

    /// Lower-case phase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Match => "match",
            Phase::Select => "select",
            Phase::Act => "act",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Match => 0,
            Phase::Select => 1,
            Phase::Act => 2,
        }
    }
}

/// Per-phase latency histograms (nanoseconds per cycle-phase).
#[derive(Debug, Default)]
pub struct PhaseProfile {
    hists: [Histogram; 3],
}

impl PhaseProfile {
    /// A profile with empty histograms.
    pub fn new() -> Self {
        PhaseProfile::default()
    }

    /// An RAII timer for `phase`.
    #[inline]
    pub fn span(&self, phase: Phase) -> SpanTimer<'_> {
        SpanTimer::start(&self.hists[phase.index()])
    }

    /// The histogram for `phase`.
    pub fn histogram(&self, phase: Phase) -> &Histogram {
        &self.hists[phase.index()]
    }

    /// Snapshot of one phase.
    pub fn snapshot(&self, phase: Phase) -> HistogramSnapshot {
        self.hists[phase.index()].snapshot()
    }

    /// Total nanoseconds recorded per phase, in [`Phase::ALL`] order.
    pub fn totals_ns(&self) -> [u64; 3] {
        std::array::from_fn(|i| self.hists[i].snapshot().sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::default();
        {
            let _s = SpanTimer::start(&h);
        }
        {
            let _s = SpanTimer::start_if(false, &h);
        }
        {
            let _s = SpanTimer::disabled();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn phase_profile_routes_to_the_right_histogram() {
        let p = PhaseProfile::new();
        {
            let _m = p.span(Phase::Match);
            let _a = p.span(Phase::Act);
        }
        assert_eq!(p.snapshot(Phase::Match).count, 1);
        assert_eq!(p.snapshot(Phase::Select).count, 0);
        assert_eq!(p.snapshot(Phase::Act).count, 1);
        assert_eq!(Phase::Match.name(), "match");
    }
}
