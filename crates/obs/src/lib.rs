//! `psm-obs` — the observability layer for the parallel production
//! system, with **zero external dependencies**.
//!
//! The paper's §6 headline is a *loss* story: nominal concurrency of
//! ~15.92 collapses to a true speed-up of ~8.25, the missing 1.93×
//! split between memory contention, scheduler overhead, and
//! task-size variance. Seeing where that factor goes requires
//! instrumentation at three layers — the match network, the software
//! task pool, and the simulated machine — all of which this crate
//! serves:
//!
//! - [`metrics`] — a registry of named atomic counters, gauges, and
//!   log2-bucketed histograms. Recording is lock-free ([`Counter`]
//!   and [`Histogram`] are plain atomics) and snapshots are
//!   mergeable, so per-worker metrics combine without locks on the
//!   hot path.
//! - [`span`] — RAII span timers feeding per-phase (match / select /
//!   act) and per-node-kind histograms.
//! - [`events`] — a bounded structured-event ring buffer with JSONL
//!   export, disabled by default and toggled at runtime.
//! - [`chrome`] — a Chrome `trace_event`-format JSON exporter, so a
//!   simulated 32-processor schedule renders directly in
//!   Perfetto / `chrome://tracing`.
//! - [`rng`] — a seeded SplitMix64 PRNG used by workload generators
//!   and randomized tests, replacing the external `rand` crate so
//!   the workspace builds fully offline.
//!
//! Everything here is cheap by default: counters are single relaxed
//! atomic adds, histograms are one atomic add into a fixed bucket
//! array, and the event/span layer does nothing until enabled.

pub mod chrome;
pub mod events;
pub mod flight;
pub mod history;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod rng;
pub mod span;

pub use chrome::{ChromeEvent, ChromeTrace};
pub use events::{Event, EventRing, FieldValue};
pub use flight::{Explanation, FlightKind, FlightRecord, FlightRecorder, DEFAULT_MAX_CYCLES};
pub use history::{HistPoint, HistoryRing, Point, Sampler, Series, SeriesKind};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, HIST_BUCKETS,
};
pub use profile::{NodeDelta, NodeProfiler, ProfileKind, ProfileRow, ProfileSnapshot};
pub use rng::Rng64;
pub use span::{Phase, PhaseProfile, SpanTimer};

use std::sync::atomic::{AtomicBool, Ordering};

/// One shared observability handle: a metrics [`Registry`], an
/// [`EventRing`], a causal [`FlightRecorder`], and a detail toggle
/// gating the more expensive span / event layer. Clone an `Arc<Obs>`
/// into every worker.
#[derive(Debug)]
pub struct Obs {
    /// Named counters / gauges / histograms.
    pub metrics: Registry,
    /// Bounded structured-event buffer (disabled until
    /// [`Obs::set_detail`]).
    pub events: EventRing,
    /// Causal provenance ring (capacity 0 — permanently off — unless
    /// built via [`Obs::with_flight`]). Unlike the event ring, the
    /// flight recorder is *always on* once given capacity: it does not
    /// wait for the detail toggle, so `explain` queries work on a
    /// production run without enabling the expensive span layer.
    pub flight: FlightRecorder,
    /// Per-node join profiler (capacity 0 — permanently off — unless
    /// built via [`Obs::with_profile`]). Like the flight recorder it
    /// is always on once given capacity; only its latency histograms
    /// additionally wait for the detail toggle.
    pub profile: NodeProfiler,
    /// Metric time-series ring (capacity 0 — permanently off — unless
    /// built via [`Obs::with_history`]). Nothing samples it by itself:
    /// start a [`Sampler`] (or call [`HistoryRing::sample`]) to feed
    /// it on a cadence.
    pub history: HistoryRing,
    detail: AtomicBool,
}

impl Obs {
    /// A fresh handle with an event ring of `ring_capacity` slots and
    /// the flight recorder off. Counters are always live; the
    /// span/event layer starts off.
    pub fn new(ring_capacity: usize) -> Self {
        Self::with_flight(ring_capacity, 0)
    }

    /// A handle whose flight recorder retains `flight_capacity`
    /// provenance records (0 = off).
    pub fn with_flight(ring_capacity: usize, flight_capacity: usize) -> Self {
        Self::with_profile(ring_capacity, flight_capacity, 0)
    }

    /// A handle with the per-node profiler sized for `profile_capacity`
    /// network nodes on top of the event ring and flight recorder
    /// (either may still be 0 = off).
    pub fn with_profile(
        ring_capacity: usize,
        flight_capacity: usize,
        profile_capacity: usize,
    ) -> Self {
        Self::with_history(ring_capacity, flight_capacity, profile_capacity, 0)
    }

    /// A handle with the metric time-series ring retaining
    /// `history_windows` sampling windows per series on top of the
    /// event ring, flight recorder, and profiler (any may be 0 = off).
    pub fn with_history(
        ring_capacity: usize,
        flight_capacity: usize,
        profile_capacity: usize,
        history_windows: usize,
    ) -> Self {
        Obs {
            metrics: Registry::new(),
            events: EventRing::new(ring_capacity),
            flight: FlightRecorder::new(flight_capacity),
            profile: NodeProfiler::new(profile_capacity),
            history: HistoryRing::new(history_windows),
            detail: AtomicBool::new(false),
        }
    }

    /// Turns the detailed (span + event) layer on or off at runtime.
    pub fn set_detail(&self, on: bool) {
        self.detail.store(on, Ordering::Relaxed);
        self.events.set_enabled(on);
    }

    /// Whether the detailed layer is currently on.
    pub fn detail(&self) -> bool {
        self.detail.load(Ordering::Relaxed)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detail_toggle_gates_events() {
        let obs = Obs::default();
        obs.events.emit("dropped", &[]);
        assert_eq!(obs.events.len(), 0);
        obs.set_detail(true);
        assert!(obs.detail());
        obs.events.emit("kept", &[]);
        assert_eq!(obs.events.len(), 1);
        obs.set_detail(false);
        obs.events.emit("dropped-again", &[]);
        assert_eq!(obs.events.len(), 1);
    }
}
