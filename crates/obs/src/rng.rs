//! A small seeded PRNG (SplitMix64) so workload generation and
//! randomized tests are reproducible without any external crate.
//!
//! SplitMix64 passes BigCrush, has a full 2^64 period over its state
//! walk, and is two lines of arithmetic — exactly enough for synthetic
//! workloads and property-style tests. It is **not** cryptographic.

use std::ops::{Range, RangeInclusive};

/// Seeded SplitMix64 generator.
///
/// ```
/// use psm_obs::Rng64;
/// let mut rng = Rng64::new(42);
/// let a = rng.gen_range(0..10usize);
/// assert!(a < 10);
/// let p = rng.gen_f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform sample from a `Range` or `RangeInclusive` over the
    /// common integer types. Panics on an empty range, like `rand`.
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// Uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "Rng64::choose on empty slice");
        &slice[self.gen_range(0..slice.len())]
    }
}

/// Integer ranges [`Rng64::gen_range`] can sample from.
pub trait RangeSample {
    /// The sampled value's type.
    type Out;
    /// Draws a uniform sample using `rng`.
    fn sample(self, rng: &mut Rng64) -> Self::Out;
}

macro_rules! impl_range_sample {
    ($($t:ty),* $(,)?) => {$(
        impl RangeSample for Range<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(
                    self.start < self.end,
                    "Rng64::gen_range on empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl RangeSample for RangeInclusive<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(
                    start <= end,
                    "Rng64::gen_range on empty range {start}..={end}"
                );
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_sample!(usize, u64, u32, u16, u8, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::new(99);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = Rng64::new(4);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = Rng64::new(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = Rng64::new(1234);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from 1000");
        }
    }
}
