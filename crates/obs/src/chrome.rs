//! Chrome `trace_event`-format JSON export.
//!
//! Produces the JSON-object flavor (`{"traceEvents": [...]}`) that
//! Perfetto and `chrome://tracing` load directly. Processor timelines
//! map naturally: one *pid* per machine, one *tid* per processor,
//! complete events (`"ph": "X"`) for busy slices, counter events
//! (`"ph": "C"`) for utilization series, and metadata events
//! (`"ph": "M"`) to name the rows.
//!
//! Reference: the Trace Event Format spec (Google, 2016); timestamps
//! and durations are microseconds.

use std::fmt::Write as _;

use crate::json;

/// One trace event (see the `ph` field for the flavor).
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Comma-separated categories.
    pub cat: String,
    /// Phase: `X` complete, `i` instant, `C` counter, `M` metadata.
    pub ph: char,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: Option<f64>,
    /// Process id (machine).
    pub pid: u32,
    /// Thread id (processor).
    pub tid: u32,
    /// Extra `args` as key → JSON-literal pairs (values must already
    /// be valid JSON fragments, e.g. from [`json::number`] or
    /// [`json::escape`]).
    pub args: Vec<(String, String)>,
}

impl ChromeEvent {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"name\":");
        json::push_escaped(&mut out, &self.name);
        out.push_str(",\"cat\":");
        json::push_escaped(&mut out, &self.cat);
        let _ = write!(
            out,
            ",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            self.ph,
            json::number(self.ts_us),
            self.pid,
            self.tid
        );
        if let Some(dur) = self.dur_us {
            let _ = write!(out, ",\"dur\":{}", json::number(dur));
        }
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_escaped(&mut out, k);
                out.push(':');
                out.push_str(v);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Builder for a Chrome trace file.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<ChromeEvent>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a complete (`"X"`) event: a busy slice on row
    /// (`pid`, `tid`) spanning `[ts_us, ts_us + dur_us]`.
    pub fn complete(&mut self, pid: u32, tid: u32, name: &str, cat: &str, ts_us: f64, dur_us: f64) {
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us,
            dur_us: Some(dur_us),
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// Like [`ChromeTrace::complete`] with extra `args` (values must
    /// be JSON fragments).
    #[allow(clippy::too_many_arguments)]
    pub fn complete_with_args(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us,
            dur_us: Some(dur_us),
            pid,
            tid,
            args,
        });
    }

    /// Adds an instant (`"i"`) event.
    pub fn instant(&mut self, pid: u32, tid: u32, name: &str, cat: &str, ts_us: f64) {
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts_us,
            dur_us: None,
            pid,
            tid,
            // "s":"t" (thread scope) is implied by default rendering.
            args: Vec::new(),
        });
    }

    /// Adds a counter (`"C"`) sample named `name` with series
    /// `series = value`.
    pub fn counter(&mut self, pid: u32, name: &str, ts_us: f64, series: &str, value: f64) {
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: "counter".to_string(),
            ph: 'C',
            ts_us,
            dur_us: None,
            pid,
            tid: 0,
            args: vec![(series.to_string(), json::number(value))],
        });
    }

    /// Names process `pid` (machine) in the viewer.
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.metadata(pid, 0, "process_name", name);
    }

    /// Names thread (`pid`, `tid`) (processor) in the viewer.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.metadata(pid, tid, "thread_name", name);
    }

    fn metadata(&mut self, pid: u32, tid: u32, kind: &str, name: &str) {
        self.events.push(ChromeEvent {
            name: kind.to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid,
            args: vec![("name".to_string(), json::escape(name))],
        });
    }

    /// Serializes to the JSON-object trace format Perfetto loads:
    /// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&ev.to_json());
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_required_fields() {
        let mut t = ChromeTrace::new();
        t.process_name(1, "psm-32");
        t.thread_name(1, 3, "proc 3");
        t.complete(1, 3, "JoinRight n17", "match", 10.0, 4.5);
        t.counter(1, "bus", 10.0, "utilization", 0.62);
        let json = t.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        for field in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":", "\"name\":"] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":4.5"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("{\"name\":\"psm-32\"}"));
        assert!(json.contains("\"utilization\":0.62"));
    }

    #[test]
    fn balanced_braces_and_quotes() {
        let mut t = ChromeTrace::new();
        t.complete(0, 0, "weird \"name\"\n", "c", 0.0, 1.0);
        let json = t.to_json();
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        // Non-escaped quotes must be even.
        let quotes = json.replace("\\\"", "").matches('"').count();
        assert_eq!(quotes % 2, 0);
    }
}
