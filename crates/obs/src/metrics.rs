//! Named atomic counters, gauges, and log2-bucketed histograms with
//! lock-free recording and mergeable snapshots.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are obtained once
//! from a [`Registry`] (a brief registration lock) and recorded into
//! with single relaxed atomic operations — no locks, no allocation on
//! the hot path. Per-worker registries (or per-worker snapshots) are
//! combined with [`MetricsSnapshot::merge`], which is associative and
//! commutative, so partial aggregates can be folded in any order.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i)`, and bucket 64 tops out
/// at `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// Monotonic counter. `inc`/`add` are relaxed atomic adds.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed gauge for instantaneous levels (queue depth, live tokens).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raises the gauge to `v` if `v` is greater (lock-free CAS loop);
    /// used for high-water marks.
    pub fn fetch_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

/// Log2-bucketed histogram of `u64` samples (typically nanoseconds or
/// sizes). Recording is one atomic add into a fixed bucket plus
/// count/sum updates; there is no allocation and no lock.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index for `v`: 0 for 0, else `64 - leading_zeros`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=63 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable, mergeable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self`. Associative and commutative with
    /// the default snapshot as identity.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Mean sample value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`q` in `[0, 1]`, NaN treated as 0), or 0 for an empty
    /// histogram.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        // `count as f64` can round up past the true total for huge
        // counts, so the scan must not rely on reaching `rank`: fall
        // back to the highest *populated* bucket, never the ring's top
        // bound (a q=1.0 query on a single-bucket snapshot must return
        // that bucket's bound, not `u64::MAX`).
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let mut last_populated = 0usize;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            last_populated = i;
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Histogram::bucket_bound(i);
            }
        }
        Histogram::bucket_bound(last_populated)
    }
}

/// Registry of named metrics. Registration takes a short lock;
/// recording through the returned `Arc` handles is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::default())),
        )
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Mergeable point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and histograms add, gauges
    /// take the maximum (per-worker gauges are high-water marks once
    /// snapshotted). Associative, with the default snapshot as
    /// identity.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(i64::MIN);
            *slot = (*slot).max(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Human-readable dump, one metric per line, sorted by name.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} = {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k} = {v}");
        }
        for (k, h) in &self.histograms {
            if h.count == 0 {
                let _ = writeln!(out, "{k}: count=0 (empty)");
                continue;
            }
            let _ = writeln!(
                out,
                "{k}: count={} mean={:.1} p50<={} p99<={}",
                h.count,
                h.mean(),
                h.quantile_bound(0.50),
                h.quantile_bound(0.99),
            );
        }
        out
    }

    /// The snapshot as one JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{"count":…,
    /// "sum":…,"buckets":[[index,count],…]}}}` — buckets are sparse
    /// `[bucket index, sample count]` pairs (see
    /// [`Histogram::bucket_bound`] for the index → bound mapping).
    pub fn to_json(&self) -> String {
        use crate::json::push_escaped;
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_escaped(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_escaped(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_escaped(&mut out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            );
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{b},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_zero_one_max() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_index(1u64 << 63), 64);
        assert_eq!(Histogram::bucket_index((1u64 << 63) - 1), 63);

        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.sum, 0); // 0 + 1 + MAX wraps to 0
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_bound(i));
            if i > 0 {
                assert!(v > Histogram::bucket_bound(i - 1));
            }
        }
    }

    #[test]
    fn snapshot_merge_is_associative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::default();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(&[0, 5, 9000]), mk(&[1, 1, 2]), mk(&[u64::MAX, 7]));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left, right);
        assert_eq!(left.count, 8);

        // Identity element.
        let mut with_id = a.clone();
        with_id.merge(&HistogramSnapshot::default());
        assert_eq!(with_id, a);
    }

    #[test]
    fn registry_merge_is_associative() {
        let mk = |n: u64| {
            let r = Registry::new();
            r.counter("tasks").add(n);
            r.gauge("depth").set(n as i64);
            r.histogram("ns").record(n * 10);
            r.snapshot()
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.counters["tasks"], 6);
        assert_eq!(left.gauges["depth"], 3);
        assert_eq!(left.histograms["ns"].count, 3);
    }

    #[test]
    fn registry_returns_same_handle() {
        let r = Registry::new();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.inc();
        c2.add(2);
        assert_eq!(r.snapshot().counters["x"], 3);
    }

    #[test]
    fn quantile_bounds() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.quantile_bound(0.5) >= 500);
        assert!(s.quantile_bound(1.0) >= 1000);
        assert_eq!(HistogramSnapshot::default().quantile_bound(0.5), 0);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: every quantile is 0.
        let empty = HistogramSnapshot::default();
        for q in [0.0, 0.5, 1.0, f64::NAN, -3.0, 7.0] {
            assert_eq!(empty.quantile_bound(q), 0);
        }

        // q = 1.0 on a single-bucket snapshot returns that bucket's
        // bound, including when f64 rounding pushes the rank past the
        // true total (count near 2^60 rounds up in f64).
        let mut single = HistogramSnapshot::default();
        single.buckets[3] = (1u64 << 60) + 1; // values in [4, 8)
        single.count = (1u64 << 60) + 1;
        assert_eq!(single.quantile_bound(1.0), Histogram::bucket_bound(3));
        assert_eq!(single.quantile_bound(0.0), Histogram::bucket_bound(3));

        // A literal single-sample snapshot.
        let h = Histogram::default();
        h.record(5);
        let s = h.snapshot();
        assert_eq!(s.quantile_bound(1.0), 7); // bucket [4, 8)
        assert_eq!(s.quantile_bound(0.0), 7);

        // NaN and out-of-range q are clamped, not propagated.
        assert_eq!(s.quantile_bound(f64::NAN), 7);
        assert_eq!(s.quantile_bound(-1.0), 7);
        assert_eq!(s.quantile_bound(2.0), 7);
    }

    #[test]
    fn to_text_marks_empty_histograms() {
        let r = Registry::new();
        let _ = r.histogram("never_recorded");
        r.histogram("recorded").record(9);
        let text = r.snapshot().to_text();
        assert!(text.contains("never_recorded: count=0 (empty)"));
        assert!(text.contains("recorded: count=1"));
        assert!(!text.contains("never_recorded: count=0 mean"));
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Registry::new();
        r.counter("c.one").add(3);
        r.gauge("g\"quoted").set(-2);
        r.histogram("h").record(0);
        r.histogram("h").record(1000);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"counters\":{\"c.one\":3}"));
        assert!(json.contains("\"g\\\"quoted\":-2"));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"sum\":1000"));
        assert!(json.contains("[0,1]"), "sparse zero bucket present");
        assert!(json.contains("[10,1]"), "1000 lands in bucket 10");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::default());
        let c = std::sync::Arc::new(Counter::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (h, c) = (std::sync::Arc::clone(&h), std::sync::Arc::clone(&c));
            handles.push(std::thread::spawn(move || {
                for v in 0..10_000u64 {
                    h.record(v);
                    c.inc();
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(c.get(), 40_000);
    }
}
