//! The causal flight recorder: a bounded ring of provenance records
//! linking working-memory changes to the firings they caused.
//!
//! The paper's runtime questions — *why did this cycle stall?*, *why
//! did rule X fire?* — need the causal chain
//!
//! > WME change → node activations → token births/deaths →
//! > conflict-set insert → firing
//!
//! available **while the engine runs**, without stopping the matcher
//! or replaying a trace. The [`FlightRecorder`] keeps the most recent
//! `capacity` links of that chain in a fixed-size ring and answers
//! [`FlightRecorder::explain_firing`] / [`FlightRecorder::explain_cycle`]
//! queries from it.
//!
//! Cost discipline mirrors the rest of `psm-obs`: a recorder built
//! with capacity 0 is permanently off and every record call is a
//! single relaxed atomic load; an enabled recorder takes a short
//! mutex per record (the ring never allocates past its capacity).
//! Instrumented code must guard record construction with
//! [`FlightRecorder::enabled`] so the disabled path builds no `Vec`s.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json;

/// What one provenance record witnesses.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightKind {
    /// A working-memory change entered the match network.
    WmeChange {
        /// Raw WME id.
        wme: u32,
        /// The WME's time tag (0 if unknown at the recording site).
        time_tag: u64,
        /// Assert (`true`) or retract (`false`).
        is_add: bool,
    },
    /// A match node executed one activation.
    Activation {
        /// Network node index.
        node: u32,
        /// Activation kind label (e.g. `join-right`).
        kind: &'static str,
        /// The WME that triggered the activation (right activations)
        /// or the newest WME of the arriving token (left activations).
        wme: Option<u32>,
    },
    /// A token (partial instantiation) came into existence.
    TokenBirth {
        /// Node whose output the token is.
        node: u32,
        /// The WME ids the token binds, in CE order.
        wmes: Vec<u32>,
    },
    /// A token was retracted.
    TokenDeath {
        /// Node whose output the token was.
        node: u32,
        /// The WME ids the token bound.
        wmes: Vec<u32>,
    },
    /// An instantiation entered the conflict set.
    ConflictInsert {
        /// Production name.
        rule: String,
        /// Matched WME ids, in CE order.
        wmes: Vec<u32>,
        /// The matched WMEs' time tags, aligned with `wmes`.
        time_tags: Vec<u64>,
    },
    /// An instantiation left the conflict set (retracted, not fired).
    ConflictRemove {
        /// Production name.
        rule: String,
        /// Matched WME ids.
        wmes: Vec<u32>,
    },
    /// A production fired.
    Firing {
        /// Production name.
        rule: String,
        /// Matched WME ids, in CE order.
        wmes: Vec<u32>,
        /// The matched WMEs' time tags, aligned with `wmes`.
        time_tags: Vec<u64>,
    },
}

impl FlightKind {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            FlightKind::WmeChange { .. } => "wme-change",
            FlightKind::Activation { .. } => "activation",
            FlightKind::TokenBirth { .. } => "token-birth",
            FlightKind::TokenDeath { .. } => "token-death",
            FlightKind::ConflictInsert { .. } => "conflict-insert",
            FlightKind::ConflictRemove { .. } => "conflict-remove",
            FlightKind::Firing { .. } => "firing",
        }
    }

    /// The WME ids this record touches (empty for kinds without any).
    pub fn wmes(&self) -> &[u32] {
        match self {
            FlightKind::WmeChange { wme, .. } => std::slice::from_ref(wme),
            FlightKind::Activation { wme, .. } => {
                wme.as_ref().map(std::slice::from_ref).unwrap_or(&[])
            }
            FlightKind::TokenBirth { wmes, .. }
            | FlightKind::TokenDeath { wmes, .. }
            | FlightKind::ConflictInsert { wmes, .. }
            | FlightKind::ConflictRemove { wmes, .. }
            | FlightKind::Firing { wmes, .. } => wmes,
        }
    }
}

/// One entry of the provenance ring.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotonic sequence number (never reused, survives eviction).
    pub seq: u64,
    /// The recognize–act cycle the record belongs to (see
    /// [`FlightRecorder::set_cycle`]).
    pub cycle: u64,
    /// The witnessed event.
    pub kind: FlightKind,
}

impl FlightRecord {
    /// The record as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"cycle\":");
        out.push_str(&self.cycle.to_string());
        out.push_str(",\"kind\":");
        json::push_escaped(&mut out, self.kind.label());
        match &self.kind {
            FlightKind::WmeChange {
                wme,
                time_tag,
                is_add,
            } => {
                out.push_str(&format!(
                    ",\"wme\":{wme},\"time_tag\":{time_tag},\"is_add\":{is_add}"
                ));
            }
            FlightKind::Activation { node, kind, wme } => {
                out.push_str(&format!(",\"node\":{node},\"node_kind\":"));
                json::push_escaped(&mut out, kind);
                if let Some(w) = wme {
                    out.push_str(&format!(",\"wme\":{w}"));
                }
            }
            FlightKind::TokenBirth { node, wmes } | FlightKind::TokenDeath { node, wmes } => {
                out.push_str(&format!(",\"node\":{node},\"wmes\":{}", ids_json(wmes)));
            }
            FlightKind::ConflictRemove { rule, wmes } => {
                out.push_str(",\"rule\":");
                json::push_escaped(&mut out, rule);
                out.push_str(&format!(",\"wmes\":{}", ids_json(wmes)));
            }
            FlightKind::ConflictInsert {
                rule,
                wmes,
                time_tags,
            }
            | FlightKind::Firing {
                rule,
                wmes,
                time_tags,
            } => {
                out.push_str(",\"rule\":");
                json::push_escaped(&mut out, rule);
                out.push_str(&format!(
                    ",\"wmes\":{},\"time_tags\":{}",
                    ids_json(wmes),
                    tags_json(time_tags)
                ));
            }
        }
        out.push('}');
        out
    }
}

fn ids_json(ids: &[u32]) -> String {
    let mut out = String::from("[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
    out.push(']');
    out
}

fn tags_json(tags: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, t) in tags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_string());
    }
    out.push(']');
    out
}

/// The causal chain justifying one firing, assembled from the ring.
#[derive(Debug, Clone, Default)]
pub struct Explanation {
    /// The firing itself.
    pub firing: Option<FlightRecord>,
    /// The conflict-set insert that scheduled it.
    pub conflict_insert: Option<FlightRecord>,
    /// The WME changes among the firing's matched WMEs still in the
    /// ring.
    pub wme_changes: Vec<FlightRecord>,
    /// Node activations triggered by those WMEs.
    pub activations: Vec<FlightRecord>,
    /// Token births/deaths binding a subset of the firing's WMEs.
    pub tokens: Vec<FlightRecord>,
}

impl Explanation {
    /// The time tags that justified the firing (empty if the firing
    /// fell out of the ring).
    pub fn time_tags(&self) -> Vec<u64> {
        match &self.firing {
            Some(FlightRecord {
                kind: FlightKind::Firing { time_tags, .. },
                ..
            }) => time_tags.clone(),
            _ => Vec::new(),
        }
    }

    /// All records in causal (sequence) order.
    pub fn records(&self) -> Vec<&FlightRecord> {
        let mut all: Vec<&FlightRecord> = self
            .wme_changes
            .iter()
            .chain(self.activations.iter())
            .chain(self.tokens.iter())
            .chain(self.conflict_insert.iter())
            .chain(self.firing.iter())
            .collect();
        all.sort_by_key(|r| r.seq);
        all
    }

    /// JSON rendering: `{"found":…,"time_tags":[…],"records":[…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"found\":");
        out.push_str(if self.firing.is_some() {
            "true"
        } else {
            "false"
        });
        out.push_str(",\"time_tags\":[");
        for (i, t) in self.time_tags().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_string());
        }
        out.push_str("],\"records\":[");
        for (i, r) in self.records().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Human-readable rendering, one record per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&format!(
                "[cycle {:>4} seq {:>6}] {}\n",
                r.cycle,
                r.seq,
                r.to_json()
            ));
        }
        if self.firing.is_none() {
            out.push_str("(no matching firing in the flight ring)\n");
        }
        out
    }
}

/// Ring contents plus the per-cycle segment index used for eviction.
#[derive(Debug, Default)]
struct FlightRing {
    records: VecDeque<FlightRecord>,
    /// `(cycle, record count)` runs, oldest first. Every retained
    /// record belongs to exactly one segment; consecutive records with
    /// the same cycle stamp share one (so a non-monotonic cycle clock —
    /// e.g. two runs sharing an `Obs` — just opens a new segment).
    segments: VecDeque<(u64, usize)>,
}

/// Fixed-size, lock-light ring of [`FlightRecord`]s with **per-cycle
/// eviction**: when space is needed, the oldest *whole* cycle segment
/// is dropped (never a cycle's tail), so a cycle is either fully
/// retained or fully gone and `explain_cycle` can never return a
/// half-evicted chain on long runs. Two budgets apply: `capacity`
/// bounds retained records (memory), and `max_cycles` bounds retained
/// distinct cycles (staleness). If a single cycle alone overflows the
/// whole ring, eviction falls back to per-record within that cycle —
/// the only case a partial cycle can be observed.
///
/// Capacity 0 disables the recorder permanently: recording is a single
/// relaxed atomic load and queries return nothing.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<FlightRing>,
    capacity: usize,
    max_cycles: usize,
    seq: AtomicU64,
    cycle: AtomicU64,
    dropped: AtomicU64,
    evicted_cycles: AtomicU64,
}

/// Default bound on distinct recognize–act cycles the ring retains.
pub const DEFAULT_MAX_CYCLES: usize = 64;

impl FlightRecorder {
    /// A recorder retaining at most `capacity` records (0 = disabled)
    /// across at most [`DEFAULT_MAX_CYCLES`] distinct cycles.
    pub fn new(capacity: usize) -> Self {
        Self::with_max_cycles(capacity, DEFAULT_MAX_CYCLES)
    }

    /// A recorder retaining at most `capacity` records spanning at most
    /// `max_cycles` distinct recognize–act cycles (clamped to ≥ 1).
    pub fn with_max_cycles(capacity: usize, max_cycles: usize) -> Self {
        FlightRecorder {
            inner: Mutex::new(FlightRing {
                records: VecDeque::with_capacity(capacity.min(4096)),
                segments: VecDeque::new(),
            }),
            capacity,
            max_cycles: max_cycles.max(1),
            seq: AtomicU64::new(0),
            cycle: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted_cycles: AtomicU64::new(0),
        }
    }

    /// Whether records are being retained. Call sites must guard
    /// record construction with this so the disabled path allocates
    /// nothing.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The bound on distinct cycles retained at once.
    pub fn max_cycles(&self) -> usize {
        self.max_cycles
    }

    /// Distinct cycle segments currently retained.
    pub fn retained_cycles(&self) -> usize {
        if !self.enabled() {
            return 0;
        }
        self.inner.lock().unwrap().segments.len()
    }

    /// Whole cycle segments evicted so far (each eviction removed every
    /// record of one cycle at once).
    pub fn evicted_cycles(&self) -> u64 {
        self.evicted_cycles.load(Ordering::Relaxed)
    }

    /// Stamps subsequent records with recognize–act cycle `n`.
    pub fn set_cycle(&self, n: u64) {
        self.cycle.store(n, Ordering::Relaxed);
    }

    /// The current cycle stamp.
    pub fn cycle(&self) -> u64 {
        self.cycle.load(Ordering::Relaxed)
    }

    /// Appends one record, evicting the oldest **whole cycle** when
    /// either budget (records or distinct cycles) is exceeded; falls
    /// back to dropping single records only when one cycle alone
    /// overflows the entire ring.
    pub fn record(&self, kind: FlightKind) {
        if !self.enabled() {
            return;
        }
        let rec = FlightRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            cycle: self.cycle.load(Ordering::Relaxed),
            kind,
        };
        let mut q = self.inner.lock().unwrap();
        match q.segments.back_mut() {
            Some((c, n)) if *c == rec.cycle => *n += 1,
            _ => q.segments.push_back((rec.cycle, 1)),
        }
        q.records.push_back(rec);
        while q.segments.len() > 1
            && (q.records.len() > self.capacity || q.segments.len() > self.max_cycles)
        {
            let (_, n) = q.segments.pop_front().expect("checked non-empty");
            q.records.drain(..n);
            self.dropped.fetch_add(n as u64, Ordering::Relaxed);
            self.evicted_cycles.fetch_add(1, Ordering::Relaxed);
        }
        while q.records.len() > self.capacity {
            q.records.pop_front();
            q.segments.front_mut().expect("records imply a segment").1 -= 1;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        if !self.enabled() {
            return 0;
        }
        self.inner.lock().unwrap().records.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A snapshot of the retained records, oldest first.
    pub fn records(&self) -> Vec<FlightRecord> {
        if !self.enabled() {
            return Vec::new();
        }
        self.inner.lock().unwrap().records.iter().cloned().collect()
    }

    /// All retained records of recognize–act cycle `n`.
    pub fn explain_cycle(&self, n: u64) -> Vec<FlightRecord> {
        self.records()
            .into_iter()
            .filter(|r| r.cycle == n)
            .collect()
    }

    /// Reconstructs the causal chain behind the `instance`-th retained
    /// firing of `rule` (0-based, oldest first). Returns a default
    /// (empty) [`Explanation`] if no such firing is in the ring.
    ///
    /// The chain is assembled by WME overlap: WME changes for the
    /// firing's matched ids, activations those WMEs triggered, and
    /// token births/deaths binding a subset of the matched ids — all
    /// at sequence numbers up to the firing's.
    pub fn explain_firing(&self, rule: &str, instance: usize) -> Explanation {
        let records = self.records();
        let firing = records
            .iter()
            .filter(|r| matches!(&r.kind, FlightKind::Firing { rule: rl, .. } if rl == rule))
            .nth(instance)
            .cloned();
        let Some(firing) = firing else {
            return Explanation::default();
        };
        let fired_wmes: Vec<u32> = firing.kind.wmes().to_vec();
        let subset = |ws: &[u32]| !ws.is_empty() && ws.iter().all(|w| fired_wmes.contains(w));
        let mut ex = Explanation {
            firing: Some(firing.clone()),
            ..Explanation::default()
        };
        for r in records.iter().filter(|r| r.seq <= firing.seq) {
            match &r.kind {
                FlightKind::WmeChange { wme, .. } if fired_wmes.contains(wme) => {
                    ex.wme_changes.push(r.clone());
                }
                FlightKind::Activation { wme: Some(w), .. } if fired_wmes.contains(w) => {
                    ex.activations.push(r.clone());
                }
                FlightKind::TokenBirth { wmes, .. } | FlightKind::TokenDeath { wmes, .. }
                    if subset(wmes) =>
                {
                    ex.tokens.push(r.clone());
                }
                FlightKind::ConflictInsert { rule: rl, wmes, .. }
                    if rl == rule && *wmes == fired_wmes =>
                {
                    // The latest insert at or before the firing wins.
                    ex.conflict_insert = Some(r.clone());
                }
                _ => {}
            }
        }
        ex
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn firing(rule: &str, wmes: Vec<u32>, tags: Vec<u64>) -> FlightKind {
        FlightKind::Firing {
            rule: rule.into(),
            wmes,
            time_tags: tags,
        }
    }

    #[test]
    fn zero_capacity_is_permanently_off() {
        let fr = FlightRecorder::new(0);
        assert!(!fr.enabled());
        fr.record(firing("r", vec![1], vec![1]));
        assert!(fr.is_empty());
        assert!(fr.explain_firing("r", 0).firing.is_none());
        assert!(fr.explain_cycle(0).is_empty());
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let fr = FlightRecorder::new(2);
        for i in 0..5u32 {
            fr.record(FlightKind::WmeChange {
                wme: i,
                time_tag: i as u64,
                is_add: true,
            });
        }
        assert_eq!(fr.len(), 2);
        assert_eq!(fr.dropped(), 3);
        let recs = fr.records();
        assert_eq!(recs[0].kind.wmes(), &[3]);
        assert_eq!(recs[1].seq, 4);
        // All five records shared cycle 0: the per-record fallback ran,
        // no whole-cycle eviction happened.
        assert_eq!(fr.retained_cycles(), 1);
        assert_eq!(fr.evicted_cycles(), 0);
    }

    fn change(wme: u32) -> FlightKind {
        FlightKind::WmeChange {
            wme,
            time_tag: wme as u64,
            is_add: true,
        }
    }

    #[test]
    fn eviction_drops_whole_cycles_never_tails() {
        let fr = FlightRecorder::new(10);
        for cycle in 1..=3u64 {
            fr.set_cycle(cycle);
            for i in 0..4 {
                fr.record(change((cycle * 10 + i) as u32));
            }
        }
        // 12 records over capacity 10: the whole of cycle 1 went, not
        // just its two oldest records.
        assert_eq!(fr.len(), 8);
        assert_eq!(fr.dropped(), 4);
        assert_eq!(fr.evicted_cycles(), 1);
        assert_eq!(fr.retained_cycles(), 2);
        assert!(fr.explain_cycle(1).is_empty(), "cycle 1 fully evicted");
        assert_eq!(fr.explain_cycle(2).len(), 4, "cycle 2 fully retained");
        assert_eq!(fr.explain_cycle(3).len(), 4);
    }

    #[test]
    fn max_cycles_bounds_staleness() {
        let fr = FlightRecorder::with_max_cycles(1000, 2);
        assert_eq!(fr.max_cycles(), 2);
        for cycle in 1..=5u64 {
            fr.set_cycle(cycle);
            fr.record(change(cycle as u32));
            fr.record(change(cycle as u32 + 100));
        }
        // Plenty of record capacity, but only the last 2 cycles stay.
        assert_eq!(fr.retained_cycles(), 2);
        assert_eq!(fr.evicted_cycles(), 3);
        assert!(fr.explain_cycle(3).is_empty());
        assert_eq!(fr.explain_cycle(4).len(), 2);
        assert_eq!(fr.explain_cycle(5).len(), 2);
    }

    #[test]
    fn non_monotonic_cycles_open_fresh_segments() {
        // Two runs sharing one recorder restart the cycle clock; the
        // second run's cycle 1 must not merge into the first run's.
        let fr = FlightRecorder::new(100);
        fr.set_cycle(1);
        fr.record(change(1));
        fr.set_cycle(2);
        fr.record(change(2));
        fr.set_cycle(1);
        fr.record(change(3));
        assert_eq!(fr.retained_cycles(), 3, "cycle 1 appears as two runs");
        assert_eq!(fr.explain_cycle(1).len(), 2, "queries still see both");
    }

    #[test]
    fn explain_firing_assembles_causal_chain() {
        let fr = FlightRecorder::new(64);
        fr.set_cycle(7);
        fr.record(FlightKind::WmeChange {
            wme: 10,
            time_tag: 3,
            is_add: true,
        });
        fr.record(FlightKind::WmeChange {
            wme: 99,
            time_tag: 4,
            is_add: true,
        }); // unrelated
        fr.record(FlightKind::Activation {
            node: 5,
            kind: "join-right",
            wme: Some(10),
        });
        fr.record(FlightKind::TokenBirth {
            node: 5,
            wmes: vec![10, 11],
        }); // 11 not matched -> excluded
        fr.record(FlightKind::TokenBirth {
            node: 6,
            wmes: vec![10],
        });
        fr.record(FlightKind::ConflictInsert {
            rule: "r".into(),
            wmes: vec![10],
            time_tags: vec![3],
        });
        fr.set_cycle(8);
        fr.record(firing("r", vec![10], vec![3]));

        let ex = fr.explain_firing("r", 0);
        assert_eq!(ex.time_tags(), vec![3]);
        assert_eq!(ex.wme_changes.len(), 1);
        assert_eq!(ex.activations.len(), 1);
        assert_eq!(ex.tokens.len(), 1, "superset token excluded");
        assert!(ex.conflict_insert.is_some());
        let order: Vec<u64> = ex.records().iter().map(|r| r.seq).collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]));
        assert!(ex.to_json().contains("\"found\":true"));
        assert!(ex.to_text().contains("firing"));

        // Second instance does not exist.
        assert!(fr.explain_firing("r", 1).firing.is_none());
        assert!(fr.explain_firing("other", 0).firing.is_none());
        // Cycle query separates the firing from its match work.
        assert_eq!(fr.explain_cycle(8).len(), 1);
        assert_eq!(fr.explain_cycle(7).len(), 6);
    }

    #[test]
    fn record_json_shapes() {
        let r = FlightRecord {
            seq: 1,
            cycle: 2,
            kind: FlightKind::ConflictInsert {
                rule: "a\"b".into(),
                wmes: vec![1, 2],
                time_tags: vec![5, 6],
            },
        };
        let j = r.to_json();
        assert!(j.contains("\"rule\":\"a\\\"b\""));
        assert!(j.contains("\"wmes\":[1,2]"));
        assert!(j.contains("\"time_tags\":[5,6]"));
        let act = FlightRecord {
            seq: 0,
            cycle: 0,
            kind: FlightKind::Activation {
                node: 3,
                kind: "join-left",
                wme: None,
            },
        };
        assert!(!act.to_json().contains("\"wme\""));
    }
}
