//! Minimal JSON emission helpers shared by the JSONL and Chrome-trace
//! exporters. Emission only — the crate never parses JSON.

/// Appends `s` to `out` as a JSON string literal (with quotes),
/// escaping per RFC 8259.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a standalone JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_escaped(&mut out, s);
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Inf; both are
/// mapped to 0).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("plain"), "\"plain\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.5), "3.5");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
    }
}
