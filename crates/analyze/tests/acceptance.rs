//! Acceptance gates for the static analyzer, mirroring the CI checks:
//!
//! 1. every seeded-defect fixture triggers its expected lint code;
//! 2. the shipped workload presets produce zero error-severity
//!    diagnostics;
//! 3. the cost model's predicted state respects the §3.2 ordering
//!    (TREAT ≤ Rete ≤ Oflazer) on every preset;
//! 4. predicted per-production activation shares are within a factor of
//!    two of measured shares on the real blocks-world program.

use psm_analyze::{analyze_cost, crosscheck_blocks, lint_program, Severity};
use rete::Network;
use workloads::{GeneratedWorkload, Preset};

#[test]
fn every_fixture_triggers_its_expected_code() {
    for fx in workloads::fixtures::all() {
        let program = (fx.build)();
        let diagnostics = lint_program(&program);
        assert!(
            diagnostics.iter().any(|d| d.code == fx.expected_code),
            "fixture {} expected {} but got {:?}",
            fx.name,
            fx.expected_code,
            diagnostics.iter().map(|d| d.code).collect::<Vec<_>>()
        );
    }
}

#[test]
fn presets_are_free_of_error_severity_diagnostics() {
    for preset in Preset::all() {
        let w = GeneratedWorkload::generate(preset.spec_small()).expect("preset generates");
        let errors: Vec<_> = lint_program(&w.program)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "preset {} has error diagnostics: {:?}",
            preset.name(),
            errors.iter().map(|d| d.render()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn state_spectrum_ordering_holds_on_every_preset() {
    for preset in Preset::all() {
        let w = GeneratedWorkload::generate(preset.spec_small()).expect("preset generates");
        let network = Network::compile(&w.program).expect("preset compiles");
        let params = psm_analyze::params_from_spec(&w.spec, &w.program);
        let report = analyze_cost(&w.program, &network, &params);
        assert!(
            report.network_state.ordered(),
            "preset {}: {:?}",
            preset.name(),
            report.network_state
        );
        for p in &report.productions {
            assert!(
                p.state.ordered(),
                "{}/{}: {:?}",
                preset.name(),
                p.name,
                p.state
            );
        }
    }
}

#[test]
fn blocks_world_shares_predicted_within_factor_two() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let src = std::fs::read_to_string(format!("{root}/assets/blocks.ops"))
        .expect("assets/blocks.ops present");
    let wm = std::fs::read_to_string(format!("{root}/assets/blocks.wm"))
        .expect("assets/blocks.wm present");
    let report = crosscheck_blocks(&src, &wm).expect("blocks runs");
    assert!(
        report.within_factor(2.0),
        "max prediction error factor {} (shares {:?})",
        report.max_error_factor(),
        report
            .shares
            .iter()
            .map(|s| (s.production.as_str(), s.predicted, s.measured))
            .collect::<Vec<_>>()
    );
}
