//! Acceptance gates for the interference analysis and the runtime
//! write-set sanitizer, mirroring the CI `interference-smoke` job:
//!
//! 1. **Property**: on legal runs the sanitizer never fires — every
//!    actual WME touch of every firing falls inside the production's
//!    static write set, across all six acting presets (deterministic
//!    Rng64 seeds);
//! 2. **Detection**: a touch outside the static write set *is* caught
//!    (the property test would pass vacuously if the sanitizer were
//!    inert);
//! 3. **Golden lints**: each seeded-defect fixture for PSM011–PSM015
//!    triggers exactly its expected warning on the expected production.

use std::sync::Arc;

use ops5::effects::WriteSanitizer;
use ops5::{parse_program, parse_wme, ProductionId};
use psm_analyze::{analyze_interference, lint_program, sanitizer_crosscheck, Severity};
use workloads::Preset;

#[test]
fn sanitizer_never_fires_on_legal_runs_across_all_presets() {
    let mut total_firings = 0;
    for preset in Preset::all() {
        let spec = preset.spec_acting();
        let outcome = sanitizer_crosscheck(spec, 30).expect("crosscheck runs");
        assert!(
            outcome.violations.is_empty(),
            "{}: sanitizer violations on a legal run: {:?}",
            preset.name(),
            outcome.violations
        );
        assert!(
            outcome.firings == 0 || outcome.checks > 0,
            "{}: {} firings but zero sanitizer checks",
            preset.name(),
            outcome.firings
        );
        total_firings += outcome.firings;
    }
    assert!(
        total_firings > 0,
        "the acting presets must produce real firings to exercise the sanitizer"
    );
}

#[test]
fn sanitizer_detects_touches_outside_the_static_write_set() {
    let mut program =
        parse_program("(p writer (a ^x 1) --> (make out ^x 2))").expect("program parses");
    let rogue = parse_wme("(other ^x 2)", &mut program.symbols).expect("wme parses");
    let legal = parse_wme("(out ^x 2)", &mut program.symbols).expect("wme parses");
    let a = program.symbols.lookup("a").expect("interned");
    let sanitizer = Arc::new(WriteSanitizer::new(&program));

    sanitizer.begin_firing(ProductionId(0));
    assert!(sanitizer.check_add(ProductionId(0), &legal));
    assert!(
        !sanitizer.check_add(ProductionId(0), &rogue),
        "an add outside the write set must be flagged"
    );
    assert!(
        !sanitizer.check_remove(ProductionId(0), a),
        "the rule removes nothing; any remove must be flagged"
    );
    sanitizer.end_firing();

    assert!(!sanitizer.is_clean());
    assert_eq!(sanitizer.violation_count(), 2);
    let violations = sanitizer.violations();
    assert_eq!(violations.len(), 2);
    assert!(violations.iter().all(|v| v.production == "writer"));
}

#[test]
fn interference_fixture_lints_fire_on_the_expected_production() {
    // (expected code, fixture name, production the warning must name)
    let golden = [
        ("PSM011", "conflicting-writers", "racer-two"),
        ("PSM012", "self-retrigger", "spinner"),
        ("PSM013", "dead-rule", "dead-consumer"),
        ("PSM014", "shadowed-rule", "broad-shadowed"),
        ("PSM015", "negated-retract", "sweeper"),
    ];
    let fixtures = workloads::fixtures::all();
    for (code, name, production) in golden {
        let fx = fixtures
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("fixture {name} missing"));
        assert_eq!(fx.expected_code, code);
        let diagnostics = lint_program(&(fx.build)());
        let hit = diagnostics
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("{name} did not trigger {code}: {diagnostics:?}"));
        assert_eq!(hit.severity, Severity::Warning, "{code} must be a warning");
        assert_eq!(
            hit.production, production,
            "{code} must fire on `{production}`"
        );
    }
}

#[test]
fn acting_presets_have_nontrivial_compatibility() {
    // The acting variants carry real RHS effects, so some pairs must
    // interfere — and the skewed class distribution still leaves most
    // pairs compatible (the paper's act-phase parallelism argument).
    for preset in Preset::all() {
        let w =
            workloads::GeneratedWorkload::generate(preset.spec_acting()).expect("preset generates");
        let analysis = analyze_interference(&w.program);
        let density = analysis.density();
        assert!(
            !analysis.pairs.is_empty(),
            "{}: acting preset should have interfering pairs",
            preset.name()
        );
        assert!(
            (0.5..1.0).contains(&density),
            "{}: density {density} outside the expected band",
            preset.name()
        );
        // The matrix agrees with the pair list.
        let m = analysis.compatibility_matrix();
        let p = analysis.pairs[0];
        assert!(!m[p.a][p.b] && !m[p.b][p.a]);
    }
}
