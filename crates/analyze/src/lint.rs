//! Semantic lints over the OPS5 AST.
//!
//! Each lint has a stable code (`PSM001`–`PSM015`), a severity, and a
//! human-readable message. Severities are calibrated so that *hard*
//! defects — rules that can never behave as written — are errors, while
//! structural suspicions that legitimately arise in generated rule sets
//! (duplicate left-hand sides, never-fireable negation patterns) are
//! warnings: the CI gate fails on errors only.
//!
//! | code | severity | defect |
//! |---|---|---|
//! | PSM001 | error | RHS reads a variable no positive CE binds |
//! | PSM002 | error | predicate operand variable has no earlier binding |
//! | PSM003 | error | contradictory tests within a positive CE |
//! | PSM004 | error | cross-CE join pins a variable to two constants |
//! | PSM005 | warning | negated CE can never match (dead negation) |
//! | PSM006 | warning | negation implied by an earlier CE (never fires) |
//! | PSM007 | warning | duplicate left-hand side (shadowed production) |
//! | PSM008 | info | LHS is a prefix of another production's LHS |
//! | PSM009 | info | variable bound but never used |
//! | PSM010 | error | attribute not declared by the class's `literalize` |
//! | PSM011 | warning | write sets always conflict at identical specificity |
//! | PSM012 | warning | RHS write can re-trigger the rule's own LHS (loop risk) |
//! | PSM013 | warning | read set unsatisfiable by any RHS write (dead rule) |
//! | PSM014 | warning | LHS subsumed by a strictly more specific sibling |
//! | PSM015 | warning | remove/modify overlaps a CE the same rule negates |
//!
//! PSM010 mirrors the strict parser's `literalize` validation so that
//! `psmlint` (which parses leniently) can report *all* undeclared
//! attributes as ordinary diagnostics instead of stopping at the first.
//! PSM011–PSM015 are derived from the interference footprints of
//! [`crate::interference`] — static read/write sets with conservative
//! widening — and are warnings: widening means overlap is *possible*,
//! not certain.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use ops5::{
    Action, ConditionElement, PredOp, Production, Program, SymbolId, TestArg, Value, ValueTest,
    VarId,
};

/// How bad a diagnostic is. The CI gate fails on [`Severity::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational.
    Info,
    /// Suspicious but possibly intended.
    Warning,
    /// The rule cannot behave as written.
    Error,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`PSM001`…).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Name of the production the finding is in.
    pub production: String,
    /// Condition element the finding points at (0-based, full-CE index).
    pub ce: Option<usize>,
    /// Human-readable description with symbol names resolved.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic in compiler style:
    /// `error[PSM003] production `x`, CE 2: …`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}] production `{}`",
            self.severity.label(),
            self.code,
            self.production
        );
        if let Some(ce) = self.ce {
            let _ = write!(out, ", CE {}", ce + 1);
        }
        let _ = write!(out, ": {}", self.message);
        out
    }

    /// Renders the diagnostic as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"code\":");
        psm_obs::json::push_escaped(&mut out, self.code);
        out.push_str(",\"severity\":");
        psm_obs::json::push_escaped(&mut out, self.severity.label());
        out.push_str(",\"production\":");
        psm_obs::json::push_escaped(&mut out, &self.production);
        out.push_str(",\"ce\":");
        match self.ce {
            Some(ce) => {
                let _ = write!(out, "{ce}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"message\":");
        psm_obs::json::push_escaped(&mut out, &self.message);
        out.push('}');
        out
    }
}

/// `(code, severity, one-line description)` for every lint, in code
/// order — the table rendered in README.md.
pub const LINT_CODES: [(&str, Severity, &str); 15] = [
    (
        "PSM001",
        Severity::Error,
        "RHS reads a variable no positive CE binds",
    ),
    (
        "PSM002",
        Severity::Error,
        "predicate operand variable has no earlier binding occurrence",
    ),
    (
        "PSM003",
        Severity::Error,
        "contradictory tests within a positive condition element",
    ),
    (
        "PSM004",
        Severity::Error,
        "cross-CE join pins a variable to two different constants",
    ),
    (
        "PSM005",
        Severity::Warning,
        "negated condition element can never match (dead negation)",
    ),
    (
        "PSM006",
        Severity::Warning,
        "negated CE implied by an earlier positive CE (production never fires)",
    ),
    (
        "PSM007",
        Severity::Warning,
        "duplicate left-hand side (shadowed production)",
    ),
    (
        "PSM008",
        Severity::Info,
        "LHS is a proper prefix of another production's LHS (subsumption)",
    ),
    ("PSM009", Severity::Info, "variable bound but never used"),
    (
        "PSM010",
        Severity::Error,
        "attribute not declared by the class's `literalize`",
    ),
    (
        "PSM011",
        Severity::Warning,
        "write sets always conflict at identical specificity (order-dependent outcome)",
    ),
    (
        "PSM012",
        Severity::Warning,
        "RHS write can re-trigger the rule's own LHS (static loop risk)",
    ),
    (
        "PSM013",
        Severity::Warning,
        "read set unsatisfiable by any RHS write in the program (dead rule)",
    ),
    (
        "PSM014",
        Severity::Warning,
        "LHS subsumed by a strictly more specific sibling (shadowed rule)",
    ),
    (
        "PSM015",
        Severity::Warning,
        "remove/modify overlaps a CE the same rule negates",
    ),
];

/// Runs every lint over `program`, returning findings ordered by
/// production and then by code.
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for production in &program.productions {
        lint_unbound_rhs(production, &mut diags);
        lint_unbound_predicates(production, &mut diags);
        lint_ce_satisfiability(program, production, &mut diags);
        lint_join_satisfiability(program, production, &mut diags);
        lint_implied_negation(production, &mut diags);
        lint_unused_variables(production, &mut diags);
        lint_literalizations(program, production, &mut diags);
    }
    lint_duplicate_and_subsumed(program, &mut diags);
    crate::interference::lint_interference(program, &mut diags);
    diags.sort_by(|a, b| (&a.production, a.code).cmp(&(&b.production, b.code)));
    diags
}

/// True when `diags` contains no error-severity finding — the CI gate.
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| d.severity != Severity::Error)
}

fn var_name(p: &Production, v: VarId) -> String {
    p.variables
        .get(v.index())
        .cloned()
        .unwrap_or_else(|| format!("{v}"))
}

/// PSM001: every variable an action reads must be bound by a positive CE
/// or by an earlier `bind` on the same RHS.
fn lint_unbound_rhs(p: &Production, diags: &mut Vec<Diagnostic>) {
    let mut bound: HashSet<VarId> = (0..p.variables.len())
        .map(|i| VarId(i as u16))
        .filter(|v| p.binding_sites.get(v.index()).is_some_and(Option::is_some))
        .collect();
    for action in &p.actions {
        let mut unbound = Vec::new();
        action.for_each_read_var(&mut |v| {
            if !bound.contains(&v) {
                unbound.push(v);
            }
        });
        for v in unbound {
            diags.push(Diagnostic {
                code: "PSM001",
                severity: Severity::Error,
                production: p.name.clone(),
                ce: None,
                message: format!(
                    "action reads variable <{}>, which no positive condition element binds",
                    var_name(p, v)
                ),
            });
        }
        if let ops5::Action::Bind { var, .. } = action {
            bound.insert(*var);
        }
    }
}

/// PSM002: the static version of the check `rete::Network::compile`
/// enforces — predicate operands must have an earlier binding occurrence.
fn lint_unbound_predicates(p: &Production, diags: &mut Vec<Diagnostic>) {
    let mut outer: HashSet<VarId> = HashSet::new();
    for (ce_index, ce) in p.ces.iter().enumerate() {
        let mut local: HashSet<VarId> = HashSet::new();
        ce.for_each_primitive_test(&mut |_, test| match test {
            ValueTest::Var(v) if !outer.contains(v) => {
                local.insert(*v);
            }
            ValueTest::Pred(op, TestArg::Var(v)) if !outer.contains(v) && !local.contains(v) => {
                diags.push(Diagnostic {
                    code: "PSM002",
                    severity: Severity::Error,
                    production: p.name.clone(),
                    ce: Some(ce_index),
                    message: format!(
                        "predicate `{op}` reads variable <{}> before any binding occurrence",
                        var_name(p, *v)
                    ),
                });
            }
            _ => {}
        });
        if !ce.negated {
            outer.extend(local);
        }
    }
}

/// Per-attribute constraint set accumulated from one CE's primitives.
#[derive(Default)]
struct AttrConstraints {
    /// Equality-with-constant requirements.
    eqs: Vec<Value>,
    /// `<>` exclusions.
    nes: Vec<Value>,
    /// `<< … >>` membership sets (each must hold).
    disjs: Vec<Vec<Value>>,
    /// Integer lower bound (inclusive), from `>` / `>=`.
    lo: Option<i64>,
    /// Integer upper bound (inclusive), from `<` / `<=`.
    hi: Option<i64>,
}

impl AttrConstraints {
    fn add(&mut self, test: &ValueTest) {
        match test {
            ValueTest::Const(v) => self.eqs.push(*v),
            ValueTest::Pred(op, TestArg::Const(v)) => match (op, v) {
                (PredOp::Eq, _) => self.eqs.push(*v),
                (PredOp::Ne, _) => self.nes.push(*v),
                (PredOp::Gt, Value::Int(k)) => tighten_lo(&mut self.lo, k + 1),
                (PredOp::Ge, Value::Int(k)) => tighten_lo(&mut self.lo, *k),
                (PredOp::Lt, Value::Int(k)) => tighten_hi(&mut self.hi, k - 1),
                (PredOp::Le, Value::Int(k)) => tighten_hi(&mut self.hi, *k),
                _ => {}
            },
            ValueTest::Disj(values) => self.disjs.push(values.clone()),
            // Variable tests constrain joins, not this attribute alone;
            // `SameType` and variable predicates are not tracked.
            _ => {}
        }
    }

    /// True when no single value can satisfy every recorded constraint.
    fn contradictory(&self) -> bool {
        if let (Some(lo), Some(hi)) = (self.lo, self.hi) {
            if lo > hi {
                return true;
            }
        }
        if let Some(&first) = self.eqs.first() {
            if self.eqs.iter().any(|&v| v != first) {
                return true;
            }
            return !self.admits(first);
        }
        // No equality pin: a non-empty disjunction intersection must
        // contain at least one admissible value.
        if let Some(first) = self.disjs.first() {
            return !first.iter().any(|&v| self.admits(v));
        }
        false
    }

    /// True when the single value `v` satisfies the ne/disj/bound
    /// constraints.
    fn admits(&self, v: Value) -> bool {
        if self.nes.contains(&v) {
            return false;
        }
        if !self.disjs.iter().all(|set| set.contains(&v)) {
            return false;
        }
        if let Value::Int(k) = v {
            if self.lo.is_some_and(|lo| k < lo) || self.hi.is_some_and(|hi| k > hi) {
                return false;
            }
        } else if self.lo.is_some() || self.hi.is_some() {
            // Numeric bound on a symbolic constant never holds.
            return false;
        }
        true
    }

    /// The constant this attribute is pinned to, when the constraints
    /// admit exactly one known value.
    fn pinned(&self) -> Option<Value> {
        let mut eqs = self.eqs.clone();
        eqs.dedup();
        match eqs.as_slice() {
            [v] if self.admits(*v) => Some(*v),
            _ => None,
        }
    }
}

fn tighten_lo(lo: &mut Option<i64>, candidate: i64) {
    *lo = Some(lo.map_or(candidate, |v| v.max(candidate)));
}

fn tighten_hi(hi: &mut Option<i64>, candidate: i64) {
    *hi = Some(hi.map_or(candidate, |v| v.min(candidate)));
}

fn ce_constraints(ce: &ConditionElement) -> HashMap<SymbolId, AttrConstraints> {
    let mut by_attr: HashMap<SymbolId, AttrConstraints> = HashMap::new();
    ce.for_each_primitive_test(&mut |attr, test| {
        by_attr.entry(attr).or_default().add(test);
    });
    by_attr
}

/// PSM003 (positive CEs) / PSM005 (negated CEs): a CE whose per-attribute
/// constraints exclude every value can never match. In a positive CE the
/// production is dead; in a negated CE the negation is a no-op.
fn lint_ce_satisfiability(program: &Program, p: &Production, diags: &mut Vec<Diagnostic>) {
    for (ce_index, ce) in p.ces.iter().enumerate() {
        let mut by_attr: Vec<_> = ce_constraints(ce).into_iter().collect();
        by_attr.sort_by_key(|(attr, _)| attr.index());
        for (attr, cons) in by_attr {
            if cons.contradictory() {
                let attr_name = program.symbols.name(attr);
                let (code, severity, what) = if ce.negated {
                    (
                        "PSM005",
                        Severity::Warning,
                        "the negation can never match and is dead",
                    )
                } else {
                    ("PSM003", Severity::Error, "the production can never fire")
                };
                diags.push(Diagnostic {
                    code,
                    severity,
                    production: p.name.clone(),
                    ce: Some(ce_index),
                    message: format!("tests on ^{attr_name} are contradictory; {what}"),
                });
            }
        }
    }
}

/// PSM004: a variable pinned to one constant in one positive CE and to a
/// different constant in another can never join.
fn lint_join_satisfiability(program: &Program, p: &Production, diags: &mut Vec<Diagnostic>) {
    // var -> (ce index, pinned value)
    let mut pins: HashMap<VarId, (usize, Value)> = HashMap::new();
    for (ce_index, ce) in p.ces.iter().enumerate() {
        if ce.negated {
            continue;
        }
        let constraints = ce_constraints(ce);
        // A variable occurrence at an attribute pinned to a constant
        // forces the variable to that constant.
        ce.for_each_primitive_test(&mut |attr, test| {
            let ValueTest::Var(v) = test else { return };
            let Some(pin) = constraints.get(&attr).and_then(AttrConstraints::pinned) else {
                return;
            };
            match pins.get(v) {
                Some(&(first_ce, first_pin)) if first_pin != pin => {
                    diags.push(Diagnostic {
                        code: "PSM004",
                        severity: Severity::Error,
                        production: p.name.clone(),
                        ce: Some(ce_index),
                        message: format!(
                            "variable <{}> is pinned to {} here but to {} in CE {}; the join can never succeed",
                            var_name(p, *v),
                            pin.display(&program.symbols),
                            first_pin.display(&program.symbols),
                            first_ce + 1,
                        ),
                    });
                }
                Some(_) => {}
                None => {
                    pins.insert(*v, (ce_index, pin));
                }
            }
        });
    }
}

/// PSM006: a negated CE whose every test is guaranteed by an earlier
/// positive CE of the same class. The WME matching that positive CE also
/// matches the negated pattern, so the negation count is never zero and
/// the production can never fire.
fn lint_implied_negation(p: &Production, diags: &mut Vec<Diagnostic>) {
    // Variables bound by positive CEs before each position.
    let mut outer: HashSet<VarId> = HashSet::new();
    let mut bound_before: Vec<HashSet<VarId>> = Vec::with_capacity(p.ces.len());
    for ce in &p.ces {
        bound_before.push(outer.clone());
        if !ce.negated {
            ce.for_each_primitive_test(&mut |_, t| {
                if let ValueTest::Var(v) = t {
                    outer.insert(*v);
                }
            });
        }
    }

    for (neg_index, neg) in p.ces.iter().enumerate() {
        if !neg.negated {
            continue;
        }
        let implied_by = p.ces[..neg_index].iter().enumerate().find(|(_, pos)| {
            !pos.negated && pos.class == neg.class && ce_implies(pos, neg, &bound_before[neg_index])
        });
        if let Some((pos_index, _)) = implied_by {
            diags.push(Diagnostic {
                code: "PSM006",
                severity: Severity::Warning,
                production: p.name.clone(),
                ce: Some(neg_index),
                message: format!(
                    "negated CE is implied by positive CE {}; the production can never fire",
                    pos_index + 1
                ),
            });
        }
    }
}

/// True when any WME matching `pos` (inside a token that bound the outer
/// variables through it) also satisfies every test of `neg`.
fn ce_implies(pos: &ConditionElement, neg: &ConditionElement, outer: &HashSet<VarId>) -> bool {
    let mut pos_tests: Vec<(SymbolId, ValueTest)> = Vec::new();
    pos.for_each_primitive_test(&mut |attr, t| pos_tests.push((attr, t.clone())));
    let mut implied = true;
    neg.for_each_primitive_test(&mut |attr, t| {
        if !implied {
            return;
        }
        implied = match t {
            // A variable local to the negated CE only requires the
            // attribute to be present, which any test on it guarantees.
            ValueTest::Var(v) if !outer.contains(v) => pos_tests.iter().any(|(a, _)| *a == attr),
            // Everything else must appear verbatim in the positive CE:
            // same attribute, same test (same variable identity).
            other => pos_tests.iter().any(|(a, pt)| *a == attr && pt == other),
        };
    });
    implied
}

/// PSM009: a variable with a single LHS occurrence and no RHS read binds
/// a value nothing consumes.
fn lint_unused_variables(p: &Production, diags: &mut Vec<Diagnostic>) {
    let mut lhs_counts = vec![0usize; p.variables.len()];
    p.for_each_lhs_var(&mut |_, _, v| {
        if let Some(c) = lhs_counts.get_mut(v.index()) {
            *c += 1;
        }
    });
    let mut rhs_read = vec![false; p.variables.len()];
    p.for_each_rhs_read_var(&mut |v| {
        if let Some(r) = rhs_read.get_mut(v.index()) {
            *r = true;
        }
    });
    for (i, &count) in lhs_counts.iter().enumerate() {
        if count == 1 && !rhs_read[i] {
            diags.push(Diagnostic {
                code: "PSM009",
                severity: Severity::Info,
                production: p.name.clone(),
                ce: None,
                message: format!(
                    "variable <{}> is bound but never used; a plain attribute test would do",
                    p.variables[i]
                ),
            });
        }
    }
}

/// Canonical text of a production's LHS with variables α-renamed in
/// first-occurrence order — equal strings mean structurally identical
/// condition lists.
fn canonical_ces(p: &Production) -> Vec<String> {
    let mut rename: HashMap<VarId, usize> = HashMap::new();
    p.ces
        .iter()
        .map(|ce| {
            let mut out = format!("{}{}", if ce.negated { "-" } else { "+" }, ce.class.index());
            for (attr, test) in &ce.tests {
                let _ = write!(out, " ^{}", attr.index());
                canonical_test(test, &mut rename, &mut out);
            }
            out
        })
        .collect()
}

fn canonical_test(test: &ValueTest, rename: &mut HashMap<VarId, usize>, out: &mut String) {
    let var = |v: VarId, rename: &mut HashMap<VarId, usize>| {
        let next = rename.len();
        *rename.entry(v).or_insert(next)
    };
    match test {
        ValueTest::Const(v) => {
            let _ = write!(out, " {v:?}");
        }
        ValueTest::Var(v) => {
            let _ = write!(out, " ?{}", var(*v, rename));
        }
        ValueTest::Pred(op, TestArg::Const(v)) => {
            let _ = write!(out, " {op}{v:?}");
        }
        ValueTest::Pred(op, TestArg::Var(v)) => {
            let _ = write!(out, " {op}?{}", var(*v, rename));
        }
        ValueTest::Disj(values) => {
            let _ = write!(out, " <<{values:?}>>");
        }
        ValueTest::Conj(tests) => {
            out.push_str(" {");
            for t in tests {
                canonical_test(t, rename, out);
            }
            out.push('}');
        }
    }
}

/// PSM007 + PSM008: duplicate LHS detection (same canonical CE list) and
/// prefix subsumption (one production's canonical CE list is a proper
/// prefix of another's, so the shorter fires whenever the longer's
/// prefix matches). Hashing keeps both passes linear in program size.
fn lint_duplicate_and_subsumed(program: &Program, diags: &mut Vec<Diagnostic>) {
    let canon: Vec<Vec<String>> = program.productions.iter().map(canonical_ces).collect();
    let mut by_full: HashMap<String, usize> = HashMap::new();
    for (i, ces) in canon.iter().enumerate() {
        let key = ces.join("\n");
        match by_full.get(&key) {
            Some(&first) => diags.push(Diagnostic {
                code: "PSM007",
                severity: Severity::Warning,
                production: program.productions[i].name.clone(),
                ce: None,
                message: format!(
                    "left-hand side is identical to production `{}`; both always fire together",
                    program.productions[first].name
                ),
            }),
            None => {
                by_full.insert(key, i);
            }
        }
    }
    for (i, ces) in canon.iter().enumerate() {
        for prefix_len in 1..ces.len() {
            let key = ces[..prefix_len].join("\n");
            if let Some(&other) = by_full.get(&key) {
                if other != i {
                    diags.push(Diagnostic {
                        code: "PSM008",
                        severity: Severity::Info,
                        production: program.productions[other].name.clone(),
                        ce: None,
                        message: format!(
                            "LHS is a prefix of production `{}`'s; it subsumes (fires whenever) that production",
                            program.productions[i].name
                        ),
                    });
                }
            }
        }
    }
}

/// PSM010: every attribute a production touches — CE tests, `make`
/// attributes, `modify` attributes — must be declared by the class's
/// `literalize` form. Only classes *with* a literalization are checked
/// (a program with no `literalize` forms opts out, matching OPS5 and
/// the strict parser). The strict parser rejects the first violation;
/// this lint reports them all, via the lenient parse path.
fn lint_literalizations(program: &Program, p: &Production, diags: &mut Vec<Diagnostic>) {
    if program.literalizations.is_empty() {
        return;
    }
    let mut push = |ce: Option<usize>, class: SymbolId, attr: SymbolId| {
        if program
            .literalizations
            .get(&class)
            .is_some_and(|decl| !decl.contains(&attr))
        {
            diags.push(Diagnostic {
                code: "PSM010",
                severity: Severity::Error,
                production: p.name.clone(),
                ce,
                message: format!(
                    "attribute `^{}` is not declared by `(literalize {} …)`",
                    program.symbols.name(attr),
                    program.symbols.name(class)
                ),
            });
        }
    };
    for (ce_index, ce) in p.ces.iter().enumerate() {
        for (attr, _) in &ce.tests {
            push(Some(ce_index), ce.class, *attr);
        }
    }
    let positive: Vec<&ConditionElement> = p.ces.iter().filter(|ce| !ce.negated).collect();
    for action in &p.actions {
        match action {
            Action::Make { class, attrs } => {
                for (attr, _) in attrs {
                    push(None, *class, *attr);
                }
            }
            Action::Modify { positive_ce, attrs } => {
                if let Some(ce) = positive.get(*positive_ce) {
                    for (attr, _) in attrs {
                        push(None, ce.class, *attr);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::parse_program;

    fn codes(src: &str) -> Vec<&'static str> {
        let program = parse_program(src).unwrap();
        lint_program(&program).iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let diags = codes("(p ok (a ^x <v> ^k 1) (b ^x <v>) --> (make out ^x <v>))");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn contradiction_variants() {
        // Empty integer interval.
        assert!(codes("(p r (a ^x { > 5 < 3 }) --> (halt))").contains(&"PSM003"));
        // Two different equality constants.
        assert!(codes("(p r (a ^x { 1 2 }) --> (halt))").contains(&"PSM003"));
        // Equality excluded by `<>`.
        assert!(codes("(p r (a ^x { 1 <> 1 }) --> (halt))").contains(&"PSM003"));
        // Equality outside the disjunction.
        assert!(codes("(p r (a ^x { 3 << 1 2 >> }) --> (halt))").contains(&"PSM003"));
        // Numeric bound on a symbol constant.
        assert!(codes("(p r (a ^x { red > 3 }) --> (halt))").contains(&"PSM003"));
        // Satisfiable combinations stay quiet.
        assert!(codes("(p r (a ^x { > 2 < 9 <> 5 }) --> (halt))").is_empty());
        assert!(codes("(p r (a ^x { << 1 2 >> <> 1 }) --> (halt))").is_empty());
    }

    #[test]
    fn dead_negation_is_a_warning() {
        let program = parse_program("(p r (a ^x 1) - (b ^y { > 5 < 3 }) --> (halt))").unwrap();
        let diags = lint_program(&program);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "PSM005");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(is_clean(&diags));
    }

    #[test]
    fn pinned_join_conflict() {
        assert!(codes("(p r (a ^x { <v> 1 }) (b ^x { <v> 2 }) --> (halt))").contains(&"PSM004"));
        // Same pin on both sides is fine.
        assert!(codes("(p r (a ^x { <v> 1 }) (b ^x { <v> 1 }) --> (halt))").is_empty());
    }

    #[test]
    fn implied_negation_found_with_and_without_tests() {
        assert!(codes("(p r (a ^x <v>) - (a ^x <v>) --> (halt))").contains(&"PSM006"));
        assert!(codes("(p r (a ^x 1 ^y <v>) - (a ^x 1) --> (halt))").contains(&"PSM006"));
        // Different constant: not implied.
        assert!(!codes("(p r (a ^x 1) - (a ^x 2) --> (halt))").contains(&"PSM006"));
        // Negation before the positive CE: not implied.
        assert!(!codes("(p r - (a ^x 1) (a ^x 1 ^y 2) --> (halt))").contains(&"PSM006"));
    }

    #[test]
    fn duplicate_lhs_is_alpha_renaming_aware() {
        let src = "(p one (a ^x <v>) (b ^y <v>) --> (halt))\n\
                   (p two (a ^x <q>) (b ^y <q>) --> (remove 1))";
        assert!(codes(src).contains(&"PSM007"));
        // Different join structure: <q> vs a fresh variable.
        let src2 = "(p one (a ^x <v>) (b ^y <v>) --> (halt))\n\
                    (p two (a ^x <q>) (b ^y <r>) --> (halt))";
        assert!(!codes(src2).contains(&"PSM007"));
    }

    #[test]
    fn prefix_subsumption_reported_once() {
        let src = "(p broad (a ^x <v>) --> (halt))\n\
                   (p narrow (a ^x <v>) (b ^y <v>) --> (halt))";
        let found = codes(src);
        assert_eq!(found.iter().filter(|c| **c == "PSM008").count(), 1);
    }

    #[test]
    fn unused_variable_is_info_only() {
        let program = parse_program("(p r (a ^x <v> ^y <u>) (b ^x <v>) --> (halt))").unwrap();
        let diags = lint_program(&program);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "PSM009");
        assert!(diags[0].message.contains("<u>"));
        assert!(is_clean(&diags));
    }

    #[test]
    fn bind_makes_later_reads_legal() {
        let diags = codes("(p r (a ^x <v>) --> (bind <t> (compute <v> + 1)) (make out ^x <t>))");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn render_and_json_shapes() {
        let program = parse_program("(p r (a ^x { 1 2 }) --> (halt))").unwrap();
        let diags = lint_program(&program);
        let text = diags[0].render();
        assert!(
            text.starts_with("error[PSM003] production `r`, CE 1:"),
            "{text}"
        );
        let json = diags[0].to_json();
        assert!(json.contains("\"code\":\"PSM003\""));
        assert!(json.contains("\"ce\":0"));
    }

    #[test]
    fn undeclared_literalize_attribute_is_an_error() {
        use ops5::parse_program_lenient;
        // `^y` in the CE and `^z` in the make are undeclared; the
        // strict parser would stop at the first, the lenient path
        // surfaces both as PSM010.
        let src = "(literalize a x) (p r (a ^x 1 ^y 2) --> (make a ^z 3))";
        let program = parse_program_lenient(src).unwrap();
        let diags = lint_program(&program);
        let psm010: Vec<_> = diags.iter().filter(|d| d.code == "PSM010").collect();
        assert_eq!(psm010.len(), 2, "{diags:?}");
        assert_eq!(psm010[0].severity, Severity::Error);
        assert!(!is_clean(&diags));
        // Classes without a literalization are not checked.
        let program = parse_program_lenient("(literalize a x) (p r (b ^q 1) --> (halt))").unwrap();
        assert!(lint_program(&program).is_empty());
        // Declared attributes (including via modify) stay clean, and
        // agree with the strict parser accepting the program. The
        // modify rewrites ^x so the rule cannot re-trigger itself.
        let program =
            parse_program("(literalize a x y) (p r (a ^x 1) --> (modify 1 ^x 2 ^y 2))").unwrap();
        assert!(lint_program(&program).is_empty());
    }

    #[test]
    fn lint_codes_table_is_consistent() {
        let mut seen = std::collections::HashSet::new();
        for (code, _, _) in LINT_CODES {
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(code.starts_with("PSM"));
        }
    }
}
