//! Inter-production interference analysis and the parallel-firing
//! compatibility matrix (§5 of the paper, "parallelism in the act
//! phase").
//!
//! Two productions can fire in parallel only when their effects are
//! independent: neither retracts or clobbers a WME the other asserts,
//! reads, or requires absent. This module derives, per production:
//!
//! - a static **read set** — one [`Touchprint`] per condition element
//!   (positive and negated), attribute-by-attribute, with constants
//!   kept exact and variable/predicate tests widened to "present";
//! - a static **write set** — one [`Touchprint`] per RHS effect, built
//!   on [`ops5::effects`]: `make` is exact (unlisted attributes are
//!   known absent), `modify`/`remove` inherit the designated CE's
//!   pattern and are conservatively widened (unlisted attributes may
//!   hold anything).
//!
//! Pairwise, three interference kinds are checked ([`InterferencePair`]):
//! **WW** (a destructive write may touch a WME the other writes), **WR**
//! (a write may touch a WME matching the other's positive CE), and
//! **WnR** (a write may touch a pattern the other requires absent). A
//! pair with no interference of any kind is *compatible*: the firings
//! commute and may run concurrently. [`InterferenceAnalysis`] collects
//! the conflicting pairs, the compatibility density, DOT/JSON exports,
//! and gauges for the telemetry plane.
//!
//! The same footprints feed five lints (PSM011–PSM015, see
//! [`crate::lint`]) and the runtime cross-check
//! ([`sanitizer_crosscheck`]) that replays a workload with the
//! [`ops5::effects::WriteSanitizer`] attached and asserts every actual
//! WME touch fell inside the static write set.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ops5::ast::{PredOp, TestArg, ValueTest};
use ops5::effects::{for_each_write_effect, EffectKind, WriteSanitizer, WriteValue};
use ops5::{ConditionElement, Interpreter, Production, Program, SymbolId, Value};
use psm_obs::json::push_escaped;
use psm_obs::{Obs, Rng64};
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, WorkloadSpec};

use crate::lint::{Diagnostic, Severity};

/// What is statically known about one attribute of a touched WME.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// The attribute holds (or is required to hold) exactly this value.
    Const(Value),
    /// The attribute is touched or tested, value unknown statically.
    Present,
}

/// The static footprint of one WME touch: a class, an
/// attribute-by-attribute refinement, and whether unlisted attributes
/// are known absent (`make` asserts exactly its listed attributes;
/// patterns and `modify` results may carry arbitrary extra attributes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Touchprint {
    /// WME class.
    pub class: SymbolId,
    /// True when unlisted attributes are known absent.
    pub exact: bool,
    /// Attribute refinements, sorted by attribute id.
    pub attrs: Vec<(SymbolId, Touch)>,
}

impl Touchprint {
    fn get(&self, attr: SymbolId) -> Option<&Touch> {
        self.attrs
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// Conservative intersection test: could a single concrete WME fall
    /// under both prints? Refutation needs positive evidence — two
    /// different pinned constants at the same attribute, or an
    /// exact-side-absent attribute the other side requires.
    pub fn may_intersect(&self, other: &Touchprint) -> bool {
        if self.class != other.class {
            return false;
        }
        let mut attrs: Vec<SymbolId> = Vec::with_capacity(self.attrs.len() + other.attrs.len());
        attrs.extend(self.attrs.iter().map(|(a, _)| *a));
        attrs.extend(other.attrs.iter().map(|(a, _)| *a));
        attrs.sort_unstable();
        attrs.dedup();
        for attr in attrs {
            match (self.get(attr), other.get(attr)) {
                (Some(Touch::Const(u)), Some(Touch::Const(v))) if u != v => return false,
                (None, Some(_)) if self.exact => return false,
                (Some(_), None) if other.exact => return false,
                _ => {}
            }
        }
        true
    }
}

/// One condition element of a production's read set.
#[derive(Debug, Clone)]
pub struct ReadPattern {
    /// Index into `production.ces` (over all CEs, negated included).
    pub ce: usize,
    /// True for a negated CE (the rule requires the pattern absent).
    pub negated: bool,
    /// The pattern's touchprint (never exact: extra attributes match).
    pub print: Touchprint,
}

/// One WME the RHS may assert: a `make`, or the re-asserted half of a
/// `modify`.
#[derive(Debug, Clone)]
pub struct AddPrint {
    /// True when this stems from `make` — the program genuinely creates
    /// instances of the class (a `modify` only rewrites an instance
    /// that already existed).
    pub made: bool,
    /// Footprint of the asserted WME.
    pub print: Touchprint,
}

/// One WME the RHS may retract: a `remove`, or the retracted half of a
/// `modify`. The footprint is the designated CE's pattern.
#[derive(Debug, Clone)]
pub struct DelPrint {
    /// Which action produced this ([`EffectKind::Remove`] or
    /// [`EffectKind::Modify`]).
    pub kind: EffectKind,
    /// Index into `production.ces` of the designated CE.
    pub ce: usize,
    /// Footprint of the retracted WME.
    pub print: Touchprint,
}

/// The full static footprint of one production: read patterns, add
/// prints, del prints, plus class indices for fast pair prefiltering.
#[derive(Debug, Clone)]
pub struct ProductionFootprint {
    /// Production name.
    pub name: String,
    /// LEX specificity (total primitive test count).
    pub specificity: usize,
    /// One read pattern per CE, positive and negated.
    pub reads: Vec<ReadPattern>,
    /// WMEs the RHS may assert.
    pub adds: Vec<AddPrint>,
    /// WMEs the RHS may retract.
    pub dels: Vec<DelPrint>,
    write_classes: Vec<SymbolId>,
    read_classes: Vec<SymbolId>,
}

impl ProductionFootprint {
    /// All write prints (adds and dels) paired with a "destructive"
    /// flag — dels retract existing WMEs, adds only assert fresh ones.
    fn writes(&self) -> impl Iterator<Item = (bool, &Touchprint)> {
        self.dels
            .iter()
            .map(|d| (true, &d.print))
            .chain(self.adds.iter().map(|a| (false, &a.print)))
    }

    /// True when the RHS touches working memory at all.
    pub fn writes_wm(&self) -> bool {
        !self.adds.is_empty() || !self.dels.is_empty()
    }
}

fn sorted_dedup(mut v: Vec<SymbolId>) -> Vec<SymbolId> {
    v.sort_unstable();
    v.dedup();
    v
}

fn sorted_intersects(a: &[SymbolId], b: &[SymbolId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Touchprint of one condition element: each tested attribute becomes
/// [`Touch::Const`] when some test pins it to a constant (a bare
/// constant or an `=` predicate against one), else [`Touch::Present`].
fn ce_print(ce: &ConditionElement) -> Touchprint {
    let mut map: HashMap<SymbolId, Option<Value>> = HashMap::new();
    ce.for_each_primitive_test(&mut |attr, test| {
        let pin = match test {
            ValueTest::Const(v) => Some(*v),
            ValueTest::Pred(PredOp::Eq, TestArg::Const(v)) => Some(*v),
            _ => None,
        };
        let entry = map.entry(attr).or_insert(None);
        if entry.is_none() {
            *entry = pin;
        }
    });
    let mut attrs: Vec<(SymbolId, Touch)> = map
        .into_iter()
        .map(|(a, pin)| (a, pin.map_or(Touch::Present, Touch::Const)))
        .collect();
    attrs.sort_unstable_by_key(|(a, _)| *a);
    Touchprint {
        class: ce.class,
        exact: false,
        attrs,
    }
}

/// Computes the static footprint of one production.
pub fn footprint(p: &Production) -> ProductionFootprint {
    let reads: Vec<ReadPattern> = p
        .ces
        .iter()
        .enumerate()
        .map(|(i, ce)| ReadPattern {
            ce: i,
            negated: ce.negated,
            print: ce_print(ce),
        })
        .collect();
    let pos_to_full: Vec<usize> = p
        .ces
        .iter()
        .enumerate()
        .filter(|(_, ce)| !ce.negated)
        .map(|(i, _)| i)
        .collect();

    let mut adds = Vec::new();
    let mut dels = Vec::new();
    for_each_write_effect(p, &mut |effect| {
        let explicit: Vec<(SymbolId, Touch)> = effect
            .attrs
            .iter()
            .map(|&(a, v)| {
                let touch = match v {
                    WriteValue::Const(c) => Touch::Const(c),
                    WriteValue::Dynamic => Touch::Present,
                };
                (a, touch)
            })
            .collect();
        match effect.kind {
            EffectKind::Make => {
                let mut attrs = explicit;
                attrs.sort_unstable_by_key(|(a, _)| *a);
                adds.push(AddPrint {
                    made: true,
                    print: Touchprint {
                        class: effect.class,
                        exact: true,
                        attrs,
                    },
                });
            }
            EffectKind::Modify | EffectKind::Remove => {
                let pos = effect
                    .positive_ce
                    .expect("modify/remove effects carry a designated CE");
                let full = pos_to_full[pos];
                let base = &reads[full].print;
                dels.push(DelPrint {
                    kind: effect.kind,
                    ce: full,
                    print: base.clone(),
                });
                if effect.kind == EffectKind::Modify {
                    // Re-asserted WME: the designated CE's pattern with
                    // the explicit attributes overridden. Not exact —
                    // untested attributes of the old WME carry over.
                    let mut attrs = base.attrs.clone();
                    for (a, touch) in explicit {
                        match attrs.binary_search_by_key(&a, |(x, _)| *x) {
                            Ok(i) => attrs[i].1 = touch,
                            Err(i) => attrs.insert(i, (a, touch)),
                        }
                    }
                    adds.push(AddPrint {
                        made: false,
                        print: Touchprint {
                            class: effect.class,
                            exact: false,
                            attrs,
                        },
                    });
                }
            }
        }
    });

    let write_classes = sorted_dedup(
        adds.iter()
            .map(|a| a.print.class)
            .chain(dels.iter().map(|d| d.print.class))
            .collect(),
    );
    let read_classes = sorted_dedup(reads.iter().map(|r| r.print.class).collect());
    ProductionFootprint {
        name: p.name.clone(),
        specificity: p.specificity,
        reads,
        adds,
        dels,
        write_classes,
        read_classes,
    }
}

/// Footprints for every production in the program, in program order.
pub fn footprints(program: &Program) -> Vec<ProductionFootprint> {
    program.productions.iter().map(footprint).collect()
}

/// One interfering production pair (`a < b`, indices into the
/// program's production list), with the interference kinds that apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterferencePair {
    /// Lower production index.
    pub a: usize,
    /// Higher production index.
    pub b: usize,
    /// Write–write: a destructive touch of one may hit a WME the other
    /// writes.
    pub ww: bool,
    /// Write–read: a write of one may touch a WME matching a positive
    /// CE of the other.
    pub wr: bool,
    /// Write–negated-read: a write of one may touch a pattern the
    /// other requires absent.
    pub wnr: bool,
}

impl InterferencePair {
    /// Human-readable kind label, e.g. `"WW+WR"`.
    pub fn kinds(&self) -> String {
        let mut parts = Vec::new();
        if self.ww {
            parts.push("WW");
        }
        if self.wr {
            parts.push("WR");
        }
        if self.wnr {
            parts.push("WnR");
        }
        parts.join("+")
    }
}

fn pair_ww(a: &ProductionFootprint, b: &ProductionFootprint) -> bool {
    a.writes().any(|(da, pa)| {
        b.writes()
            .any(|(db, pb)| (da || db) && pa.may_intersect(pb))
    })
}

fn writes_hit_reads(w: &ProductionFootprint, r: &ProductionFootprint, negated: bool) -> bool {
    w.writes().any(|(_, wp)| {
        r.reads
            .iter()
            .any(|rp| rp.negated == negated && wp.may_intersect(&rp.print))
    })
}

/// The pairwise interference relation over a whole program, plus the
/// derived compatibility matrix and density.
#[derive(Debug, Clone)]
pub struct InterferenceAnalysis {
    /// Production names, in program order.
    pub names: Vec<String>,
    /// Interfering pairs (`a < b`), sorted by `(a, b)`.
    pub pairs: Vec<InterferencePair>,
}

/// Computes the interference relation for `program`.
///
/// Cost is O(n²) pairs with a class-overlap prefilter: a pair is
/// examined in detail only when one side's written classes overlap the
/// other side's read or written classes. Match-only programs (empty
/// RHS everywhere, like the generated presets by default) short-circuit
/// to fully compatible.
pub fn analyze_interference(program: &Program) -> InterferenceAnalysis {
    let fps = footprints(program);
    let mut pairs = Vec::new();
    for i in 0..fps.len() {
        for j in (i + 1)..fps.len() {
            let (a, b) = (&fps[i], &fps[j]);
            let a_hits = !a.write_classes.is_empty()
                && (sorted_intersects(&a.write_classes, &b.write_classes)
                    || sorted_intersects(&a.write_classes, &b.read_classes));
            let b_hits =
                !b.write_classes.is_empty() && sorted_intersects(&b.write_classes, &a.read_classes);
            if !a_hits && !b_hits {
                continue;
            }
            let ww = pair_ww(a, b);
            let wr = writes_hit_reads(a, b, false) || writes_hit_reads(b, a, false);
            let wnr = writes_hit_reads(a, b, true) || writes_hit_reads(b, a, true);
            if ww || wr || wnr {
                pairs.push(InterferencePair {
                    a: i,
                    b: j,
                    ww,
                    wr,
                    wnr,
                });
            }
        }
    }
    InterferenceAnalysis {
        names: fps.into_iter().map(|f| f.name).collect(),
        pairs,
    }
}

impl InterferenceAnalysis {
    /// Number of productions analyzed.
    pub fn rules(&self) -> usize {
        self.names.len()
    }

    /// Fraction of unordered pairs that are compatible (may fire in
    /// parallel). `1.0` for programs with fewer than two productions.
    pub fn density(&self) -> f64 {
        let n = self.names.len();
        if n < 2 {
            return 1.0;
        }
        let total = (n * (n - 1) / 2) as f64;
        1.0 - self.pairs.len() as f64 / total
    }

    /// The symmetric compatibility matrix: `m[i][j]` is true when
    /// productions `i` and `j` may fire in parallel (diagonal is
    /// false — a production never runs concurrently with itself).
    pub fn compatibility_matrix(&self) -> Vec<Vec<bool>> {
        let n = self.names.len();
        let mut m = vec![vec![true; n]; n];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = false;
        }
        for p in &self.pairs {
            m[p.a][p.b] = false;
            m[p.b][p.a] = false;
        }
        m
    }

    /// Renders the production dependency graph in DOT. Nodes are
    /// productions; edges are interfering pairs labeled with their
    /// kinds. Only productions participating in at least one conflict
    /// get explicit node statements, keeping graphs of match-only
    /// programs tiny.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph interference {\n");
        out.push_str("  node [shape=box, fontsize=10];\n");
        out.push_str(&format!(
            "  label=\"{} rules, {} conflicting pairs, density {:.3}\";\n",
            self.rules(),
            self.pairs.len(),
            self.density()
        ));
        let mut in_conflict: Vec<usize> = self.pairs.iter().flat_map(|p| [p.a, p.b]).collect();
        in_conflict.sort_unstable();
        in_conflict.dedup();
        for &i in &in_conflict {
            out.push_str(&format!("  \"{}\";\n", self.names[i]));
        }
        for p in &self.pairs {
            out.push_str(&format!(
                "  \"{}\" -- \"{}\" [label=\"{}\"];\n",
                self.names[p.a],
                self.names[p.b],
                p.kinds()
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Serializes the analysis as JSON. The full compatibility matrix
    /// (one `'0'`/`'1'` string per row) is included only when
    /// `include_matrix` is set and the program has at most 512
    /// productions; pair lists and density are always present.
    pub fn to_json(&self, include_matrix: bool) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"rules\":{}", self.rules()));
        out.push_str(&format!(",\"conflicting_pairs\":{}", self.pairs.len()));
        out.push_str(&format!(",\"density\":{:.6}", self.density()));
        out.push_str(",\"pairs\":[");
        for (k, p) in self.pairs.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str("{\"a\":");
            push_escaped(&mut out, &self.names[p.a]);
            out.push_str(",\"b\":");
            push_escaped(&mut out, &self.names[p.b]);
            out.push_str(",\"kinds\":");
            push_escaped(&mut out, &p.kinds());
            out.push('}');
        }
        out.push(']');
        if include_matrix && self.rules() <= 512 {
            out.push_str(",\"matrix\":[");
            for (i, row) in self.compatibility_matrix().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let bits: String = row.iter().map(|&c| if c { '1' } else { '0' }).collect();
                push_escaped(&mut out, &bits);
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Publishes summary gauges (`interference.rules`,
    /// `interference.conflicting_pairs`, `interference.density_ppm`)
    /// to the observability plane.
    pub fn publish(&self, obs: &Obs) {
        obs.metrics
            .gauge("interference.rules")
            .set(self.rules() as i64);
        obs.metrics
            .gauge("interference.conflicting_pairs")
            .set(self.pairs.len() as i64);
        obs.metrics
            .gauge("interference.density_ppm")
            .set((self.density() * 1_000_000.0) as i64);
    }
}

// ---------------------------------------------------------------------------
// Lints PSM011–PSM015.
// ---------------------------------------------------------------------------

fn warn(code: &'static str, production: &str, ce: Option<usize>, message: String) -> Diagnostic {
    Diagnostic {
        code,
        severity: Severity::Warning,
        production: production.to_string(),
        ce,
        message,
    }
}

/// Runs the five interference lints over the whole program, appending
/// to `diags`. See the lint table in [`crate::lint`].
pub(crate) fn lint_interference(program: &Program, diags: &mut Vec<Diagnostic>) {
    let fps = footprints(program);
    let made: HashSet<SymbolId> = fps
        .iter()
        .flat_map(|f| f.adds.iter().filter(|a| a.made).map(|a| a.print.class))
        .collect();
    let all_adds: Vec<&AddPrint> = fps.iter().flat_map(|f| f.adds.iter()).collect();

    for fp in &fps {
        lint_self_retrigger(fp, diags);
        lint_dead_rule(fp, &made, &all_adds, diags);
        lint_negated_retract(fp, diags);
    }

    // Pairwise lints, with the same class-overlap prefilter the
    // analysis uses.
    for i in 0..fps.len() {
        for j in (i + 1)..fps.len() {
            let (a, b) = (&fps[i], &fps[j]);
            // PSM011: always-conflicting write sets at identical
            // specificity — conflict resolution cannot order the pair,
            // so serial and parallel schedules may diverge.
            if a.specificity == b.specificity
                && sorted_intersects(&a.write_classes, &b.write_classes)
                && pair_ww(a, b)
            {
                diags.push(warn(
                    "PSM011",
                    &b.name,
                    None,
                    format!(
                        "write set conflicts with `{}` at identical specificity {}; \
                         firing order is unresolvable and parallel outcomes may diverge",
                        a.name, a.specificity
                    ),
                ));
            }
        }
    }
    lint_shadowed(program, &fps, diags);
}

/// PSM012: an RHS write may re-satisfy the production's own LHS —
/// an add hitting a positive CE, or a retract hitting a negated CE.
/// Either way the rule can re-trigger itself every cycle (refraction
/// only suppresses the *same* instantiation, and a rewritten WME gets
/// a fresh time tag).
fn lint_self_retrigger(fp: &ProductionFootprint, diags: &mut Vec<Diagnostic>) {
    for r in &fp.reads {
        let loops = if r.negated {
            fp.dels.iter().any(|d| d.print.may_intersect(&r.print))
        } else {
            fp.adds.iter().any(|a| a.print.may_intersect(&r.print))
        };
        if loops {
            let how = if r.negated {
                "a retract may clear this negated CE"
            } else {
                "a write may re-create a match for this CE"
            };
            diags.push(warn(
                "PSM012",
                &fp.name,
                Some(r.ce),
                format!("{how}; the rule can re-trigger itself (static loop risk)"),
            ));
            return;
        }
    }
}

/// PSM013: a positive CE reads a class the program creates (some rule
/// `make`s it), yet no RHS write in the program can satisfy the CE's
/// tests. The rule can only ever fire from WMEs seeded into the
/// initial working memory. Classes never `make`d anywhere are presumed
/// externally seeded and are not flagged.
fn lint_dead_rule(
    fp: &ProductionFootprint,
    made: &HashSet<SymbolId>,
    all_adds: &[&AddPrint],
    diags: &mut Vec<Diagnostic>,
) {
    for r in &fp.reads {
        if r.negated || !made.contains(&r.print.class) {
            continue;
        }
        if !all_adds.iter().any(|a| a.print.may_intersect(&r.print)) {
            diags.push(warn(
                "PSM013",
                &fp.name,
                Some(r.ce),
                "no RHS write in the program can satisfy this CE's tests; \
                 the rule fires only from initial working memory"
                    .to_string(),
            ));
        }
    }
}

/// PSM015: the rule retracts (via `remove`/`modify`) a WME whose
/// pattern overlaps a CE the same rule requires absent. The negation
/// already guaranteed no such WME matched, so either the retract is
/// aimed at the wrong CE or the patterns are wrong.
fn lint_negated_retract(fp: &ProductionFootprint, diags: &mut Vec<Diagnostic>) {
    for r in fp.reads.iter().filter(|r| r.negated) {
        if let Some(d) = fp.dels.iter().find(|d| d.print.may_intersect(&r.print)) {
            let action = match d.kind {
                EffectKind::Modify => "modify",
                _ => "remove",
            };
            diags.push(warn(
                "PSM015",
                &fp.name,
                Some(r.ce),
                format!(
                    "`{action}` of CE {} overlaps this negated CE's pattern; \
                     the negation already guarantees no such WME exists",
                    d.ce + 1
                ),
            ));
        }
    }
}

/// How a variable of the shadowed production maps into the shadowing
/// one during subsumption search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarImage {
    QVar(ops5::ast::VarId),
    Val(Value),
}

fn pred_holds(v: Value, op: PredOp, c: Value) -> bool {
    match op {
        PredOp::Eq => v == c,
        PredOp::Ne => v != c,
        PredOp::SameType => matches!(
            (v, c),
            (Value::Int(_), Value::Int(_)) | (Value::Sym(_), Value::Sym(_))
        ),
        PredOp::Lt | PredOp::Le | PredOp::Gt | PredOp::Ge => match (v, c) {
            (Value::Int(a), Value::Int(b)) => match op {
                PredOp::Lt => a < b,
                PredOp::Le => a <= b,
                PredOp::Gt => a > b,
                PredOp::Ge => a >= b,
                _ => unreachable!(),
            },
            _ => false,
        },
    }
}

/// Flattens a CE into primitive `(attr, test)` pairs (conjunctions
/// dissolve; each conjunct must be covered separately).
fn primitives(ce: &ConditionElement) -> Vec<(SymbolId, ValueTest)> {
    let mut out = Vec::new();
    ce.for_each_primitive_test(&mut |attr, t| out.push((attr, t.clone())));
    out
}

/// Does some primitive test of `q_prims` at the same attribute imply
/// `p_test`, under (and extending) the variable mapping?
fn test_covered(
    attr: SymbolId,
    p_test: &ValueTest,
    q_prims: &[(SymbolId, ValueTest)],
    map: &mut HashMap<ops5::ast::VarId, VarImage>,
) -> bool {
    for (qa, q_test) in q_prims.iter().filter(|(qa, _)| *qa == attr) {
        debug_assert_eq!(*qa, attr);
        // The constant `q_test` pins this attribute to, if any.
        let q_pin = match q_test {
            ValueTest::Const(v) => Some(*v),
            ValueTest::Pred(PredOp::Eq, TestArg::Const(v)) => Some(*v),
            _ => None,
        };
        let covered = match p_test {
            ValueTest::Const(v) | ValueTest::Pred(PredOp::Eq, TestArg::Const(v)) => {
                q_pin == Some(*v)
            }
            ValueTest::Var(pv) | ValueTest::Pred(PredOp::Eq, TestArg::Var(pv)) => {
                let image = match q_test {
                    ValueTest::Var(qv) => Some(VarImage::QVar(*qv)),
                    _ => q_pin.map(VarImage::Val),
                };
                match image {
                    Some(img) => match map.get(pv) {
                        Some(existing) => *existing == img,
                        None => {
                            map.insert(*pv, img);
                            true
                        }
                    },
                    None => false,
                }
            }
            ValueTest::Pred(op, TestArg::Const(c)) => {
                q_test == p_test || q_pin.is_some_and(|v| pred_holds(v, *op, *c))
            }
            ValueTest::Disj(vals) => match q_test {
                ValueTest::Disj(qvals) => qvals.iter().all(|v| vals.contains(v)),
                _ => q_pin.is_some_and(|v| vals.contains(&v)),
            },
            // Variable-operand inequalities and conjunctions are
            // handled structurally (identical test) only.
            _ => q_test == p_test,
        };
        if covered {
            return true;
        }
    }
    false
}

/// Backtracking search: map each CE of `p` (all positive) onto some
/// positive CE of `q` such that every primitive test of the `p` CE is
/// covered under a globally consistent variable mapping. Mappings need
/// not be injective — one WME may satisfy several CEs.
fn subsume_search(
    p_ces: &[&ConditionElement],
    q_ces: &[&ConditionElement],
    idx: usize,
    map: &HashMap<ops5::ast::VarId, VarImage>,
) -> bool {
    let Some(p_ce) = p_ces.get(idx) else {
        return true;
    };
    let p_prims = primitives(p_ce);
    for q_ce in q_ces.iter().filter(|q| q.class == p_ce.class) {
        let q_prims = primitives(q_ce);
        let mut trial = map.clone();
        if p_prims
            .iter()
            .all(|(attr, t)| test_covered(*attr, t, &q_prims, &mut trial))
            && subsume_search(p_ces, q_ces, idx + 1, &trial)
        {
            return true;
        }
    }
    false
}

/// True when any state matching `q` necessarily matches `p` too:
/// `p` has no negated CEs and each of its CEs is covered by some
/// positive CE of `q` under a consistent variable mapping.
fn lhs_subsumed_by(p: &Production, q: &Production) -> bool {
    if p.ces.iter().any(|ce| ce.negated) {
        return false;
    }
    let p_ces: Vec<&ConditionElement> = p.ces.iter().collect();
    let q_ces: Vec<&ConditionElement> = q.ces.iter().filter(|ce| !ce.negated).collect();
    // Cheap prefilter: every p class must appear among q's positive
    // CE classes.
    if !p_ces
        .iter()
        .all(|pce| q_ces.iter().any(|qce| qce.class == pce.class))
    {
        return false;
    }
    subsume_search(&p_ces, &q_ces, 0, &HashMap::new())
}

/// PSM014: the rule's read set is subsumed by a strictly more specific
/// sibling — whenever the sibling matches, this rule matches too and
/// loses LEX specificity ordering. Reported once per shadowed rule.
fn lint_shadowed(program: &Program, fps: &[ProductionFootprint], diags: &mut Vec<Diagnostic>) {
    for (pi, p) in program.productions.iter().enumerate() {
        for (qi, q) in program.productions.iter().enumerate() {
            if pi == qi || q.specificity <= p.specificity {
                continue;
            }
            if lhs_subsumed_by(p, q) {
                diags.push(warn(
                    "PSM014",
                    &fps[pi].name,
                    None,
                    format!(
                        "LHS is subsumed by the strictly more specific `{}`; \
                         whenever `{}` matches, this rule matches and loses \
                         specificity ordering",
                        q.name, q.name
                    ),
                ));
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime cross-check.
// ---------------------------------------------------------------------------

/// Outcome of replaying a workload with the write-set sanitizer
/// attached; see [`sanitizer_crosscheck`].
#[derive(Debug, Clone)]
pub struct CrosscheckOutcome {
    /// Production firings executed.
    pub firings: u64,
    /// Individual WME-touch checks performed by the sanitizer.
    pub checks: u64,
    /// Sanitizer violations recorded (must be zero on a legal run).
    pub violations: Vec<ops5::effects::SanitizerViolation>,
}

/// Generates `spec`, seeds its initial working memory, and runs up to
/// `max_cycles` recognize–act cycles with a [`WriteSanitizer`] attached
/// to both the interpreter (attribute-level checks around each firing)
/// and the Rete matcher (batch-level checks inside `process`). Every
/// actual WME touch is asserted to fall inside the production's static
/// write set.
///
/// # Errors
///
/// Returns [`ops5::Error`] if the spec fails to generate, the program
/// fails to compile, or the run faults.
pub fn sanitizer_crosscheck(
    spec: WorkloadSpec,
    max_cycles: u64,
) -> Result<CrosscheckOutcome, ops5::Error> {
    let seed = spec.seed;
    let workload = GeneratedWorkload::generate(spec)
        .map_err(|e| ops5::Error::runtime(format!("workload generation failed: {e}")))?;
    let mut rng = Rng64::new(seed ^ 0x5eed_5a71);
    let initial = workload.initial_wm(&mut rng);
    let sanitizer = Arc::new(WriteSanitizer::new(&workload.program));
    let mut matcher = ReteMatcher::compile(&workload.program)?;
    matcher.attach_sanitizer(Arc::clone(&sanitizer));
    let mut interp = Interpreter::new(workload.program, matcher);
    interp.attach_sanitizer(Arc::clone(&sanitizer));
    interp.insert_all(initial);
    let firings = interp.run(max_cycles)?;
    Ok(CrosscheckOutcome {
        firings,
        checks: sanitizer.checks(),
        violations: sanitizer.violations(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::parse_program;

    fn prog(src: &str) -> Program {
        parse_program(src).expect("test program parses")
    }

    #[test]
    fn make_and_read_of_same_class_interfere_as_wr() {
        let p = prog(
            "(p writer (go) --> (make item ^state raw))\
             (p reader (item ^state raw) --> (make out))",
        );
        let a = analyze_interference(&p);
        assert_eq!(a.pairs.len(), 1);
        let pair = a.pairs[0];
        assert!(pair.wr && !pair.ww && !pair.wnr, "{pair:?}");
        assert_eq!(pair.kinds(), "WR");
    }

    #[test]
    fn pinned_constants_refute_interference() {
        let p = prog(
            "(p writer (go) --> (make item ^state raw))\
             (p reader (item ^state cooked) --> (make out))",
        );
        let a = analyze_interference(&p);
        // `make` pins state=raw; the reader needs state=cooked.
        assert!(a.pairs.is_empty(), "{:?}", a.pairs);
        assert!((a.density() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_make_refutes_required_attribute() {
        // `make item ^id 1` asserts exactly {id}; a reader requiring
        // ^owner present can never match the made WME.
        let p = prog(
            "(p writer (go) --> (make item ^id 1))\
             (p reader (item ^owner <o>) --> (make out))",
        );
        assert!(analyze_interference(&p).pairs.is_empty());
    }

    #[test]
    fn remove_against_negated_ce_is_wnr() {
        let p = prog(
            "(p sweeper (junk ^size 3) --> (remove 1))\
             (p guard (goal) - (junk ^kind live) --> (make out))",
        );
        let a = analyze_interference(&p);
        assert_eq!(a.pairs.len(), 1);
        assert!(a.pairs[0].wnr, "{:?}", a.pairs[0]);
    }

    #[test]
    fn two_removers_of_one_class_are_ww() {
        let p = prog(
            "(p left (slot ^id 1) --> (remove 1))\
             (p right (slot ^id < 2) --> (remove 1))",
        );
        let a = analyze_interference(&p);
        assert!(a.pairs.iter().any(|p| p.ww));
        let m = a.compatibility_matrix();
        assert!(!m[0][1] && !m[1][0] && !m[0][0]);
    }

    #[test]
    fn match_only_program_is_fully_compatible() {
        let p = prog("(p a (x ^v 1) --> (halt))(p b (x ^v 2) --> (halt))");
        let a = analyze_interference(&p);
        assert!(a.pairs.is_empty());
        assert!((a.density() - 1.0).abs() < 1e-9);
        let m = a.compatibility_matrix();
        assert!(m[0][1] && m[1][0]);
    }

    #[test]
    fn dot_and_json_exports_render() {
        let p = prog(
            "(p left (slot ^id 1) --> (remove 1))\
             (p right (slot ^id 1) --> (modify 1 ^id 2))",
        );
        let a = analyze_interference(&p);
        let dot = a.to_dot();
        assert!(dot.starts_with("graph interference {"));
        assert!(dot.contains("\"left\" -- \"right\""));
        let json = a.to_json(true);
        assert!(json.contains("\"rules\":2"));
        assert!(json.contains("\"matrix\":[\"00\",\"00\"]"), "{json}");
        let no_matrix = a.to_json(false);
        assert!(!no_matrix.contains("matrix"));
    }

    #[test]
    fn modify_print_carries_overridden_constant() {
        let p = prog("(p step (task ^phase one) --> (modify 1 ^phase two))");
        let fp = footprint(&p.productions[0]);
        assert_eq!(fp.adds.len(), 1);
        assert_eq!(fp.dels.len(), 1);
        let phase = p.symbols.lookup("phase").expect("interned");
        let two = p.symbols.lookup("two").expect("interned");
        assert_eq!(
            fp.adds[0].print.get(phase),
            Some(&Touch::Const(Value::Sym(two)))
        );
        assert!(!fp.adds[0].made);
        assert!(!fp.adds[0].print.exact);
    }

    #[test]
    fn subsumption_respects_variable_consistency() {
        // narrow's CEs use one shared variable; broad requires the two
        // attributes to be independently free, which IS implied.
        let p = prog(
            "(p broad (a ^x <u>) (b ^y <w>) --> (halt))\
             (p narrow (a ^x <v> ^k 1) (b ^y <v>) --> (halt))",
        );
        assert!(lhs_subsumed_by(&p.productions[0], &p.productions[1]));
        // The reverse direction must fail: broad does not pin ^k.
        assert!(!lhs_subsumed_by(&p.productions[1], &p.productions[0]));
    }

    #[test]
    fn shared_variable_join_is_not_implied_by_free_variables() {
        // joined requires a.x == b.y; loose does not. loose's match
        // does NOT imply joined's, and joined's DOES imply loose's.
        let p = prog(
            "(p joined (a ^x <v>) (b ^y <v> ^k 1) --> (halt))\
             (p loose (a ^x <u>) (b ^y <w>) --> (halt))",
        );
        assert!(lhs_subsumed_by(&p.productions[1], &p.productions[0]));
        assert!(!lhs_subsumed_by(&p.productions[0], &p.productions[1]));
    }

    #[test]
    fn sanitizer_crosscheck_runs_clean_on_a_small_preset() {
        let spec = workloads::preset("ep-soar")
            .expect("preset exists")
            .spec_acting();
        let outcome = sanitizer_crosscheck(spec, 50).expect("crosscheck runs");
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert!(outcome.checks > 0 || outcome.firings == 0);
    }
}
