//! Profiler-driven calibration of the static cost model.
//!
//! The [`crate::cost`] model predicts each join's selectivity from
//! program text alone, and the cross-check harness shows those
//! predictions can be off by 4–24× on the synthetic presets — the join
//! attributes' *runtime* value distribution is invisible statically.
//! This module closes the loop with the per-node profiler
//! ([`psm_obs::NodeProfiler`]): run a seeded workload, read the
//! measured `tokens_out / pairs_compared` ratio off every two-input
//! node, and feed it back into [`CostParams`] as per-`(production, CE)`
//! overrides.
//!
//! Validation is a *split-sample* holdout on the same live run: after a
//! warmup window (the initial bulk load and memory ramp-up, whose
//! selectivities are unrepresentative of steady state), the run
//! continues for `2 × cycles` batches chopped into alternating blocks —
//! even blocks teach, odd blocks validate. The reported `after_error`
//! is the drift between the calibrated selectivity and the holdout
//! sample's independent measurement. Interleaving makes both samples
//! cover the same span of the run: the generated workloads' selectivity
//! drifts slowly as working-memory composition evolves, and a
//! back-to-back split would charge that environmental drift to the
//! estimator (a live deployment handles slow drift by re-calibrating
//! continuously, which is the point of an always-on profiler). Two
//! further guards keep the estimates honest statistics rather than
//! noise:
//!
//! * **Shrinkage** — the learned value is a conjugate Gamma-prior
//!   blend `(tokens_out + a) / (pairs + a/prior)` with the static
//!   prediction as the prior mean and [`PRIOR_EVENTS`] pseudo-events of
//!   strength, so a join that emitted two tokens barely moves off the
//!   model while a join that emitted thousands is essentially pure
//!   measurement. The information content of a selectivity estimate is
//!   its *event* (output-token) count, not its pair count: at
//!   `jsel ≈ 0.01`, a hundred pair comparisons carry roughly one
//!   event's worth of signal.
//! * **Sampling floor** — for the same reason, the headline drift
//!   bound is taken over joins with at least [`MIN_CALIBRATION_EVENTS`]
//!   output tokens in *both* windows (`sampled` in the report); a
//!   selectivity whose measurement is one or two Poisson arrivals
//!   cannot be certified to any factor. Under-sampled joins are still
//!   reported and still calibrated (shrinkage keeps them near the
//!   prior), just not gated.
//!
//! The same profile snapshot also exports as folded stacks
//! (`production;node;node… weight`) consumable by standard flamegraph
//! tooling — see [`folded_stacks`].

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use ops5::{Matcher, Program};
use psm_obs::{json, Obs, ProfileSnapshot};
use rete::network::NodeKind;
use rete::{Network, ReteMatcher};
use workloads::{GeneratedWorkload, WorkloadDriver, WorkloadSpec};

use crate::cost::{predicted_join_selectivities, CostParams};
use crate::crosscheck::params_from_spec;

/// Pseudo-event mass of the static prior in the shrinkage blend: a
/// join's calibrated selectivity is
/// `(tokens_out + PRIOR_EVENTS) / (pairs + PRIOR_EVENTS / predicted)`
/// — a conjugate Gamma prior centred on the static prediction.
pub const PRIOR_EVENTS: f64 = 2.0;

/// Minimum output tokens (in both the calibration and the validation
/// sample) for a join to count toward the gated drift bound. A Poisson
/// estimate from `n` events has a relative standard error of
/// `1/√n`; the gate takes a *max* over hundreds of joins, so the
/// per-join error must be small enough that the extreme-value tail
/// stays inside the bound. 64 events puts the split-sample log-ratio
/// σ at ≈ 0.18, whose ~3.4σ extreme over ~400 joins is ≈ 1.8×.
pub const MIN_CALIBRATION_EVENTS: u64 = 64;

/// Batches per interleave block: even blocks feed the calibration
/// sample, odd blocks the validation sample.
const WINDOW_BLOCK: u64 = 8;

/// One join's calibration record: what the static model predicted, what
/// the profiler measured, and how far both sit from an independent
/// validation run.
#[derive(Debug, Clone)]
pub struct JoinCalibration {
    /// Production index (in [`ops5::ProductionId`] order).
    pub production: usize,
    /// Production name.
    pub production_name: String,
    /// CE index within the production (full-CE order, negations
    /// included) — together with `production` this is the
    /// [`CostParams::join_selectivity_overrides`] key.
    pub ce: usize,
    /// The two-input node compiled for this CE.
    pub node: u32,
    /// Node kind label (always `"join"` — negative nodes are not
    /// calibrated), matching the profiler's and flight recorder's
    /// naming.
    pub kind: &'static str,
    /// Pairs compared at this node during the calibration window.
    pub pairs: u64,
    /// Pairs compared during the validation (holdout) window.
    pub val_pairs: u64,
    /// True when both windows cleared [`MIN_CALIBRATION_EVENTS`] — the
    /// joins the drift gate is taken over.
    pub sampled: bool,
    /// The static model's predicted join selectivity.
    pub predicted: f64,
    /// Shrinkage-blended selectivity learned from the calibration
    /// window — the override value.
    pub calibrated: f64,
    /// Raw measured selectivity over the validation window.
    pub validated: f64,
    /// `max(predicted/validated, validated/predicted)` — the static
    /// model's error factor (≥ 1).
    pub before_error: f64,
    /// Same ratio for the calibrated value — the residual drift after
    /// learning (≥ 1).
    pub after_error: f64,
}

impl JoinCalibration {
    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"production\":");
        let _ = write!(out, "{}", self.production);
        out.push_str(",\"name\":");
        json::push_escaped(&mut out, &self.production_name);
        let _ = write!(out, ",\"ce\":{},\"node\":{}", self.ce, self.node);
        out.push_str(",\"kind\":");
        json::push_escaped(&mut out, self.kind);
        let _ = write!(
            out,
            ",\"pairs\":{},\"val_pairs\":{},\"sampled\":{}",
            self.pairs, self.val_pairs, self.sampled
        );
        let _ = write!(out, ",\"predicted\":{}", json::number(self.predicted));
        let _ = write!(out, ",\"calibrated\":{}", json::number(self.calibrated));
        let _ = write!(out, ",\"validated\":{}", json::number(self.validated));
        let _ = write!(out, ",\"before_error\":{}", json::number(self.before_error));
        let _ = write!(out, ",\"after_error\":{}", json::number(self.after_error));
        out.push('}');
        out
    }
}

/// A workload's full calibration result: per-join records plus the
/// folded-stack export of the calibration run's profile.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Workload name.
    pub name: String,
    /// Batches driven per window (the run is `3 × cycles` total:
    /// warmup, calibration, validation).
    pub cycles: u64,
    /// Seed of the run.
    pub seed: u64,
    /// Per-join calibration records, in production then CE order. Joins
    /// never activated in one of the two windows are omitted (no
    /// meaningful ratio).
    pub joins: Vec<JoinCalibration>,
    /// Folded stacks (`production;node;… weight`) of the calibration
    /// run, ready for flamegraph tooling.
    pub folded: String,
}

impl CalibrationReport {
    /// Largest static-model error factor across well-sampled joins
    /// (1.0 when no join qualified).
    pub fn max_before_error(&self) -> f64 {
        self.joins
            .iter()
            .filter(|j| j.sampled)
            .map(|j| j.before_error)
            .fold(1.0, f64::max)
    }

    /// Largest residual drift of the calibrated selectivities across
    /// well-sampled joins (1.0 when no join qualified).
    pub fn max_after_error(&self) -> f64 {
        self.joins
            .iter()
            .filter(|j| j.sampled)
            .map(|j| j.after_error)
            .fold(1.0, f64::max)
    }

    /// Number of joins clearing the [`MIN_CALIBRATION_EVENTS`] floor in
    /// both windows.
    pub fn sampled_joins(&self) -> usize {
        self.joins.iter().filter(|j| j.sampled).count()
    }

    /// Applies the learned selectivities on top of `base`, returning
    /// calibrated [`CostParams`] ready for [`crate::analyze_cost`].
    pub fn apply(&self, mut base: CostParams) -> CostParams {
        for j in &self.joins {
            base.join_selectivity_overrides
                .insert((j.production, j.ce), j.calibrated);
        }
        base
    }

    /// Renders the report as a JSON object — the `CalibratedCostParams`
    /// artifact `psmprof` writes to `results/calibration.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"workload\":");
        json::push_escaped(&mut out, &self.name);
        let _ = write!(
            out,
            ",\"cycles\":{},\"seed\":{},\"min_events\":{MIN_CALIBRATION_EVENTS},\
             \"sampled_joins\":{}",
            self.cycles,
            self.seed,
            self.sampled_joins()
        );
        let _ = write!(
            out,
            ",\"max_before_error\":{},\"max_after_error\":{}",
            json::number(self.max_before_error()),
            json::number(self.max_after_error())
        );
        out.push_str(",\"joins\":[");
        for (i, j) in self.joins.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&j.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Shrinkage estimate of a join's selectivity: measurement blended
/// with the static prior, the prior carrying [`PRIOR_EVENTS`]
/// pseudo-events (posterior mean of a Gamma prior with mean `prior`).
fn shrunk_jsel(tokens_out: u64, pairs: u64, prior: f64) -> f64 {
    let prior = prior.max(1e-9);
    (tokens_out as f64 + PRIOR_EVENTS) / (pairs as f64 + PRIOR_EVENTS / prior)
}

/// Raw measured selectivity with a floor that keeps error ratios
/// finite: a node that emitted zero tokens over `pairs` comparisons is
/// estimated at half a token, not zero.
fn raw_jsel(tokens_out: u64, pairs: u64) -> f64 {
    (tokens_out as f64).max(0.5) / (pairs as f64).max(1.0)
}

/// Ratio of the larger value to the smaller (≥ 1).
fn error_factor(a: f64, b: f64) -> f64 {
    let (a, b) = (a.max(1e-9), b.max(1e-9));
    (a / b).max(b / a)
}

/// Per-node `(tokens_out, pairs)` accumulated from one interleaved
/// sample of the run.
type SampleCounts = HashMap<u32, (u64, u64)>;

/// Per-node `(tokens_out, pairs)` counter delta between two snapshots
/// of the same profiler.
fn window_counts(later: &ProfileSnapshot, earlier: &ProfileSnapshot) -> SampleCounts {
    let base: SampleCounts = earlier
        .rows
        .iter()
        .map(|r| (r.node, (r.tokens_out, r.pairs)))
        .collect();
    later
        .rows
        .iter()
        .map(|r| {
            let (out0, pairs0) = base.get(&r.node).copied().unwrap_or((0, 0));
            (r.node, (r.tokens_out - out0, r.pairs - pairs0))
        })
        .collect()
}

/// Compiles `workload` and profiles it under a per-node profiler sized
/// to the network: a warmup window of `cycles` batches (discarded),
/// then `2 × cycles` batches in alternating [`WINDOW_BLOCK`]-sized
/// blocks accumulated into the calibration and validation samples.
/// Returns both samples, the final (cumulative) snapshot, and the
/// network.
fn interleaved_profile(
    workload: &GeneratedWorkload,
    cycles: u64,
    seed: u64,
) -> Result<(SampleCounts, SampleCounts, ProfileSnapshot, Arc<Network>), ops5::Error> {
    let mut matcher = ReteMatcher::compile(&workload.program)?;
    let network = Arc::clone(matcher.network());
    let capacity = network.iter().count();
    let obs = Arc::new(Obs::with_profile(0, 0, capacity));
    matcher.attach_obs(Arc::clone(&obs));
    let mut driver = WorkloadDriver::new(workload.clone(), seed);
    driver.init(&mut matcher);
    let mut run_batch = |matcher: &mut ReteMatcher| {
        let batch = driver.next_batch();
        matcher.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
    };
    for _ in 0..cycles {
        run_batch(&mut matcher);
    }
    let mut prev = obs.profile.snapshot();
    let mut cal = SampleCounts::new();
    let mut val = SampleCounts::new();
    let mut remaining = 2 * cycles;
    let mut block = 0u64;
    while remaining > 0 {
        for _ in 0..WINDOW_BLOCK.min(remaining) {
            run_batch(&mut matcher);
        }
        remaining -= WINDOW_BLOCK.min(remaining);
        let snap = obs.profile.snapshot();
        let sample = if block.is_multiple_of(2) {
            &mut cal
        } else {
            &mut val
        };
        for (node, (out, pairs)) in window_counts(&snap, &prev) {
            let e = sample.entry(node).or_insert((0, 0));
            e.0 += out;
            e.1 += pairs;
        }
        prev = snap;
        block += 1;
    }
    Ok((cal, val, prev, network))
}

/// Calibrates the cost model for one generated workload: after a
/// warmup window of `cycles` batches (bulk load and memory ramp-up),
/// learns measured join selectivities from the even interleave blocks
/// of the next `2 × cycles` batches, then validates them against the
/// odd blocks' independent sample, reporting per-join drift before and
/// after calibration.
///
/// # Errors
///
/// Returns [`ops5::Error`] if generation or compilation fails.
pub fn calibrate_workload(
    spec: WorkloadSpec,
    cycles: u64,
    seed: u64,
) -> Result<CalibrationReport, ops5::Error> {
    let name = spec.name.clone();
    let workload = GeneratedWorkload::generate(spec)?;
    let params = params_from_spec(&workload.spec, &workload.program);
    let (cal_rows, val_rows, full, network) = interleaved_profile(&workload, cycles, seed)?;
    let predicted = predicted_join_selectivities(&workload.program, &network, &params);

    let mut joins = Vec::new();
    for p in &workload.program.productions {
        for (ce, node_id) in network.production_chain(p.id).iter().enumerate() {
            // Only positive joins: a negative node's token flow is not
            // a pair-pass ratio (empty-memory left activations emit
            // without comparing), and the cost model never consumes a
            // negated CE's jsel.
            let kind = match network.node(*node_id).kind {
                NodeKind::Join => "join",
                _ => continue,
            };
            let node = node_id.index() as u32;
            let (Some(&(c_out, c_pairs)), Some(&(v_out, v_pairs))) =
                (cal_rows.get(&node), val_rows.get(&node))
            else {
                continue;
            };
            if c_pairs == 0 || v_pairs == 0 {
                continue;
            }
            let pred = predicted[p.id.index()][ce];
            let calibrated = shrunk_jsel(c_out, c_pairs, pred);
            let validated = raw_jsel(v_out, v_pairs);
            joins.push(JoinCalibration {
                production: p.id.index(),
                production_name: p.name.clone(),
                ce,
                node,
                kind,
                pairs: c_pairs,
                val_pairs: v_pairs,
                sampled: c_out >= MIN_CALIBRATION_EVENTS && v_out >= MIN_CALIBRATION_EVENTS,
                predicted: pred,
                calibrated,
                validated,
                before_error: error_factor(pred, validated),
                after_error: error_factor(calibrated, validated),
            });
        }
    }

    // Folded stacks cover the whole run (warmup + both windows) — the
    // profile a flamegraph of the workload should show.
    let folded = folded_stacks(&workload.program, &network, &full);
    Ok(CalibrationReport {
        name,
        cycles,
        seed,
        joins,
        folded,
    })
}

fn frame_label(kind: NodeKind, node: u32) -> String {
    let k = match kind {
        NodeKind::Join => "join",
        NodeKind::Negative => "neg",
        NodeKind::BetaMemory => "bmem",
        NodeKind::Terminal => "term",
    };
    format!("{k}:{node}")
}

/// Exports a profile snapshot as folded stacks: one line per
/// `production → beta-chain prefix → node` with the node's measured
/// work (`pairs_compared + tokens_in`, divided by how many productions
/// share it) as the sample count. The output is the `.folded` format
/// standard flamegraph tools consume directly.
pub fn folded_stacks(program: &Program, network: &Network, snap: &ProfileSnapshot) -> String {
    let use_counts = network.node_use_counts();
    let rows: HashMap<u32, (u64, u64)> = snap
        .rows
        .iter()
        .map(|r| (r.node, (r.pairs, r.tokens_in)))
        .collect();
    let weight_of = |node: u32| -> u64 {
        let Some(&(pairs, tokens_in)) = rows.get(&node) else {
            return 0;
        };
        let uses = use_counts[node as usize].max(1) as u64;
        (pairs + tokens_in) / uses
    };
    let mut out = String::new();
    for p in &program.productions {
        // Folded frames are ';'- and ' '-delimited; keep names clean.
        let mut stack = p.name.replace([';', ' '], "_");
        let chain: Vec<rete::NodeId> = network
            .production_chain(p.id)
            .iter()
            .copied()
            .chain(std::iter::once(network.terminal(p.id)))
            .collect();
        for node_id in chain {
            let node = node_id.index() as u32;
            let _ = write!(stack, ";{}", frame_label(network.node(node_id).kind, node));
            let weight = weight_of(node);
            if weight > 0 {
                let _ = writeln!(out, "{stack} {weight}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::parse_program;
    use psm_obs::{NodeProfiler, ProfileKind};
    use workloads::Preset;

    #[test]
    fn calibration_shrinks_validated_drift() {
        let report = calibrate_workload(Preset::Vt.spec_small(), 450, 11).unwrap();
        assert!(!report.joins.is_empty(), "vt has active joins");
        assert!(report.sampled_joins() > 0, "vt has well-sampled joins");
        // Learned values must track the holdout window at least as well
        // as the static prior does.
        assert!(
            report.max_after_error() <= report.max_before_error(),
            "after {} vs before {}",
            report.max_after_error(),
            report.max_before_error()
        );
        // Every record's ratios are well-formed.
        for j in &report.joins {
            assert!(j.before_error >= 1.0 && j.after_error >= 1.0);
            assert!(j.pairs > 0 && j.val_pairs > 0);
        }
        // The JSON artifact is non-trivial and self-describing.
        let json = report.to_json();
        assert!(json.contains("\"workload\":\"vt-small\""));
        assert!(json.contains("\"joins\":["));
        assert!(json.contains("\"after_error\":"));
    }

    #[test]
    fn applied_overrides_change_the_model() {
        let report = calibrate_workload(Preset::Vt.spec_small(), 30, 5).unwrap();
        let workload = GeneratedWorkload::generate(Preset::Vt.spec_small()).unwrap();
        let network = rete::Network::compile(&workload.program).unwrap();
        let base = params_from_spec(&workload.spec, &workload.program);
        let calibrated = report.apply(base.clone());
        assert_eq!(
            calibrated.join_selectivity_overrides.len(),
            report.joins.len()
        );
        let before = predicted_join_selectivities(&workload.program, &network, &base);
        let after = predicted_join_selectivities(&workload.program, &network, &calibrated);
        for j in &report.joins {
            assert_eq!(after[j.production][j.ce], j.calibrated);
        }
        // At least one join actually moved (otherwise the static model
        // was already exact, which the crosscheck harness rules out).
        assert!(report
            .joins
            .iter()
            .any(|j| (before[j.production][j.ce] - j.calibrated).abs() > 1e-12));
    }

    #[test]
    fn folded_stacks_golden() {
        let src = "(p hot (a ^x <v>) (b ^x <v>) --> (halt))\n\
                   (p cold (c ^y 1) --> (halt))";
        let program = parse_program(src).unwrap();
        let network = Network::compile(&program).unwrap();
        let hot = program.productions[0].id;
        let cold = program.productions[1].id;
        let hot_chain = network.production_chain(hot);
        let cold_chain = network.production_chain(cold);
        assert_eq!(hot_chain.len(), 2);
        assert_eq!(cold_chain.len(), 1);

        // Hand-populated profile: hot's two joins compared 6 and 3
        // pairs over 2 and 1 input tokens; cold's join compared 1 pair.
        let prof = NodeProfiler::new(network.iter().count());
        let j = |i: usize| hot_chain[i].index() as u32;
        prof.record(j(0), ProfileKind::Join, true, 6, 2);
        prof.record(j(1), ProfileKind::Join, false, 3, 1);
        prof.record(
            network.terminal(hot).index() as u32,
            ProfileKind::Terminal,
            false,
            0,
            1,
        );
        prof.record(cold_chain[0].index() as u32, ProfileKind::Join, true, 1, 1);
        let snap = prof.snapshot();

        let folded = folded_stacks(&program, &network, &snap);
        let expected = format!(
            "hot;join:{a} 7\nhot;join:{a};join:{b} 4\n\
             hot;join:{a};join:{b};term:{t} 1\ncold;join:{c} 2\n",
            a = j(0),
            b = j(1),
            t = network.terminal(hot).index(),
            c = cold_chain[0].index()
        );
        assert_eq!(folded, expected);
    }
}
