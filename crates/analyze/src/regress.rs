//! Noise-aware performance-regression detection over paired samples.
//!
//! The trajectory plane records per-rep elapsed times for every preset
//! (`results/bench_history.jsonl`); the `perf_gate` binary re-measures
//! the same workloads and asks this module whether the change is a
//! *confirmed* regression or runner noise. The discipline mirrors the
//! PR 6 profiler-overhead gate: pair samples, summarize paired deltas
//! with robust statistics, and demand agreement from several
//! independent criteria before failing a build.
//!
//! Samples from the two runs are paired by **order statistic** (both
//! vectors sorted, rank *i* against rank *i*): the runs happen at
//! different times so true repetition pairing is impossible, but
//! order-statistic pairing compares like against like — fastest vs
//! fastest, noisiest tail vs noisiest tail — which keeps the paired
//! deltas tight when the underlying distribution is unchanged. A
//! confirmed regression requires **all** of:
//!
//! 1. the median paired relative delta exceeds
//!    [`RegressConfig::median_floor`] (the noise floor),
//! 2. the seeded-bootstrap confidence interval on that median sits
//!    entirely above [`RegressConfig::ci_floor`] — the observed shift
//!    is not explained by resampling variation,
//! 3. at least [`RegressConfig::min_frac_slower`] of the pairs got
//!    slower (a sign / rank criterion — one polluted rep cannot drag
//!    the verdict).
//!
//! A ≥2× slowdown trips all three criteria by an order of magnitude; a
//! machine having a noisy minute trips at most one. [`Verdict::Improved`]
//! applies the same three tests mirrored, so trajectories can celebrate
//! wins with the same confidence they flag losses.

use psm_obs::Rng64;

/// Thresholds and bootstrap parameters for [`compare_paired`].
#[derive(Debug, Clone)]
pub struct RegressConfig {
    /// Median paired relative delta ((cur − base) / base) above which a
    /// slowdown is big enough to matter.
    pub median_floor: f64,
    /// The bootstrap CI on the median delta must sit entirely above
    /// this for a regression (below its negation for an improvement).
    pub ci_floor: f64,
    /// Minimum fraction of pairs that must agree on the direction.
    pub min_frac_slower: f64,
    /// Bootstrap resamples.
    pub bootstrap_iters: usize,
    /// Two-sided confidence level of the bootstrap interval (e.g. 0.95).
    pub confidence: f64,
    /// Bootstrap RNG seed (fixed → the gate is deterministic given the
    /// same samples).
    pub seed: u64,
    /// Fewer paired samples than this yields [`Verdict::Inconclusive`].
    pub min_pairs: usize,
}

impl Default for RegressConfig {
    fn default() -> Self {
        RegressConfig {
            // Shared CI runners routinely jitter single-digit percents;
            // a real hot-path regression worth failing a build moves
            // ≥25%, and the acceptance target (2×) moves 100%.
            median_floor: 0.25,
            ci_floor: 0.10,
            min_frac_slower: 0.75,
            bootstrap_iters: 2000,
            confidence: 0.95,
            seed: 0x9E55_1015_D00D_F00D,
            min_pairs: 4,
        }
    }
}

/// Outcome of one paired comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No confirmed change in either direction.
    Ok,
    /// All three criteria agree the workload got slower.
    Regressed,
    /// All three criteria agree the workload got faster.
    Improved,
    /// Too few samples to say anything.
    Inconclusive,
}

impl Verdict {
    /// Stable lowercase label for JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regressed => "regressed",
            Verdict::Improved => "improved",
            Verdict::Inconclusive => "inconclusive",
        }
    }
}

/// One metric's paired comparison: the numbers behind the verdict, all
/// preserved so `perf_gate.json` can be audited after the fact.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What was compared (preset name, metric label).
    pub metric: String,
    /// Median of the baseline samples.
    pub baseline_median: f64,
    /// Median of the current samples.
    pub current_median: f64,
    /// Number of order-statistic pairs.
    pub pairs: usize,
    /// Median paired relative delta ((cur − base) / base; positive =
    /// slower when samples are times).
    pub median_delta: f64,
    /// Bootstrap CI lower bound on the median delta.
    pub ci_low: f64,
    /// Bootstrap CI upper bound on the median delta.
    pub ci_high: f64,
    /// Fraction of pairs with a positive delta (slower).
    pub frac_slower: f64,
    /// The verdict under the supplied config.
    pub verdict: Verdict,
}

impl Comparison {
    /// The comparison as a JSON object.
    pub fn to_json(&self) -> String {
        use psm_obs::json::{number, push_escaped};
        let mut out = String::with_capacity(256);
        out.push_str("{\"metric\":");
        push_escaped(&mut out, &self.metric);
        out.push_str(&format!(
            ",\"baseline_median\":{},\"current_median\":{},\"pairs\":{},\
             \"median_delta\":{},\"ci_low\":{},\"ci_high\":{},\
             \"frac_slower\":{},\"verdict\":\"{}\"}}",
            number(self.baseline_median),
            number(self.current_median),
            self.pairs,
            number(self.median_delta),
            number(self.ci_low),
            number(self.ci_high),
            number(self.frac_slower),
            self.verdict.label(),
        ));
        out
    }
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Percentile by nearest-rank on a sorted copy, `q` in `[0,1]`.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Compares `current` against `baseline` (both vectors of the same
/// measurement, e.g. per-rep elapsed seconds where **lower is better**)
/// and renders a [`Verdict`] under `cfg`. Samples are paired by order
/// statistic; surplus samples on the longer side are ignored from the
/// slow tail inward, never the fast edge.
pub fn compare_paired(
    metric: &str,
    baseline: &[f64],
    current: &[f64],
    cfg: &RegressConfig,
) -> Comparison {
    let mut base: Vec<f64> = baseline.iter().copied().filter(|v| *v > 0.0).collect();
    let mut cur: Vec<f64> = current.iter().copied().filter(|v| *v > 0.0).collect();
    base.sort_by(f64::total_cmp);
    cur.sort_by(f64::total_cmp);
    let n = base.len().min(cur.len());
    let baseline_median = median(&base);
    let current_median = median(&cur);
    if n < cfg.min_pairs {
        return Comparison {
            metric: metric.to_string(),
            baseline_median,
            current_median,
            pairs: n,
            median_delta: 0.0,
            ci_low: 0.0,
            ci_high: 0.0,
            frac_slower: 0.0,
            verdict: Verdict::Inconclusive,
        };
    }
    let deltas: Vec<f64> = (0..n).map(|i| (cur[i] - base[i]) / base[i]).collect();
    let median_delta = median(&deltas);
    let frac_slower = deltas.iter().filter(|d| **d > 0.0).count() as f64 / n as f64;

    // Seeded bootstrap over the paired deltas: resample n pairs with
    // replacement, take the median, and read the two-sided interval
    // off the resampled medians.
    let mut rng = Rng64::new(cfg.seed);
    let mut medians = Vec::with_capacity(cfg.bootstrap_iters);
    let mut resample = vec![0.0f64; n];
    for _ in 0..cfg.bootstrap_iters {
        for slot in resample.iter_mut() {
            *slot = deltas[(rng.next_u64() % n as u64) as usize];
        }
        medians.push(median(&resample));
    }
    medians.sort_by(f64::total_cmp);
    let alpha = (1.0 - cfg.confidence) / 2.0;
    let ci_low = percentile(&medians, alpha);
    let ci_high = percentile(&medians, 1.0 - alpha);

    let regressed = median_delta >= cfg.median_floor
        && ci_low >= cfg.ci_floor
        && frac_slower >= cfg.min_frac_slower;
    // Mirrored criteria; relative deltas are asymmetric (a 2× slowdown
    // is +1.0, the matching speed-up is −0.5) so the improvement floors
    // are halved.
    let improved = median_delta <= -cfg.median_floor / 2.0
        && ci_high <= -cfg.ci_floor / 2.0
        && (1.0 - frac_slower) >= cfg.min_frac_slower;
    let verdict = if regressed {
        Verdict::Regressed
    } else if improved {
        Verdict::Improved
    } else {
        Verdict::Ok
    };
    Comparison {
        metric: metric.to_string(),
        baseline_median,
        current_median,
        pairs: n,
        median_delta,
        ci_low,
        ci_high,
        frac_slower,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noisy samples around `center` with ±`jitter`
    /// relative spread.
    fn noisy(center: f64, jitter: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng64::new(seed);
        (0..n)
            .map(|_| {
                let u = (rng.next_u64() % 10_000) as f64 / 10_000.0; // [0,1)
                center * (1.0 + jitter * (2.0 * u - 1.0))
            })
            .collect()
    }

    #[test]
    fn unchanged_code_is_ok_across_many_seeds() {
        let cfg = RegressConfig::default();
        // 40 independent "CI runs" of unchanged code with 8% jitter:
        // none may flake to Regressed.
        for seed in 0..40u64 {
            let base = noisy(0.100, 0.08, 7, 1000 + seed);
            let cur = noisy(0.100, 0.08, 7, 2000 + seed);
            let c = compare_paired("same", &base, &cur, &cfg);
            assert_ne!(c.verdict, Verdict::Regressed, "seed {seed} flaked: {c:?}");
        }
    }

    #[test]
    fn two_x_slowdown_is_confirmed() {
        let cfg = RegressConfig::default();
        for seed in 0..10u64 {
            let base = noisy(0.100, 0.08, 7, 3000 + seed);
            let cur = noisy(0.200, 0.08, 7, 4000 + seed);
            let c = compare_paired("slow", &base, &cur, &cfg);
            assert_eq!(c.verdict, Verdict::Regressed, "seed {seed}: {c:?}");
            assert!(c.median_delta > 0.5);
            assert!(c.ci_low > cfg.ci_floor);
        }
    }

    #[test]
    fn halved_time_is_improved() {
        let cfg = RegressConfig::default();
        let base = noisy(0.200, 0.05, 9, 7);
        let cur = noisy(0.100, 0.05, 9, 8);
        let c = compare_paired("fast", &base, &cur, &cfg);
        assert_eq!(c.verdict, Verdict::Improved);
        assert!(c.median_delta < -0.3);
    }

    #[test]
    fn single_polluted_rep_does_not_regress() {
        let cfg = RegressConfig::default();
        let base = noisy(0.100, 0.03, 7, 11);
        let mut cur = noisy(0.100, 0.03, 7, 12);
        cur[3] *= 10.0; // one rep hit a noisy neighbour
        let c = compare_paired("spike", &base, &cur, &cfg);
        assert_ne!(c.verdict, Verdict::Regressed, "{c:?}");
    }

    #[test]
    fn too_few_pairs_is_inconclusive() {
        let cfg = RegressConfig::default();
        let c = compare_paired("tiny", &[0.1, 0.1], &[0.3, 0.3], &cfg);
        assert_eq!(c.verdict, Verdict::Inconclusive);
        assert_eq!(c.pairs, 2);
    }

    #[test]
    fn comparison_json_is_parseable_and_deterministic() {
        let cfg = RegressConfig::default();
        let base = noisy(0.1, 0.05, 7, 21);
        let cur = noisy(0.25, 0.05, 7, 22);
        let a = compare_paired("vt", &base, &cur, &cfg);
        let b = compare_paired("vt", &base, &cur, &cfg);
        assert_eq!(a.ci_low, b.ci_low, "fixed seed → deterministic CI");
        let j = a.to_json();
        assert!(j.contains("\"metric\":\"vt\""));
        assert!(j.contains("\"verdict\":\"regressed\""));
        assert!(
            psm_telemetry_free_parse(&j),
            "JSON must be machine-readable"
        );
    }

    /// Cheap well-formedness check without depending on psm-telemetry's
    /// parser (analyze must not depend on telemetry).
    fn psm_telemetry_free_parse(j: &str) -> bool {
        j.starts_with('{') && j.ends_with('}') && j.matches('{').count() == j.matches('}').count()
    }

    #[test]
    fn nonpositive_samples_are_dropped() {
        let cfg = RegressConfig {
            min_pairs: 2,
            ..RegressConfig::default()
        };
        let c = compare_paired("z", &[0.0, 0.1, 0.1, -1.0], &[0.1, 0.1], &cfg);
        assert_eq!(c.pairs, 2);
    }
}
