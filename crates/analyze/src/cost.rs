//! Static cost model over a compiled [`rete::Network`].
//!
//! The paper's parallelism conclusions rest on quantities the repo
//! otherwise measures dynamically: per-production affect sets (§4), node
//! sharing, and the Rete/TREAT/Oflazer state spectrum (§3.2). This
//! module estimates all of them from program text alone.
//!
//! The estimation chain:
//!
//! 1. **Selectivity** — for every `(class, attribute)` pair the model
//!    collects the constants the program itself tests (the observable
//!    value domain) and assigns each alpha test a pass probability:
//!    `=` → `1/d`, `<>` → `1 − 1/d`, inequalities → `1/2`,
//!    `<< k … >>` → `k/d`, presence → `1`.
//! 2. **Alpha occupancy** — CE *i*'s expected alpha-memory size is
//!    `m_i = |WM| · w(class_i) · sel_i` with `w` a class-frequency prior
//!    (uniform unless the caller knows better).
//! 3. **Token flow** — the expected tokens surviving CE *i*'s join is
//!    `x_i = m_i · jsel_i`, `jsel` the product of its join-test
//!    selectivities. Beta-memory state is the sum of prefix products
//!    `Π_{k≤j} x_k` (Rete stores exactly the prefix combinations),
//!    and Oflazer's state is `Π(1 + x_i) − 1` (every CE subset, §3.2).
//!    Prefixes are a subset of subsets, so the model *structurally*
//!    guarantees the paper's `TREAT ≤ Rete ≤ Oflazer` state ordering.
//! 4. **Cost variance** — a WME change hitting CE *i* scans the left
//!    memory of its join, so production cost per change is
//!    `Σ_i w_i·sel_i·(1 + Π_{k<i} x_k)`. The spread of this quantity
//!    across productions is the §4 skew that caps production
//!    parallelism near 5-fold.

use std::collections::HashMap;

use ops5::{PredOp, Program, SymbolId, Value};
use rete::{AlphaId, AlphaTest, Network};

/// Tunables of the static model.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Expected stable working-memory size (paper §3.1's `s`).
    pub wm_size: f64,
    /// Class-frequency prior; uniform over the program's classes when
    /// empty. Keys are class symbols, values need not be normalized.
    pub class_weights: HashMap<SymbolId, f64>,
    /// Pass probability of an equality join test whose attribute has no
    /// observable constant domain (the common case: join attributes are
    /// only ever tested against variables).
    pub default_join_selectivity: f64,
    /// Measured join selectivities keyed by `(production index, CE
    /// index)`, overriding the static per-test product for that CE's
    /// two-input node. Populated by the profiler-driven calibration pass
    /// ([`crate::calibrate`]); empty means fully static predictions.
    pub join_selectivity_overrides: HashMap<(usize, usize), f64>,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            wm_size: 100.0,
            class_weights: HashMap::new(),
            default_join_selectivity: 0.05,
            join_selectivity_overrides: HashMap::new(),
        }
    }
}

/// Predicted match-state sizes (in stored tokens/WMEs) for the §3.2
/// algorithm spectrum.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StateEstimates {
    /// No state saved between cycles.
    pub naive: f64,
    /// Alpha memories only.
    pub treat: f64,
    /// Alpha memories + prefix-combination beta memories.
    pub rete: f64,
    /// Alpha memories + every CE-subset combination.
    pub oflazer: f64,
}

impl StateEstimates {
    /// True when the estimates respect the paper's §3.2 ordering.
    pub fn ordered(&self) -> bool {
        self.naive <= self.treat && self.treat <= self.rete && self.rete <= self.oflazer
    }
}

/// Static estimates for one production.
#[derive(Debug, Clone)]
pub struct ProductionCost {
    /// Production name.
    pub name: String,
    /// Probability a random WME change affects this production (matches
    /// at least one CE's alpha pattern) — the §4 affect-set estimate.
    pub affect_prob: f64,
    /// Expected match work per WME change (left-memory scans), the
    /// quantity whose skew caps production parallelism.
    pub cost_per_change: f64,
    /// Per-production state estimates.
    pub state: StateEstimates,
    /// Two-input nodes a token traverses (equals the CE count).
    pub chain_depth: usize,
    /// Largest join fan-in (number of join tests at one node).
    pub max_join_tests: usize,
}

/// Skew statistics over the per-production static costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostSkew {
    /// Mean static cost per change.
    pub mean: f64,
    /// Coefficient of variation (σ/µ) of the cost distribution.
    pub cv: f64,
    /// Max cost over mean cost.
    pub max_over_mean: f64,
    /// Participation ratio `(Σc)²/Σc²` — the effective number of
    /// productions sharing the work, a static bound on production
    /// parallelism (the paper measures ~5.1 on average, §4).
    pub effective_parallelism: f64,
}

/// The full static report for one program/network pair.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Per-production estimates, in [`ops5::ProductionId`] order.
    pub productions: Vec<ProductionCost>,
    /// Network-level state estimates (alpha memories deduplicated
    /// through sharing; beta state summed per production).
    pub network_state: StateEstimates,
    /// Fraction of two-input node requests satisfied by sharing.
    pub join_sharing: f64,
    /// Fraction of alpha node requests satisfied by sharing.
    pub alpha_sharing: f64,
    /// Skew of the per-production cost distribution.
    pub skew: CostSkew,
}

impl CostReport {
    /// Normalized predicted activation shares, in production order.
    pub fn predicted_shares(&self) -> Vec<f64> {
        let total: f64 = self.productions.iter().map(|p| p.affect_prob).sum();
        self.productions
            .iter()
            .map(|p| {
                if total > 0.0 {
                    p.affect_prob / total
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// Observable constant domains per `(class, attribute)`.
struct Domains(HashMap<(SymbolId, SymbolId), Vec<Value>>);

impl Domains {
    fn collect(network: &Network) -> Domains {
        let mut map: HashMap<(SymbolId, SymbolId), Vec<Value>> = HashMap::new();
        let mut note = |class: SymbolId, attr: SymbolId, value: Value| {
            let values = map.entry((class, attr)).or_default();
            if !values.contains(&value) {
                values.push(value);
            }
        };
        for node in &network.alpha.nodes {
            for test in &node.tests {
                match test {
                    AlphaTest::Const { attr, value, .. } => note(node.class, *attr, *value),
                    AlphaTest::Disj { attr, values } => {
                        for v in values {
                            note(node.class, *attr, *v);
                        }
                    }
                    _ => {}
                }
            }
        }
        Domains(map)
    }

    /// Observable domain size; at least 2 (a domain of one constant
    /// still distinguishes match from mismatch).
    fn size(&self, class: SymbolId, attr: SymbolId) -> f64 {
        self.0
            .get(&(class, attr))
            .map_or(2.0, |v| (v.len() as f64).max(2.0))
    }
}

fn alpha_test_selectivity(class: SymbolId, test: &AlphaTest, domains: &Domains) -> f64 {
    match test {
        AlphaTest::Const { attr, op, .. } => {
            let d = domains.size(class, *attr);
            match op {
                PredOp::Eq => 1.0 / d,
                PredOp::Ne => 1.0 - 1.0 / d,
                PredOp::SameType => 1.0,
                _ => 0.5,
            }
        }
        AlphaTest::Disj { attr, values } => {
            let d = domains.size(class, *attr);
            (values.len() as f64 / d).min(1.0)
        }
        AlphaTest::AttrCmp { attr, op, .. } => {
            let d = domains.size(class, *attr);
            match op {
                PredOp::Eq => 1.0 / d,
                PredOp::Ne => 1.0 - 1.0 / d,
                PredOp::SameType => 1.0,
                _ => 0.5,
            }
        }
        AlphaTest::Present { .. } => 1.0,
    }
}

fn alpha_selectivity(network: &Network, alpha: AlphaId, domains: &Domains) -> f64 {
    let node = network.alpha.node(alpha);
    node.tests
        .iter()
        .map(|t| alpha_test_selectivity(node.class, t, domains))
        .product()
}

/// Static join selectivity for production `pid_index`'s CE `ce_index`:
/// the calibrated override when one exists, otherwise the product of
/// the CE's join-test selectivities.
fn join_selectivity(
    network: &Network,
    params: &CostParams,
    domains: &Domains,
    pid_index: usize,
    ce_index: usize,
) -> f64 {
    if let Some(&m) = params
        .join_selectivity_overrides
        .get(&(pid_index, ce_index))
    {
        return m;
    }
    let alpha = network.ce_alpha[pid_index][ce_index];
    network.ce_tests[pid_index][ce_index]
        .iter()
        .map(|t| match t.op {
            PredOp::Eq => {
                let d = domains.size(network.alpha.node(alpha).class, t.own_attr);
                // Join attributes usually have no constant domain; fall
                // back to the configured prior.
                if d > 2.0 {
                    1.0 / d
                } else {
                    params.default_join_selectivity
                }
            }
            PredOp::Ne => 1.0 - params.default_join_selectivity,
            PredOp::SameType => 1.0,
            _ => 0.5,
        })
        .product()
}

/// The model's per-CE join selectivities, in production order then full
/// CE order — the quantities the profiler measures directly as
/// `tokens_out / pairs_compared` and the calibration pass corrects.
/// Honors any overrides already present in `params`.
pub fn predicted_join_selectivities(
    program: &Program,
    network: &Network,
    params: &CostParams,
) -> Vec<Vec<f64>> {
    let domains = Domains::collect(network);
    program
        .productions
        .iter()
        .map(|p| {
            (0..p.ces.len())
                .map(|i| join_selectivity(network, params, &domains, p.id.index(), i))
                .collect()
        })
        .collect()
}

/// Runs the static cost model.
pub fn analyze_cost(program: &Program, network: &Network, params: &CostParams) -> CostReport {
    let domains = Domains::collect(network);

    // Class-frequency prior, normalized over classes the network tests.
    let mut classes: Vec<SymbolId> = network.alpha.nodes.iter().map(|n| n.class).collect();
    classes.sort_unstable();
    classes.dedup();
    let raw: Vec<f64> = classes
        .iter()
        .map(|c| params.class_weights.get(c).copied().unwrap_or(1.0))
        .collect();
    let total_w: f64 = raw.iter().sum();
    let weight: HashMap<SymbolId, f64> = classes
        .iter()
        .zip(&raw)
        .map(|(c, w)| (*c, if total_w > 0.0 { w / total_w } else { 0.0 }))
        .collect();

    // Expected occupancy of each (shared) alpha memory.
    let alpha_m: Vec<f64> = (0..network.alpha.len())
        .map(|i| {
            let id = AlphaId(i as u32);
            let node = network.alpha.node(id);
            let w = weight.get(&node.class).copied().unwrap_or(0.0);
            params.wm_size * w * alpha_selectivity(network, id, &domains)
        })
        .collect();

    let mut productions = Vec::with_capacity(program.productions.len());
    let mut network_beta = 0.0;
    let mut network_subsets = 0.0;
    for p in &program.productions {
        let pid = p.id;
        let alphas = &network.ce_alpha[pid.index()];
        let tests = &network.ce_tests[pid.index()];

        // Affect probability: WME matches at least one CE pattern.
        let mut miss = 1.0;
        let mut hit_rates = Vec::with_capacity(p.ces.len());
        for &a in alphas {
            let node = network.alpha.node(a);
            let w = weight.get(&node.class).copied().unwrap_or(0.0);
            let rate = w * alpha_selectivity(network, a, &domains);
            hit_rates.push(rate);
            miss *= 1.0 - rate.min(1.0);
        }
        let affect_prob = 1.0 - miss;

        // Token flow through the positive-CE join chain.
        let mut xs: Vec<f64> = Vec::new(); // x_i per positive CE
        let mut treat = 0.0;
        let mut max_join_tests = 0;
        for (i, ce) in p.ces.iter().enumerate() {
            let m = alpha_m[alphas[i].index()];
            treat += m;
            let jsel = join_selectivity(network, params, &domains, pid.index(), i);
            max_join_tests = max_join_tests.max(tests[i].len());
            if !ce.negated {
                xs.push(m * jsel.min(1.0));
            }
        }

        // Rete beta state: prefix products of length >= 2 (length-1
        // "combinations" are the alpha memories, already in `treat`).
        let mut beta = 0.0;
        let mut prefix = 1.0;
        for (j, &x) in xs.iter().enumerate() {
            prefix *= x;
            if j >= 1 {
                beta += prefix;
            }
        }
        // Oflazer state: every subset of size >= 2 — the closed form
        // Π(1+x) − 1 − Σx. Prefix products are a subset of subset
        // products, so `subsets >= beta` holds term by term.
        let product: f64 = xs.iter().map(|x| 1.0 + x).product();
        let subsets = (product - 1.0 - xs.iter().sum::<f64>()).max(beta);

        let state = StateEstimates {
            naive: 0.0,
            treat,
            rete: treat + beta,
            oflazer: treat + subsets,
        };
        network_beta += beta;
        network_subsets += subsets;

        // Cost per change: hitting CE i scans the left memory of join i
        // (size = product of earlier x's; 1 for the dummy top memory).
        let mut cost = 0.0;
        let mut left: f64 = 1.0;
        let mut positive_seen = 0;
        for (i, ce) in p.ces.iter().enumerate() {
            cost += hit_rates[i].min(1.0) * left.max(1.0);
            if !ce.negated {
                left = xs[..=positive_seen].iter().product();
                positive_seen += 1;
            }
        }

        productions.push(ProductionCost {
            name: p.name.clone(),
            affect_prob,
            cost_per_change: cost,
            state,
            chain_depth: network.beta_chain_depth(pid),
            max_join_tests,
        });
    }

    // Network-level state: shared alpha memories counted once.
    let network_treat: f64 = alpha_m.iter().sum();
    let network_state = StateEstimates {
        naive: 0.0,
        treat: network_treat,
        rete: network_treat + network_beta,
        oflazer: network_treat + network_subsets,
    };

    let stats = &network.stats;
    let join_sharing = stats.join_sharing_ratio();
    let alpha_sharing = if stats.alpha_requests > 0 {
        1.0 - stats.alpha_nodes as f64 / stats.alpha_requests as f64
    } else {
        0.0
    };

    let costs: Vec<f64> = productions.iter().map(|p| p.cost_per_change).collect();
    let skew = skew_of(&costs);

    CostReport {
        productions,
        network_state,
        join_sharing,
        alpha_sharing,
        skew,
    }
}

fn skew_of(costs: &[f64]) -> CostSkew {
    let n = costs.len() as f64;
    if n == 0.0 {
        return CostSkew::default();
    }
    let sum: f64 = costs.iter().sum();
    let mean = sum / n;
    let var = costs.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n;
    let sum_sq: f64 = costs.iter().map(|c| c * c).sum();
    let max = costs.iter().cloned().fold(0.0f64, f64::max);
    CostSkew {
        mean,
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        max_over_mean: if mean > 0.0 { max / mean } else { 0.0 },
        effective_parallelism: if sum_sq > 0.0 {
            sum * sum / sum_sq
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::parse_program;

    fn report(src: &str, params: &CostParams) -> CostReport {
        let program = parse_program(src).unwrap();
        let network = Network::compile(&program).unwrap();
        analyze_cost(&program, &network, params)
    }

    #[test]
    fn state_ordering_holds_per_production_and_network() {
        let r = report(
            "(p a (x ^k 1 ^v <j>) (y ^v <j>) (z ^v <j>) --> (halt))\n\
             (p b (x ^k 2 ^v <j>) - (y ^w <j>) --> (halt))",
            &CostParams::default(),
        );
        for p in &r.productions {
            assert!(p.state.ordered(), "{}: {:?}", p.name, p.state);
        }
        assert!(r.network_state.ordered());
        assert!(r.network_state.treat > 0.0);
        assert!(r.network_state.rete > r.network_state.treat);
    }

    #[test]
    fn selective_tests_shrink_affect_probability() {
        // `^k 1` vs the same pattern with presence only.
        let r = report(
            "(p tight (x ^k 1 ^a 2 ^b 3) --> (halt))\n\
             (p loose (x ^k <v>) --> (halt))",
            &CostParams::default(),
        );
        assert!(
            r.productions[0].affect_prob < r.productions[1].affect_prob,
            "{:?}",
            r.productions
                .iter()
                .map(|p| p.affect_prob)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn predicted_shares_sum_to_one() {
        let r = report(
            "(p a (x ^k 1) --> (halt))\n(p b (y ^k 1) --> (halt))",
            &CostParams::default(),
        );
        let total: f64 = r.predicted_shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sharing_factors_are_in_range() {
        let r = report(
            "(p a (x ^k 1) (y ^v <j>) --> (halt))\n\
             (p b (x ^k 1) (y ^v <j>) --> (halt))",
            &CostParams::default(),
        );
        assert!(r.join_sharing > 0.0 && r.join_sharing < 1.0);
        assert!(r.alpha_sharing > 0.0 && r.alpha_sharing < 1.0);
    }

    #[test]
    fn skew_statistics_reflect_concentration() {
        let even = skew_of(&[1.0, 1.0, 1.0, 1.0]);
        assert!((even.effective_parallelism - 4.0).abs() < 1e-9);
        assert!(even.cv.abs() < 1e-9);
        let skewed = skew_of(&[8.0, 1.0, 1.0, 1.0]);
        assert!(skewed.effective_parallelism < 2.0);
        assert!(skewed.max_over_mean > 2.0);
    }

    #[test]
    fn class_weights_shift_affect_estimates() {
        let program =
            parse_program("(p a (hot ^k 1) --> (halt))\n(p b (cold ^k 1) --> (halt))").unwrap();
        let network = Network::compile(&program).unwrap();
        let hot = program.symbols.lookup("hot").unwrap();
        let mut params = CostParams::default();
        params.class_weights.insert(hot, 10.0);
        let r = analyze_cost(&program, &network, &params);
        assert!(r.productions[0].affect_prob > r.productions[1].affect_prob);
    }

    #[test]
    fn deeper_chains_report_more_depth() {
        let r = report(
            "(p shallow (x ^v <j>) (y ^v <j>) --> (halt))\n\
             (p deep (x ^v <j>) (y ^v <j>) (z ^v <j>) (w ^v <j>) --> (halt))",
            &CostParams::default(),
        );
        assert_eq!(r.productions[0].chain_depth, 2);
        assert_eq!(r.productions[1].chain_depth, 4);
        assert!(r.productions[1].state.rete >= r.productions[0].state.rete);
    }
}
