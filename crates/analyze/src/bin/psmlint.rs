//! `psmlint` — static analysis CLI for OPS5 programs.
//!
//! ```text
//! psmlint [--json] [--cost] [--interference] [--presets] [--fixtures] [FILES...]
//! ```
//!
//! * `FILES...` — OPS5 source files to lint (and cost-model with
//!   `--cost`).
//! * `--presets` — lint every generated workload preset; any
//!   error-severity diagnostic fails the run (the CI gate).
//! * `--fixtures` — build each seeded-defect fixture and require its
//!   expected lint code to fire (the analyzer's own regression net).
//! * `--cost` — also print the static cost model per program.
//! * `--interference` — also compute the inter-production interference
//!   relation and parallel-firing compatibility density per program,
//!   and write the dependency graph to
//!   `results/<unit>.interference.dot`.
//! * `--json` — machine-readable output (one JSON object, carrying a
//!   stable `schema_version`; units and diagnostics are emitted in a
//!   deterministic order so CI diffs are stable).
//!
//! Exit status: 0 clean, 1 on any error-severity diagnostic, missed
//! fixture, or unreadable/unparsable input.

use std::process::ExitCode;

use ops5::{parse_program_lenient, Program};
use psm_analyze::{
    analyze_cost, analyze_interference, lint_program, CostParams, Diagnostic, InterferenceAnalysis,
    Severity,
};
use psm_obs::json::{number, push_escaped};
use rete::Network;

struct Options {
    json: bool,
    cost: bool,
    interference: bool,
    presets: bool,
    fixtures: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        cost: false,
        interference: false,
        presets: false,
        fixtures: false,
        files: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--cost" => opts.cost = true,
            "--interference" => opts.interference = true,
            "--presets" => opts.presets = true,
            "--fixtures" => opts.fixtures = true,
            "--help" | "-h" => {
                return Err(
                    "usage: psmlint [--json] [--cost] [--interference] [--presets] [--fixtures] [FILES...]"
                        .to_string(),
                )
            }
            f if !f.starts_with('-') => opts.files.push(f.to_string()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if !opts.presets && !opts.fixtures && opts.files.is_empty() {
        return Err("nothing to lint: pass FILES, --presets, or --fixtures".to_string());
    }
    Ok(opts)
}

/// One analyzed unit: a named program with its diagnostics.
struct Analyzed {
    name: String,
    diagnostics: Vec<Diagnostic>,
    cost_lines: Vec<String>,
    interference: Option<InterferenceAnalysis>,
}

fn analyze(name: &str, program: &Program, opts: &Options) -> Analyzed {
    let with_cost = opts.cost;
    let diagnostics = lint_program(program);
    let mut cost_lines = Vec::new();
    if with_cost {
        match Network::compile(program) {
            Ok(network) => {
                let report = analyze_cost(program, &network, &CostParams::default());
                let s = report.network_state;
                cost_lines.push(format!(
                    "state estimate: treat {:.1} <= rete {:.1} <= oflazer {:.1}",
                    s.treat, s.rete, s.oflazer
                ));
                cost_lines.push(format!(
                    "sharing: alpha {:.0}% join {:.0}%   skew: cv {:.2} effective parallelism {:.1}",
                    100.0 * report.alpha_sharing,
                    100.0 * report.join_sharing,
                    report.skew.cv,
                    report.skew.effective_parallelism
                ));
                for (p, share) in report.productions.iter().zip(report.predicted_shares()) {
                    cost_lines.push(format!(
                        "  {:<24} share {:>5.1}%  depth {}  cost {:.2}",
                        p.name,
                        100.0 * share,
                        p.chain_depth,
                        p.cost_per_change
                    ));
                }
            }
            Err(e) => cost_lines.push(format!("cost model unavailable (compile failed): {e}")),
        }
    }
    Analyzed {
        name: name.to_string(),
        diagnostics,
        cost_lines,
        interference: opts.interference.then(|| analyze_interference(program)),
    }
}

/// File-name-safe artifact stem for a unit name. Preset units drop
/// their `preset:` prefix so the DOT lands under the same canonical
/// name `interference_report` uses (`results/<preset>.interference.dot`)
/// instead of a near-empty `preset-<preset>` duplicate; everything else
/// is sanitized character-wise (`fixture:x` → `fixture-x`).
fn artifact_stem(name: &str) -> String {
    name.strip_prefix("preset:")
        .unwrap_or(name)
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

fn emit_text(units: &[Analyzed]) {
    for unit in units {
        if units.len() > 1 || !unit.cost_lines.is_empty() {
            println!("== {} ==", unit.name);
        }
        if unit.diagnostics.is_empty() {
            println!("clean: no diagnostics");
        }
        for d in &unit.diagnostics {
            println!("{}", d.render());
        }
        for line in &unit.cost_lines {
            println!("{line}");
        }
        if let Some(ia) = &unit.interference {
            println!(
                "interference: {} rules, {} conflicting pairs, compatibility density {:.3}",
                ia.rules(),
                ia.pairs.len(),
                ia.density()
            );
        }
    }
}

fn emit_json(units: &[Analyzed], fixture_failures: &[String]) {
    // Deterministic CI diffs: units sorted by name, diagnostics by
    // (code, production, ce) within each unit.
    let mut ordered: Vec<&Analyzed> = units.iter().collect();
    ordered.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::from("{\"schema_version\":1,\"units\":[");
    for (i, unit) in ordered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_escaped(&mut out, &unit.name);
        out.push_str(",\"diagnostics\":[");
        let mut diags: Vec<&Diagnostic> = unit.diagnostics.iter().collect();
        diags.sort_by(|a, b| (a.code, &a.production, a.ce).cmp(&(b.code, &b.production, b.ce)));
        for (j, d) in diags.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push(']');
        if let Some(ia) = &unit.interference {
            out.push_str(",\"interference\":");
            out.push_str(&ia.to_json(true));
        }
        out.push('}');
    }
    out.push_str("],\"fixture_failures\":[");
    for (i, f) in fixture_failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, f);
    }
    out.push_str("],\"errors\":");
    let errors = units
        .iter()
        .flat_map(|u| &u.diagnostics)
        .filter(|d| d.severity == Severity::Error)
        .count();
    out.push_str(&number(errors as f64));
    out.push('}');
    println!("{out}");
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut units = Vec::new();
    let mut failed = false;

    for path in &opts.files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("psmlint: cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        // Lenient parse: `literalize` violations become PSM010
        // diagnostics (all of them) instead of a parse abort at the
        // first one.
        match parse_program_lenient(&src) {
            Ok(program) => units.push(analyze(path, &program, &opts)),
            Err(e) => {
                eprintln!("psmlint: {path}: parse error: {e}");
                failed = true;
            }
        }
    }

    if opts.presets {
        for preset in workloads::Preset::all() {
            let spec = preset.spec_small();
            match workloads::GeneratedWorkload::generate(spec) {
                Ok(w) => units.push(analyze(
                    &format!("preset:{}", preset.name()),
                    &w.program,
                    &opts,
                )),
                Err(e) => {
                    eprintln!("psmlint: preset {} failed to generate: {e}", preset.name());
                    failed = true;
                }
            }
        }
    }

    let mut fixture_failures = Vec::new();
    if opts.fixtures {
        for fx in workloads::fixtures::all() {
            let program = (fx.build)();
            let diagnostics = lint_program(&program);
            let hit = diagnostics.iter().any(|d| d.code == fx.expected_code);
            if !hit {
                fixture_failures.push(format!(
                    "fixture {} did not trigger {}",
                    fx.name, fx.expected_code
                ));
            }
            units.push(Analyzed {
                name: format!("fixture:{}", fx.name),
                diagnostics,
                cost_lines: Vec::new(),
                interference: None,
            });
        }
    }

    // Dependency graphs ride along as DOT files (CI uploads them as
    // artifacts next to the JSON report).
    if opts.interference {
        if let Err(e) = std::fs::create_dir_all("results") {
            eprintln!("psmlint: cannot create results/: {e}");
            failed = true;
        }
        for unit in &units {
            let Some(ia) = &unit.interference else {
                continue;
            };
            let path = format!("results/{}.interference.dot", artifact_stem(&unit.name));
            if let Err(e) = std::fs::write(&path, ia.to_dot()) {
                eprintln!("psmlint: cannot write {path}: {e}");
                failed = true;
            }
        }
    }

    let errors = units
        .iter()
        .flat_map(|u| &u.diagnostics)
        .filter(|d| d.severity == Severity::Error)
        .count();
    // Fixtures are *supposed* to contain errors; only non-fixture units
    // gate on severity.
    let gating_errors = units
        .iter()
        .filter(|u| !u.name.starts_with("fixture:"))
        .flat_map(|u| &u.diagnostics)
        .filter(|d| d.severity == Severity::Error)
        .count();

    if opts.json {
        emit_json(&units, &fixture_failures);
    } else {
        emit_text(&units);
        for f in &fixture_failures {
            eprintln!("FAIL: {f}");
        }
        if opts.fixtures && fixture_failures.is_empty() {
            println!(
                "fixtures: {} checked, all triggered their expected codes",
                units
                    .iter()
                    .filter(|u| u.name.starts_with("fixture:"))
                    .count()
            );
        }
        if opts.presets {
            println!("presets: {gating_errors} error-severity diagnostics (gate: 0)");
        }
        let _ = errors;
    }

    if failed || gating_errors > 0 || !fixture_failures.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
