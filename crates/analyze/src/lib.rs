//! # psm-analyze — static lints and cost model for OPS5 programs
//!
//! The paper's central argument is quantitative: production-system
//! parallelism is capped by *measured program structure* — small affect
//! sets (§4), skewed per-production costs, and the state/work trade-off
//! across match algorithms (§3.2). This crate computes those quantities
//! *statically*, before a program ever runs:
//!
//! * [`lint`] — semantic lints over the OPS5 AST. Fifteen checks
//!   (`PSM001`–`PSM015`) catch unbound variables, contradictory tests,
//!   unsatisfiable joins, dead negations, never-fireable productions,
//!   duplicate/subsumed LHSs, unused bindings, undeclared attributes,
//!   and — via the interference footprints — always-conflicting write
//!   sets, self-retrigger loops, dead rules, shadowed rules, and
//!   retracts of negated patterns. Each diagnostic has a stable code, a
//!   severity, and both human-readable and JSON forms.
//! * [`interference`] — per-production static read/write sets
//!   ([`interference::Touchprint`]s with conservative widening), the
//!   pairwise interference relation (write–write, write–read,
//!   write–negated-read), and the parallel-firing compatibility matrix
//!   with DOT/JSON exports — the act-phase half of the paper's
//!   parallelism argument. [`interference::sanitizer_crosscheck`]
//!   replays a workload with the runtime
//!   [`ops5::effects::WriteSanitizer`] attached and verifies every
//!   actual WME touch falls inside the static write set.
//! * [`cost`] — a static cost model over the compiled [`rete::Network`]:
//!   per-production affect-set estimates, node-sharing factors, beta
//!   chain depth, and predicted state for the §3.2 algorithm spectrum
//!   (TREAT ≤ Rete ≤ Oflazer — the model guarantees the ordering
//!   structurally, because Rete's prefix combinations are a subset of
//!   Oflazer's subset combinations).
//! * [`regress`] — noise-aware performance-regression detection:
//!   order-statistic paired deltas, a seeded bootstrap confidence
//!   interval on the median delta, and a sign criterion, combined so a
//!   seeded 2× slowdown always trips and unchanged code never flakes.
//!   The `perf_gate` bench binary fronts this pass against
//!   `results/bench_history.jsonl`.
//! * [`crosscheck`] — runs the model's predictions against measured
//!   traces (synthetic presets and the real blocks-world program) and
//!   reports the prediction error.
//! * [`calibrate`] — closes the loop: learns measured join
//!   selectivities from the per-node profiler on a seeded run, folds
//!   them back into [`CostParams`] as overrides, validates them against
//!   an independent seed, and exports folded stacks for flamegraphs.
//!   The `psmprof` bench binary fronts this pass.
//!
//! The `psmlint` binary fronts all three and gates CI: seeded-defect
//! fixtures in `workloads::fixtures` must each trigger their expected
//! lint code, and the shipped presets must produce zero error-severity
//! diagnostics.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod calibrate;
pub mod cost;
pub mod crosscheck;
pub mod interference;
pub mod lint;
pub mod regress;

pub use calibrate::{calibrate_workload, folded_stacks, CalibrationReport, JoinCalibration};
pub use cost::{
    analyze_cost, predicted_join_selectivities, CostParams, CostReport, CostSkew, ProductionCost,
    StateEstimates,
};
pub use crosscheck::{
    crosscheck_blocks, crosscheck_workload, params_from_spec, CrosscheckReport, ShareComparison,
};
pub use interference::{
    analyze_interference, footprint, footprints, sanitizer_crosscheck, CrosscheckOutcome,
    InterferenceAnalysis, InterferencePair, ProductionFootprint, Touch, Touchprint,
};
pub use lint::{is_clean, lint_program, Diagnostic, Severity, LINT_CODES};
pub use regress::{compare_paired, Comparison, RegressConfig, Verdict};
