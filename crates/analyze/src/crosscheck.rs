//! Cross-check harness: static predictions vs measured behaviour.
//!
//! The cost model in [`crate::cost`] is only useful if its predictions
//! track what the matcher actually does. This module runs a workload
//! (synthetic preset or the real blocks-world program), records which
//! productions each WME change affected (the paper's §4 affect sets),
//! and compares the measured per-production activation shares against
//! the model's predictions, alongside predicted vs measured match
//! state.

use std::collections::HashMap;

use ops5::{parse_program, parse_wmes, Interpreter, Program};
use rete::{CompileOptions, Network, ReteMatcher, Trace};
use workloads::{capture_trace_with, GeneratedWorkload, WorkloadSpec};

use crate::cost::{analyze_cost, CostParams, CostReport, StateEstimates};

/// Predicted vs measured activation share for one production.
#[derive(Debug, Clone)]
pub struct ShareComparison {
    /// Production name.
    pub production: String,
    /// Model-predicted share of affect-set membership.
    pub predicted: f64,
    /// Measured share (fraction of change×production affect pairs).
    pub measured: f64,
}

impl ShareComparison {
    /// Ratio of the larger share to the smaller (≥ 1); `None` when the
    /// production was never measured as affected (no meaningful ratio).
    pub fn error_factor(&self) -> Option<f64> {
        if self.measured <= 0.0 || self.predicted <= 0.0 {
            return None;
        }
        Some((self.predicted / self.measured).max(self.measured / self.predicted))
    }
}

/// One workload's prediction-vs-measurement comparison.
#[derive(Debug, Clone)]
pub struct CrosscheckReport {
    /// Workload name.
    pub name: String,
    /// Per-production share comparison, in production order.
    pub shares: Vec<ShareComparison>,
    /// The static model's state estimates.
    pub predicted_states: StateEstimates,
    /// Measured peak token count (Rete beta state high-water mark).
    pub measured_peak_tokens: u64,
    /// WME changes observed in the measured run.
    pub measured_changes: usize,
    /// The full static report (for downstream consumers).
    pub cost: CostReport,
}

impl CrosscheckReport {
    /// Largest per-production error factor among productions measured as
    /// affected at least once.
    pub fn max_error_factor(&self) -> f64 {
        self.shares
            .iter()
            .filter_map(ShareComparison::error_factor)
            .fold(1.0, f64::max)
    }

    /// True when every measured production's predicted share is within
    /// `factor` of its measured share.
    pub fn within_factor(&self, factor: f64) -> bool {
        self.max_error_factor() <= factor
    }
}

fn measured_shares(program: &Program, trace: &Trace) -> Vec<f64> {
    let mut counts = vec![0usize; program.productions.len()];
    let mut total = 0usize;
    for cycle in &trace.cycles {
        for change in &cycle.changes {
            for pid in &change.affected_productions {
                counts[pid.index()] += 1;
                total += 1;
            }
        }
    }
    counts
        .iter()
        .map(|&c| {
            if total > 0 {
                c as f64 / total as f64
            } else {
                0.0
            }
        })
        .collect()
}

fn compare(
    name: &str,
    program: &Program,
    network: &Network,
    params: &CostParams,
    trace: &Trace,
    peak_tokens: u64,
) -> CrosscheckReport {
    let cost = analyze_cost(program, network, params);
    let predicted = cost.predicted_shares();
    let measured = measured_shares(program, trace);
    let shares = program
        .productions
        .iter()
        .enumerate()
        .map(|(i, p)| ShareComparison {
            production: p.name.clone(),
            predicted: predicted[i],
            measured: measured[i],
        })
        .collect();
    CrosscheckReport {
        name: name.to_string(),
        shares,
        predicted_states: cost.network_state,
        measured_peak_tokens: peak_tokens,
        measured_changes: trace.total_changes(),
        cost,
    }
}

/// Model parameters implied by a generator spec: the spec documents the
/// WM size, the class-popularity skew, and the join-attribute domain,
/// so the model should use them rather than uninformed defaults.
pub fn params_from_spec(spec: &WorkloadSpec, program: &Program) -> CostParams {
    let mut params = CostParams {
        wm_size: spec.wm_size as f64,
        class_weights: HashMap::new(),
        default_join_selectivity: 1.0 / spec.join_values.max(1) as f64,
        join_selectivity_overrides: HashMap::new(),
    };
    for i in 0..spec.classes {
        if let Some(sym) = program.symbols.lookup(&format!("c{i}")) {
            params
                .class_weights
                .insert(sym, 1.0 / ((i + 1) as f64).powf(spec.hot_exponent));
        }
    }
    params
}

/// Runs a generated workload for `cycles` batches and cross-checks the
/// model against the measured trace.
///
/// # Errors
///
/// Returns [`ops5::Error`] if generation or compilation fails.
pub fn crosscheck_workload(
    spec: WorkloadSpec,
    cycles: u64,
    seed: u64,
) -> Result<CrosscheckReport, ops5::Error> {
    let name = spec.name.clone();
    let workload = GeneratedWorkload::generate(spec)?;
    let params = params_from_spec(&workload.spec, &workload.program);
    let (trace, stats, network) =
        capture_trace_with(&workload, cycles, seed, CompileOptions::default())?;
    Ok(compare(
        &name,
        &workload.program,
        &network,
        &params,
        &trace,
        stats.peak_tokens,
    ))
}

/// Runs the real blocks-world program (`assets/blocks.ops` +
/// `assets/blocks.wm`) to quiescence and cross-checks the model.
///
/// # Errors
///
/// Returns [`ops5::Error`] if the sources fail to parse or compile.
pub fn crosscheck_blocks(src: &str, wm_src: &str) -> Result<CrosscheckReport, ops5::Error> {
    let mut program = parse_program(src)?;
    let initial = parse_wmes(wm_src, &mut program.symbols)?;
    let wm_size = initial.len().max(1) as f64;
    let mut matcher = ReteMatcher::compile(&program)?;
    matcher.enable_tracing();
    let network = std::sync::Arc::clone(matcher.network());
    let mut interp = Interpreter::new(program, matcher);
    interp.insert_all(initial);
    interp.run(10_000)?;
    let trace = interp.matcher_mut().take_trace();
    let stats = interp.matcher_mut().stats();
    let params = CostParams {
        wm_size,
        ..CostParams::default()
    };
    Ok(compare(
        "blocks-world",
        interp.program(),
        &network,
        &params,
        &trace,
        stats.peak_tokens,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Preset;

    #[test]
    fn workload_crosscheck_produces_consistent_report() {
        let spec = Preset::EpSoar.spec_small();
        let r = crosscheck_workload(spec, 30, 7).unwrap();
        assert!(r.measured_changes > 0);
        let predicted_total: f64 = r.shares.iter().map(|s| s.predicted).sum();
        let measured_total: f64 = r.shares.iter().map(|s| s.measured).sum();
        assert!((predicted_total - 1.0).abs() < 1e-6);
        assert!((measured_total - 1.0).abs() < 1e-6);
        assert!(r.predicted_states.ordered());
        assert!(r.max_error_factor() >= 1.0);
    }

    #[test]
    fn params_from_spec_reflect_hot_classes() {
        let spec = Preset::EpSoar.spec_small();
        let workload = GeneratedWorkload::generate(spec).unwrap();
        let params = params_from_spec(&workload.spec, &workload.program);
        let c0 = workload.program.symbols.lookup("c0").unwrap();
        let last = workload
            .program
            .symbols
            .lookup(&format!("c{}", workload.spec.classes - 1))
            .unwrap();
        assert!(params.class_weights[&c0] > params.class_weights[&last]);
    }

    #[test]
    fn blocks_crosscheck_runs_when_assets_exist() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let (Ok(src), Ok(wm)) = (
            std::fs::read_to_string(format!("{root}/assets/blocks.ops")),
            std::fs::read_to_string(format!("{root}/assets/blocks.wm")),
        ) else {
            return;
        };
        let r = crosscheck_blocks(&src, &wm).unwrap();
        assert_eq!(r.shares.len(), 2);
        assert!(r.measured_changes > 0);
        // Acceptance: predicted activation shares within a factor of two
        // of measured on the real program.
        assert!(r.within_factor(2.0), "max error {}", r.max_error_factor());
    }
}
