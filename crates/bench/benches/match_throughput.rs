//! Match throughput of the state-saving spectrum (§3.2): naive vs TREAT
//! vs Rete vs Oflazer on identical change streams. The expected shape:
//! Rete and Oflazer (state savers) dominate; naive is orders of
//! magnitude off; TREAT pays join recomputation.

use baselines::{NaiveMatcher, OflazerMatcher, TreatMatcher};
use ops5::Matcher;
use psm_bench::microbench::bench_batched;
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

const CYCLES: u64 = 25;
const SAMPLES: usize = 10;

fn workload() -> GeneratedWorkload {
    let mut spec = Preset::EpSoar.spec_small();
    spec.wm_size = 60;
    spec.negated_prob = 0.0; // so the Oflazer matcher can play too
    GeneratedWorkload::generate(spec).expect("generates")
}

fn bench_matcher<M: Matcher>(name: &str, workload: &GeneratedWorkload, make: impl Fn() -> M) {
    bench_batched(
        "match_throughput",
        name,
        SAMPLES,
        || {
            let mut m = make();
            let mut d = WorkloadDriver::new(workload.clone(), 3);
            d.init(&mut m);
            (m, d)
        },
        |(mut m, mut d)| d.run_cycles(&mut m, CYCLES),
    );
}

fn main() {
    let w = workload();
    bench_matcher("rete", &w, || {
        ReteMatcher::compile(&w.program).expect("compiles")
    });
    bench_matcher("treat", &w, || {
        TreatMatcher::compile(&w.program).expect("compiles")
    });
    bench_matcher("oflazer", &w, || {
        OflazerMatcher::compile(&w.program).expect("compiles")
    });
    // Naive on a smaller memory: it is O(|WM|^k) per change.
    let mut small = w.spec.clone();
    small.wm_size = 25;
    let w_small = GeneratedWorkload::generate(small).expect("generates");
    bench_matcher("naive(25-wme-wm)", &w_small, || {
        NaiveMatcher::new(&w_small.program)
    });
}
