//! Match throughput of the state-saving spectrum (§3.2): naive vs TREAT
//! vs Rete vs Oflazer on identical change streams. The expected shape:
//! Rete and Oflazer (state savers) dominate; naive is orders of
//! magnitude off; TREAT pays join recomputation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use baselines::{NaiveMatcher, OflazerMatcher, TreatMatcher};
use ops5::Matcher;
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

const CYCLES: u64 = 25;

fn workload() -> GeneratedWorkload {
    let mut spec = Preset::EpSoar.spec_small();
    spec.wm_size = 60;
    spec.negated_prob = 0.0; // so the Oflazer matcher can play too
    GeneratedWorkload::generate(spec).expect("generates")
}

fn bench_matcher<M: Matcher>(
    c: &mut Criterion,
    name: &str,
    workload: &GeneratedWorkload,
    make: impl Fn() -> M,
) {
    let mut group = c.benchmark_group("match_throughput");
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter_batched(
            || {
                let mut m = make();
                let mut d = WorkloadDriver::new(workload.clone(), 3);
                d.init(&mut m);
                (m, d)
            },
            |(mut m, mut d)| d.run_cycles(&mut m, CYCLES),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let w = workload();
    bench_matcher(c, "rete", &w, || {
        ReteMatcher::compile(&w.program).expect("compiles")
    });
    bench_matcher(c, "treat", &w, || {
        TreatMatcher::compile(&w.program).expect("compiles")
    });
    bench_matcher(c, "oflazer", &w, || {
        OflazerMatcher::compile(&w.program).expect("compiles")
    });
    // Naive on a smaller memory: it is O(|WM|^k) per change.
    let mut small = w.spec.clone();
    small.wm_size = 25;
    let w_small = GeneratedWorkload::generate(small).expect("generates");
    bench_matcher(c, "naive(25-wme-wm)", &w_small, || {
        NaiveMatcher::new(&w_small.program)
    });
}

criterion_group!(match_throughput, benches);
criterion_main!(match_throughput);
