//! §4 on real hardware: node-activation-parallel engine versus
//! production-parallel engine versus the sequential baseline, processing
//! identical firing batches.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ops5::Matcher;
use psm_core::{ParallelOptions, ParallelReteMatcher, ProductionParallelMatcher};
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

const CYCLES: u64 = 30;

fn bench_engine<M: Matcher>(
    c: &mut Criterion,
    name: &str,
    workload: &GeneratedWorkload,
    make: impl Fn() -> M,
) {
    let mut group = c.benchmark_group("granularity");
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter_batched(
            || {
                let mut m = make();
                let mut d = WorkloadDriver::new(workload.clone(), 17);
                d.init(&mut m);
                (m, d)
            },
            |(mut m, mut d)| d.run_cycles(&mut m, CYCLES),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let w = GeneratedWorkload::generate(Preset::EpSoar.spec_small()).expect("generates");
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    bench_engine(c, "sequential-rete", &w, || {
        ReteMatcher::compile(&w.program).expect("compiles")
    });
    bench_engine(c, "node-parallel", &w, || {
        ParallelReteMatcher::compile(
            &w.program,
            ParallelOptions {
                threads,
                share: true,
            },
        )
        .expect("compiles")
    });
    bench_engine(c, "production-parallel", &w, || {
        ProductionParallelMatcher::compile(&w.program, threads).expect("compiles")
    });
}

criterion_group!(granularity, benches);
criterion_main!(granularity);
