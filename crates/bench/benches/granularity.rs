//! §4 on real hardware: node-activation-parallel engine versus
//! production-parallel engine versus the sequential baseline, processing
//! identical firing batches.

use ops5::Matcher;
use psm_bench::microbench::bench_batched;
use psm_core::{ParallelOptions, ParallelReteMatcher, ProductionParallelMatcher};
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

const CYCLES: u64 = 30;

fn bench_engine<M: Matcher>(name: &str, workload: &GeneratedWorkload, make: impl Fn() -> M) {
    bench_batched(
        "granularity",
        name,
        10,
        || {
            let mut m = make();
            let mut d = WorkloadDriver::new(workload.clone(), 17);
            d.init(&mut m);
            (m, d)
        },
        |(mut m, mut d)| d.run_cycles(&mut m, CYCLES),
    );
}

fn main() {
    let w = GeneratedWorkload::generate(Preset::EpSoar.spec_small()).expect("generates");
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    bench_engine("sequential-rete", &w, || {
        ReteMatcher::compile(&w.program).expect("compiles")
    });
    bench_engine("node-parallel", &w, || {
        ParallelReteMatcher::compile(
            &w.program,
            ParallelOptions {
                threads,
                share: true,
            },
        )
        .expect("compiles")
    });
    bench_engine("production-parallel", &w, || {
        ProductionParallelMatcher::compile(&w.program, threads).expect("compiles")
    });
}
