//! Ablations of the design choices called out in `DESIGN.md` §6:
//! network sharing on/off (the §4 sharing argument), change-batch size
//! (the parallel-WM-changes assumption), and network compile cost.

use psm_bench::microbench::{bench, bench_batched};
use rete::{CompileOptions, Network, ReteMatcher};
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

fn sharing() {
    let w = GeneratedWorkload::generate(Preset::EpSoar.spec_small()).expect("generates");
    for share in [true, false] {
        bench_batched(
            "ablation_sharing",
            if share { "shared" } else { "unshared" },
            10,
            || {
                let mut m = ReteMatcher::compile_with(&w.program, CompileOptions { share })
                    .expect("compiles");
                let mut d = WorkloadDriver::new(w.clone(), 31);
                d.init(&mut m);
                (m, d)
            },
            |(mut m, mut d)| d.run_cycles(&mut m, 25),
        );
    }
}

fn batch_size() {
    for factor in [1usize, 4] {
        let mut spec = Preset::EpSoar.spec_small();
        spec.min_changes *= factor;
        spec.max_changes *= factor;
        let w = GeneratedWorkload::generate(spec).expect("generates");
        bench_batched(
            "ablation_batch_size",
            &format!("changes-x{factor}"),
            10,
            || {
                let mut m = ReteMatcher::compile(&w.program).expect("compiles");
                let mut d = WorkloadDriver::new(w.clone(), 37);
                d.init(&mut m);
                (m, d)
            },
            // Same total change budget: fewer, bigger batches.
            |(mut m, mut d)| d.run_cycles(&mut m, (40 / factor) as u64),
        );
    }
}

fn memory_strategy() {
    // Linear vs hashed alpha memories (DESIGN.md §6): hashed probes one
    // (attr, value) bucket per left activation instead of scanning.
    let mut spec = Preset::Daa.spec_small();
    spec.negated_prob = 0.0;
    let w = GeneratedWorkload::generate(spec).expect("generates");
    for hashed in [false, true] {
        bench_batched(
            "ablation_memory_strategy",
            if hashed { "hashed" } else { "linear" },
            10,
            || {
                let mut m = if hashed {
                    ReteMatcher::compile_hashed(&w.program).expect("compiles")
                } else {
                    ReteMatcher::compile(&w.program).expect("compiles")
                };
                let mut d = WorkloadDriver::new(w.clone(), 41);
                d.init(&mut m);
                (m, d)
            },
            |(mut m, mut d)| d.run_cycles(&mut m, 25),
        );
    }
}

fn compile_cost() {
    let w = GeneratedWorkload::generate(Preset::EpSoar.spec_small()).expect("generates");
    bench("ablation_compile", "network_compile_shared", 10, || {
        Network::compile(&w.program).expect("compiles")
    });
    bench("ablation_compile", "network_compile_unshared", 10, || {
        Network::compile_with(&w.program, CompileOptions { share: false }).expect("compiles")
    });
}

fn main() {
    sharing();
    batch_size();
    memory_strategy();
    compile_cost();
}
