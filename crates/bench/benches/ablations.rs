//! Ablations of the design choices called out in `DESIGN.md` §6:
//! network sharing on/off (the §4 sharing argument), change-batch size
//! (the parallel-WM-changes assumption), and network compile cost.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use rete::{CompileOptions, Network, ReteMatcher};
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

fn sharing(c: &mut Criterion) {
    let w = GeneratedWorkload::generate(Preset::EpSoar.spec_small()).expect("generates");
    let mut group = c.benchmark_group("ablation_sharing");
    group.sample_size(10);
    for share in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if share { "shared" } else { "unshared" }),
            &share,
            |b, &share| {
                b.iter_batched(
                    || {
                        let mut m =
                            ReteMatcher::compile_with(&w.program, CompileOptions { share })
                                .expect("compiles");
                        let mut d = WorkloadDriver::new(w.clone(), 31);
                        d.init(&mut m);
                        (m, d)
                    },
                    |(mut m, mut d)| d.run_cycles(&mut m, 25),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_batch_size");
    group.sample_size(10);
    for factor in [1usize, 4] {
        let mut spec = Preset::EpSoar.spec_small();
        spec.min_changes *= factor;
        spec.max_changes *= factor;
        let w = GeneratedWorkload::generate(spec).expect("generates");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("changes-x{factor}")),
            &factor,
            |b, _| {
                b.iter_batched(
                    || {
                        let mut m = ReteMatcher::compile(&w.program).expect("compiles");
                        let mut d = WorkloadDriver::new(w.clone(), 37);
                        d.init(&mut m);
                        (m, d)
                    },
                    // Same total change budget: fewer, bigger batches.
                    |(mut m, mut d)| d.run_cycles(&mut m, (40 / factor) as u64),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn memory_strategy(c: &mut Criterion) {
    // Linear vs hashed alpha memories (DESIGN.md §6): hashed probes one
    // (attr, value) bucket per left activation instead of scanning.
    let mut spec = Preset::Daa.spec_small();
    spec.negated_prob = 0.0;
    let w = GeneratedWorkload::generate(spec).expect("generates");
    let mut group = c.benchmark_group("ablation_memory_strategy");
    group.sample_size(10);
    for hashed in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if hashed { "hashed" } else { "linear" }),
            &hashed,
            |b, &hashed| {
                b.iter_batched(
                    || {
                        let mut m = if hashed {
                            ReteMatcher::compile_hashed(&w.program).expect("compiles")
                        } else {
                            ReteMatcher::compile(&w.program).expect("compiles")
                        };
                        let mut d = WorkloadDriver::new(w.clone(), 41);
                        d.init(&mut m);
                        (m, d)
                    },
                    |(mut m, mut d)| d.run_cycles(&mut m, 25),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn compile_cost(c: &mut Criterion) {
    let w = GeneratedWorkload::generate(Preset::EpSoar.spec_small()).expect("generates");
    let mut group = c.benchmark_group("ablation_compile");
    group.sample_size(10);
    group.bench_function("network_compile_shared", |b| {
        b.iter(|| Network::compile(&w.program).expect("compiles"))
    });
    group.bench_function("network_compile_unshared", |b| {
        b.iter(|| {
            Network::compile_with(&w.program, CompileOptions { share: false }).expect("compiles")
        })
    });
    group.finish();
}

criterion_group!(ablations, sharing, batch_size, memory_strategy, compile_cost);
criterion_main!(ablations);
