//! §3.1 measured: cost of one WM change under the state-saving (Rete)
//! and non-state-saving (naive) algorithms as the stable WM size grows.
//! Rete's per-change cost should stay flat; naive's should grow with
//! |WM| — the crossover logic behind the paper's `(i+d)/s < 0.61`.

use baselines::NaiveMatcher;
use ops5::{Matcher, WorkingMemory};
use psm_bench::microbench::bench_batched;
use psm_obs::Rng64;
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset};

fn main() {
    let mut spec = Preset::EpSoar.spec_small();
    spec.wm_size = 0; // inserted manually below
    let w = GeneratedWorkload::generate(spec).expect("generates");

    for wm_size in [20usize, 40, 80] {
        for algo in ["rete", "naive"] {
            bench_batched(
                "state_saving_per_change",
                &format!("{algo}/{wm_size}"),
                10,
                || {
                    // Fresh matcher + WM of the target size plus one
                    // pending change.
                    let mut rng = Rng64::new(9);
                    let mut wm = WorkingMemory::new();
                    let mut rete = ReteMatcher::compile(&w.program).expect("compiles");
                    let mut naive = NaiveMatcher::new(&w.program);
                    for _ in 0..wm_size {
                        let (id, _) = wm.add(w.gen_wme(&mut rng));
                        rete.add_wme(&wm, id);
                        naive.add_wme(&wm, id);
                    }
                    let (pending, _) = wm.add(w.gen_wme(&mut rng));
                    (rete, naive, wm, pending)
                },
                |(mut rete, mut naive, wm, pending)| {
                    if algo == "rete" {
                        rete.add_wme(&wm, pending)
                    } else {
                        naive.add_wme(&wm, pending)
                    }
                },
            );
        }
    }
}
