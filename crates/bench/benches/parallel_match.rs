//! Thread scaling of the node-parallel engine (the paper's VAX-11/784
//! experiment on this machine's cores). On a single-core host the curve
//! is flat and dominated by scheduling overhead — itself a datapoint for
//! the paper's hardware-task-scheduler argument.

use psm_bench::microbench::bench_batched;
use psm_core::{ParallelOptions, ParallelReteMatcher};
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

const CYCLES: u64 = 30;

fn main() {
    let w = GeneratedWorkload::generate(Preset::Daa.spec_small()).expect("generates");
    let ncpu = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut threads = vec![1usize, 2, 4];
    if ncpu > 4 {
        threads.push(ncpu);
    }

    for &t in &threads {
        bench_batched(
            "parallel_match_threads",
            &t.to_string(),
            10,
            || {
                let mut m = ParallelReteMatcher::compile(
                    &w.program,
                    ParallelOptions {
                        threads: t,
                        share: true,
                    },
                )
                .expect("compiles");
                let mut d = WorkloadDriver::new(w.clone(), 23);
                d.init(&mut m);
                (m, d)
            },
            |(mut m, mut d)| d.run_cycles(&mut m, CYCLES),
        );
    }
}
