//! Thread scaling of the node-parallel engine (the paper's VAX-11/784
//! experiment on this machine's cores). On a single-core host the curve
//! is flat and dominated by scheduling overhead — itself a datapoint for
//! the paper's hardware-task-scheduler argument.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use psm_core::{ParallelOptions, ParallelReteMatcher};
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

const CYCLES: u64 = 30;

fn benches(c: &mut Criterion) {
    let w = GeneratedWorkload::generate(Preset::Daa.spec_small()).expect("generates");
    let ncpu = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut threads = vec![1usize, 2, 4];
    if ncpu > 4 {
        threads.push(ncpu);
    }

    let mut group = c.benchmark_group("parallel_match_threads");
    group.sample_size(10);
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter_batched(
                || {
                    let mut m = ParallelReteMatcher::compile(
                        &w.program,
                        ParallelOptions {
                            threads: t,
                            share: true,
                        },
                    )
                    .expect("compiles");
                    let mut d = WorkloadDriver::new(w.clone(), 23);
                    d.init(&mut m);
                    (m, d)
                },
                |(mut m, mut d)| d.run_cycles(&mut m, CYCLES),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(parallel_match, benches);
criterion_main!(parallel_match);
