//! Perf-trajectory plumbing: fingerprinted history records in
//! `results/bench_history.jsonl`, interleaved per-rep measurement for
//! the statistical regression gate, and the `BENCH_10.json` trajectory
//! artifact.
//!
//! A *record* is one `bench_baseline` run: git commit, machine
//! fingerprint, per-preset throughput plus the per-rep elapsed samples
//! the `perf_gate` binary later pairs against (see
//! `psm_analyze::regress`). Records append as JSONL — one line per
//! run, never rewritten — so the file is a trajectory, not a snapshot.
//!
//! Rep measurement is **interleaved**: rep *i* runs every preset once
//! before rep *i+1* starts, so slow machine drift (thermal, noisy
//! neighbours) lands evenly across presets instead of on whichever
//! preset happened to run last. The `PSM_PERF_SLOWDOWN` env knob
//! (float multiplier > 1) busy-spins each measured window up to
//! `multiplier ×` its real elapsed time — the CI self-test that proves
//! the gate trips on a genuine slowdown.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use psm_telemetry::client::Json;
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

use crate::Variant;

/// Machine identity attached to every history record. `perf_gate`
/// warns-instead-of-fails when the baseline was recorded on different
/// hardware, so cross-host comparisons can't produce false regressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// `std::thread::available_parallelism` at record time.
    pub cpus: usize,
    /// CPU model string from `/proc/cpuinfo` (`"unknown"` elsewhere).
    pub model: String,
}

/// Reads the current machine's fingerprint.
pub fn fingerprint() -> Fingerprint {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split_once(':').map(|(_, v)| v.trim().to_string()))
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    Fingerprint { cpus, model }
}

/// The current git commit: `git rev-parse HEAD`, falling back to
/// `GITHUB_SHA`, then `"unknown"`.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The `PSM_PERF_SLOWDOWN` multiplier (1.0 when unset, non-numeric, or
/// ≤ 1). Values above 1 make every measured rep busy-spin to
/// `multiplier ×` its real elapsed time — the seeded-slowdown self-test.
pub fn slowdown_multiplier() -> f64 {
    std::env::var("PSM_PERF_SLOWDOWN")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|m| *m > 1.0)
        .unwrap_or(1.0)
}

/// One preset's samples inside a [`TrajectoryRecord`].
#[derive(Debug, Clone)]
pub struct PresetTrack {
    /// Preset display name (`vt`, `ep-soar`, …).
    pub name: String,
    /// Headline throughput from the single instrumented run (hashed
    /// join memories — the production default).
    pub wme_changes_per_sec: f64,
    /// Throughput of the linear-scan ablation on the same workload
    /// (`ReteMatcher::compile_linear`). Zero in records written before
    /// the ablation column existed.
    pub linear_wme_changes_per_sec: f64,
    /// Match-phase p50 from the instrumented run, nanoseconds.
    pub match_p50_ns: u64,
    /// Match-phase p99 from the instrumented run, nanoseconds.
    pub match_p99_ns: u64,
    /// Interleaved per-rep elapsed seconds — what `perf_gate` pairs.
    pub reps_s: Vec<f64>,
}

/// One `bench_baseline` run, as appended to `bench_history.jsonl`.
#[derive(Debug, Clone)]
pub struct TrajectoryRecord {
    /// Unix seconds at record time.
    pub ts: u64,
    /// Git commit the run measured.
    pub commit: String,
    /// `"small"` or `"full"` — records only compare within a variant.
    pub variant: String,
    /// Driver cycles per measured rep window.
    pub rep_cycles: u64,
    /// Machine identity.
    pub fingerprint: Fingerprint,
    /// Per-preset throughput + rep samples.
    pub presets: Vec<PresetTrack>,
    /// Parallel-engine idle share from the scheduler-health run.
    pub idle_share: f64,
    /// Telemetry-plane on/off delta, percent.
    pub telemetry_overhead_pct: f64,
    /// Per-node profiler marginal overhead, percent.
    pub profiler_overhead_pct: f64,
    /// History-ring sampler marginal overhead, percent.
    pub sampler_overhead_pct: f64,
}

impl TrajectoryRecord {
    /// The record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        use psm_obs::json::{number, push_escaped};
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{{\"ts\":{},\"commit\":", self.ts));
        push_escaped(&mut out, &self.commit);
        out.push_str(&format!(
            ",\"variant\":\"{}\",\"rep_cycles\":{},\"fingerprint\":{{\"cpus\":{},\"model\":",
            self.variant, self.rep_cycles, self.fingerprint.cpus
        ));
        push_escaped(&mut out, &self.fingerprint.model);
        out.push_str("},\"presets\":[");
        for (i, p) in self.presets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_escaped(&mut out, &p.name);
            out.push_str(&format!(
                ",\"wme_changes_per_sec\":{},\"linear_wme_changes_per_sec\":{},\
                 \"match_p50_ns\":{},\"match_p99_ns\":{},\"reps_s\":[",
                number(p.wme_changes_per_sec),
                number(p.linear_wme_changes_per_sec),
                p.match_p50_ns,
                p.match_p99_ns
            ));
            for (j, r) in p.reps_s.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&number(*r));
            }
            out.push_str("]}");
        }
        out.push_str(&format!(
            "],\"engine\":{{\"idle_share\":{}}},\"overhead\":{{\"telemetry_pct\":{},\
             \"profiler_pct\":{},\"sampler_pct\":{}}}}}",
            number(self.idle_share),
            number(self.telemetry_overhead_pct),
            number(self.profiler_overhead_pct),
            number(self.sampler_overhead_pct),
        ));
        out
    }

    /// Parses one JSONL line back into a record. Returns `None` on any
    /// shape mismatch (corrupt lines are skipped, never fatal).
    pub fn from_json(line: &str) -> Option<TrajectoryRecord> {
        let j = Json::parse(line)?;
        let fp = j.get("fingerprint")?;
        let mut presets = Vec::new();
        for p in j.get("presets")?.items() {
            let reps_s = p
                .get("reps_s")?
                .items()
                .iter()
                .filter_map(|r| r.as_f64())
                .collect();
            presets.push(PresetTrack {
                name: p.get("name")?.as_str()?.to_string(),
                wme_changes_per_sec: p.get("wme_changes_per_sec")?.as_f64()?,
                // Absent in pre-ablation records: parse as zero, never
                // reject the line.
                linear_wme_changes_per_sec: p
                    .get("linear_wme_changes_per_sec")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0),
                match_p50_ns: p.get("match_p50_ns")?.as_u64()?,
                match_p99_ns: p.get("match_p99_ns")?.as_u64()?,
                reps_s,
            });
        }
        Some(TrajectoryRecord {
            ts: j.get("ts")?.as_u64()?,
            commit: j.get("commit")?.as_str()?.to_string(),
            variant: j.get("variant")?.as_str()?.to_string(),
            rep_cycles: j.get("rep_cycles")?.as_u64()?,
            fingerprint: Fingerprint {
                cpus: fp.get("cpus")?.as_u64()? as usize,
                model: fp.get("model")?.as_str()?.to_string(),
            },
            presets,
            idle_share: j.get("engine")?.get("idle_share")?.as_f64()?,
            telemetry_overhead_pct: j.get("overhead")?.get("telemetry_pct")?.as_f64()?,
            profiler_overhead_pct: j.get("overhead")?.get("profiler_pct")?.as_f64()?,
            sampler_overhead_pct: j.get("overhead")?.get("sampler_pct")?.as_f64()?,
        })
    }
}

/// Unix seconds now.
pub fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Appends `record` as one line to the JSONL history at `path`,
/// creating parent directories as needed.
pub fn append_history(path: &str, record: &TrajectoryRecord) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", record.to_json())
}

/// Reads every parseable record from the JSONL history at `path`
/// (oldest first). A missing file is an empty history, not an error.
pub fn read_history(path: &str) -> Vec<TrajectoryRecord> {
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(TrajectoryRecord::from_json)
        .collect()
}

/// Measures `reps` interleaved elapsed-time samples for each preset:
/// rep *i* runs every preset once (fresh matcher, same generated
/// workload, setup excluded from the window) before rep *i+1*. One
/// warm-up sweep is discarded. Honors [`slowdown_multiplier`].
pub fn measure_reps(
    presets: &[Preset],
    variant: Variant,
    cycles: u64,
    reps: usize,
) -> Vec<(String, Vec<f64>)> {
    let workloads: Vec<GeneratedWorkload> = presets
        .iter()
        .map(|p| {
            let spec = match variant {
                Variant::Small => p.spec_small(),
                _ => p.spec(),
            };
            GeneratedWorkload::generate(spec).expect("workload generates")
        })
        .collect();
    let mult = slowdown_multiplier();
    let run_once = |w: &GeneratedWorkload| -> f64 {
        let mut matcher = ReteMatcher::compile(&w.program).expect("compiles");
        let mut driver = WorkloadDriver::new(w.clone(), 0xBA5E);
        driver.init(&mut matcher);
        let started = Instant::now();
        driver.run_cycles(&mut matcher, cycles);
        if mult > 1.0 {
            // The self-test slowdown: stretch the measured window to
            // `mult ×` its real length with a busy spin, as a hot-path
            // regression would.
            let target = Duration::from_secs_f64(started.elapsed().as_secs_f64() * mult);
            while started.elapsed() < target {
                std::hint::spin_loop();
            }
        }
        started.elapsed().as_secs_f64()
    };
    for w in &workloads {
        run_once(w);
    }
    let mut out: Vec<(String, Vec<f64>)> = presets
        .iter()
        .map(|p| (p.name().to_string(), Vec::with_capacity(reps)))
        .collect();
    for _ in 0..reps {
        for (i, w) in workloads.iter().enumerate() {
            out[i].1.push(run_once(w));
        }
    }
    out
}

/// Writes the `BENCH_10.json` trajectory artifact: per-record summaries
/// (oldest first) plus the latest record in full.
pub fn write_trajectory_artifact(path: &str, records: &[TrajectoryRecord]) -> std::io::Result<()> {
    use psm_obs::json::{number, push_escaped};
    let mut out = String::from("{\"bench\":\"BENCH_10\",\"kind\":\"perf-trajectory\",\"records\":");
    out.push_str(&records.len().to_string());
    out.push_str(",\"trajectory\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"ts\":{},\"commit\":", r.ts));
        push_escaped(&mut out, &r.commit);
        out.push_str(&format!(
            ",\"variant\":\"{}\",\"wme_changes_per_sec\":{{",
            r.variant
        ));
        for (j, p) in r.presets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_escaped(&mut out, &p.name);
            out.push(':');
            out.push_str(&number(p.wme_changes_per_sec));
        }
        out.push_str(&format!(
            "}},\"idle_share\":{},\"sampler_pct\":{}}}",
            number(r.idle_share),
            number(r.sampler_overhead_pct)
        ));
    }
    out.push_str("],\"latest\":");
    match records.last() {
        Some(r) => out.push_str(&r.to_json()),
        None => out.push_str("null"),
    }
    out.push('}');
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> TrajectoryRecord {
        TrajectoryRecord {
            ts: 1_723_100_000,
            commit: "abcdef0123".to_string(),
            variant: "small".to_string(),
            rep_cycles: 1200,
            fingerprint: Fingerprint {
                cpus: 8,
                model: "Example CPU @ 3.0GHz".to_string(),
            },
            presets: vec![PresetTrack {
                name: "vt".to_string(),
                wme_changes_per_sec: 123456.5,
                linear_wme_changes_per_sec: 23456.25,
                match_p50_ns: 2048,
                match_p99_ns: 65536,
                reps_s: vec![0.101, 0.099, 0.1],
            }],
            idle_share: 0.0015,
            telemetry_overhead_pct: 0.4,
            profiler_overhead_pct: 1.1,
            sampler_overhead_pct: 0.2,
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = sample_record();
        let line = r.to_json();
        let back = TrajectoryRecord::from_json(&line).expect("parses");
        assert_eq!(back.commit, r.commit);
        assert_eq!(back.fingerprint, r.fingerprint);
        assert_eq!(back.presets.len(), 1);
        assert_eq!(back.presets[0].reps_s, r.presets[0].reps_s);
        assert_eq!(back.rep_cycles, 1200);
        assert_eq!(back.sampler_overhead_pct, 0.2);
        assert_eq!(back.presets[0].linear_wme_changes_per_sec, 23456.25);
    }

    #[test]
    fn pre_ablation_records_parse_with_zero_linear_throughput() {
        let r = sample_record();
        // Simulate a record written before the linear ablation column
        // existed by stripping the field from the serialized line.
        let line = r
            .to_json()
            .replace("\"linear_wme_changes_per_sec\":23456.25,", "");
        let back = TrajectoryRecord::from_json(&line).expect("old shape still parses");
        assert_eq!(back.presets[0].linear_wme_changes_per_sec, 0.0);
        assert_eq!(back.presets[0].wme_changes_per_sec, 123456.5);
    }

    #[test]
    fn history_appends_and_reads_back_skipping_garbage() {
        let dir = std::env::temp_dir().join(format!("psm-traj-{}", std::process::id()));
        let path = dir.join("hist.jsonl");
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        assert!(read_history(&path).is_empty(), "missing file = empty");
        append_history(&path, &sample_record()).unwrap();
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "not json at all").unwrap();
        }
        let mut second = sample_record();
        second.commit = "fedcba".to_string();
        append_history(&path, &second).unwrap();
        let records = read_history(&path);
        assert_eq!(records.len(), 2, "garbage line skipped");
        assert_eq!(records[1].commit, "fedcba");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_and_commit_are_nonempty() {
        let fp = fingerprint();
        assert!(fp.cpus >= 1);
        assert!(!fp.model.is_empty());
        assert!(!git_commit().is_empty());
    }

    #[test]
    fn slowdown_multiplier_defaults_to_one() {
        // The env knob is absent under `cargo test`.
        assert_eq!(slowdown_multiplier(), 1.0);
    }

    #[test]
    fn interleaved_reps_measure_every_preset() {
        let tracks = measure_reps(&[Preset::EpSoar], Variant::Small, 5, 2);
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].0, "ep-soar");
        assert_eq!(tracks[0].1.len(), 2);
        assert!(tracks[0].1.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn trajectory_artifact_contains_summary_and_latest() {
        let dir = std::env::temp_dir().join(format!("psm-traj-art-{}", std::process::id()));
        let path = dir.join("BENCH_10.json");
        let path = path.to_str().unwrap().to_string();
        write_trajectory_artifact(&path, &[sample_record()]).unwrap();
        let j = Json::parse(&std::fs::read_to_string(&path).unwrap()).expect("valid json");
        assert_eq!(j.get("bench").and_then(|b| b.as_str()), Some("BENCH_10"));
        assert_eq!(j.get("records").and_then(|r| r.as_u64()), Some(1));
        assert_eq!(j.get("trajectory").map(|t| t.items().len()), Some(1));
        assert!(j.get("latest").and_then(|l| l.get("presets")).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
