//! # psm-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 for the
//! experiment index) plus criterion micro-benchmarks. This library holds
//! the shared plumbing: workload capture, table formatting, and the
//! standard simulation sweep.
//!
//! Binaries (run with `cargo run --release -p psm-bench --bin <name>`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `sec2_uniprocessor_ladder` | §2.2 interpreter speeds |
//! | `sec3_state_saving` | §3.1 state-saving cost model |
//! | `sec4_production_parallelism` | §4 granularity comparison |
//! | `fig6_1_concurrency` | Figure 6-1 |
//! | `fig6_2_speed` | Figure 6-2 |
//! | `sec6_headline` | §6 headline numbers |
//! | `table7_architectures` | §7 comparison table |
//! | `sec8_sensitivity` | §8 sensitivity analysis |
//! | `real_speedup` | real-multicore validation (VAX-11/784 stand-in) |
//!
//! All binaries accept `--small` to run quarter-scale presets, and
//! `--cycles N` to change the traced cycle count.

use std::sync::Arc;

use rete::{CompileOptions, MatchStats, Network, Trace};
use workloads::{capture_trace_with, GeneratedWorkload, Preset, WorkloadSpec};

pub mod trajectory;

/// A captured workload run ready for simulation.
pub struct Captured {
    /// The workload (program + distributions).
    pub workload: GeneratedWorkload,
    /// Node-activation trace (setup excluded).
    pub trace: Trace,
    /// Aggregate match statistics over the traced portion.
    pub stats: MatchStats,
    /// The compiled network the trace ran on.
    pub network: Arc<Network>,
}

/// Which variant of a preset to capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The full-size preset.
    Standard,
    /// Full-size with 4x change batches (the figures' "parallel
    /// firings" series).
    ParallelFirings,
    /// Quarter-scale for quick runs.
    Small,
}

/// Captures `cycles` of a preset run. `share=false` networks attribute
/// every node to one production, as required by the §4/§7 analyses.
pub fn capture(preset: Preset, variant: Variant, cycles: u64, share: bool) -> Captured {
    let spec = match variant {
        Variant::Standard => preset.spec(),
        Variant::ParallelFirings => preset.spec_parallel_firings(),
        Variant::Small => preset.spec_small(),
    };
    capture_spec(spec, cycles, share)
}

/// Captures `cycles` of an arbitrary spec.
pub fn capture_spec(spec: WorkloadSpec, cycles: u64, share: bool) -> Captured {
    let workload = GeneratedWorkload::generate(spec).expect("workload generates");
    let (trace, stats, network) =
        capture_trace_with(&workload, cycles, 0xC0FFEE, CompileOptions { share })
            .expect("trace capture succeeds");
    Captured {
        workload,
        trace,
        stats,
        network,
    }
}

/// Simple monospace table printer for experiment binaries.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Use quarter-scale presets.
    pub small: bool,
    /// Cycles to trace.
    pub cycles: u64,
    /// Directory to also write tables to as CSV (from `--csv <dir>`).
    pub csv_dir: Option<String>,
}

impl CliOptions {
    /// Parses `--small`, `--cycles N` and `--csv DIR` from
    /// `std::env::args`.
    pub fn parse(default_cycles: u64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let small = args.iter().any(|a| a == "--small");
        let cycles = args
            .iter()
            .position(|a| a == "--cycles")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_cycles);
        let csv_dir = args
            .iter()
            .position(|a| a == "--csv")
            .and_then(|i| args.get(i + 1))
            .cloned();
        CliOptions {
            small,
            cycles,
            csv_dir,
        }
    }

    /// Writes `rows` to `<csv_dir>/<name>.csv` when `--csv` was given.
    /// Errors are reported to stderr, never fatal (the stdout table is
    /// the primary artifact).
    pub fn maybe_write_csv(&self, name: &str, headers: &[&str], rows: &[Vec<String>]) {
        let Some(dir) = &self.csv_dir else { return };
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            let mut out = String::new();
            out.push_str(&headers.join(","));
            out.push('\n');
            for row in rows {
                out.push_str(&row.join(","));
                out.push('\n');
            }
            std::fs::write(format!("{dir}/{name}.csv"), out)
        };
        if let Err(e) = write() {
            eprintln!("could not write {name}.csv: {e}");
        }
    }

    /// The standard/small variant choice implied by the flags.
    pub fn variant(&self) -> Variant {
        if self.small {
            Variant::Small
        } else {
            Variant::Standard
        }
    }
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Minimal micro-benchmark runner for the `benches/` targets
/// (`harness = false`, no external crates). Each sample runs a fresh
/// `setup()` state through `routine`, timing only the routine; the
/// summary line reports median / min / mean over the samples.
pub mod microbench {
    use std::time::Instant;

    /// One measured series (all values in nanoseconds).
    #[derive(Debug, Clone)]
    pub struct Samples {
        /// Benchmark label (`group/name`).
        pub label: String,
        /// Per-sample routine times, nanoseconds.
        pub ns: Vec<u64>,
    }

    impl Samples {
        /// Median sample time in nanoseconds.
        pub fn median_ns(&self) -> u64 {
            let mut v = self.ns.clone();
            v.sort_unstable();
            v.get(v.len() / 2).copied().unwrap_or(0)
        }

        /// Fastest sample in nanoseconds.
        pub fn min_ns(&self) -> u64 {
            self.ns.iter().copied().min().unwrap_or(0)
        }

        /// Mean sample time in nanoseconds.
        pub fn mean_ns(&self) -> f64 {
            if self.ns.is_empty() {
                0.0
            } else {
                self.ns.iter().sum::<u64>() as f64 / self.ns.len() as f64
            }
        }

        fn print(&self) {
            let ms = |ns: f64| ns / 1e6;
            println!(
                "{:<44} median {:>9.3} ms  min {:>9.3} ms  mean {:>9.3} ms  ({} samples)",
                self.label,
                ms(self.median_ns() as f64),
                ms(self.min_ns() as f64),
                ms(self.mean_ns()),
                self.ns.len()
            );
        }
    }

    /// Times `samples` runs of `routine` over fresh `setup()` states
    /// (the `iter_batched` pattern): setup excluded, one extra warm-up
    /// run discarded.
    pub fn bench_batched<T, R>(
        group: &str,
        name: &str,
        samples: usize,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T) -> R,
    ) -> Samples {
        std::hint::black_box(routine(setup()));
        let mut ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let state = setup();
            let start = Instant::now();
            let out = routine(state);
            ns.push(start.elapsed().as_nanos() as u64);
            std::hint::black_box(out);
        }
        let s = Samples {
            label: format!("{group}/{name}"),
            ns,
        };
        s.print();
        s
    }

    /// Times `samples` runs of a setup-free routine.
    pub fn bench<R>(
        group: &str,
        name: &str,
        samples: usize,
        mut routine: impl FnMut() -> R,
    ) -> Samples {
        bench_batched(group, name, samples, || (), |()| routine())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_small_preset_end_to_end() {
        let c = capture(Preset::EpSoar, Variant::Small, 10, true);
        assert_eq!(c.trace.cycles.len(), 10);
        assert!(c.stats.changes > 0);
        assert!(c.network.stats.terminals > 0);
    }

    #[test]
    fn unshared_capture_has_owned_nodes() {
        let c = capture(Preset::EpSoar, Variant::Small, 5, false);
        // Every two-input node knows its production.
        for spec in &c.network.nodes {
            if matches!(
                spec.kind,
                rete::network::NodeKind::Join | rete::network::NodeKind::Negative
            ) {
                assert!(spec.production.is_some());
            }
        }
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
