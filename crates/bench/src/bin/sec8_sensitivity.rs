//! Section 8: sensitivity of the speed-up results to the three limiting
//! factors — changes per cycle, affected productions per change, and the
//! skew of per-production processing cost. Each sweep varies one
//! generator knob around the DAA-like baseline and reports concurrency
//! and speed at P=32.

use psm_bench::{capture_spec, f, print_table, CliOptions};
use psm_sim::{simulate_psm, CostModel, PsmSpec};
use workloads::Preset;

fn main() {
    let opts = CliOptions::parse(150);
    let cost = CostModel::default();
    let spec32 = PsmSpec::paper_32();
    let base = if opts.small {
        Preset::Daa.spec_small()
    } else {
        Preset::Daa.spec()
    };

    // Sweep 1: WM changes per recognize-act cycle.
    let mut rows = Vec::new();
    for factor in [1usize, 2, 4, 8] {
        let mut spec = base.clone();
        spec.name = format!("changes x{factor}");
        spec.min_changes *= factor;
        spec.max_changes *= factor;
        let c = capture_spec(spec, opts.cycles, true);
        let r = simulate_psm(&c.trace, &cost, &spec32);
        rows.push(vec![
            format!("x{factor}"),
            f(c.trace.mean_changes_per_cycle(), 1),
            f(r.concurrency, 2),
            f(r.true_speedup, 2),
            f(r.wme_changes_per_sec, 0),
        ]);
    }
    print_table(
        "Section 8 sweep 1: changes per cycle (paper: more changes -> more parallelism)",
        &[
            "batch",
            "chg/cycle",
            "concurrency@32",
            "true speedup",
            "wme-ch/s",
        ],
        &rows,
    );

    // Sweep 2: affected productions per change (via constant-pool size;
    // fewer constants -> more productions match each change).
    let mut rows = Vec::new();
    for constants in [2usize, 4, 8, 16, 32] {
        let mut spec = base.clone();
        spec.name = format!("constants {constants}");
        spec.constants = constants;
        let c = capture_spec(spec, opts.cycles, true);
        let r = simulate_psm(&c.trace, &cost, &spec32);
        rows.push(vec![
            constants.to_string(),
            f(c.trace.mean_affected_productions(), 1),
            f(r.concurrency, 2),
            f(r.true_speedup, 2),
            f(r.wme_changes_per_sec, 0),
        ]);
    }
    print_table(
        "Section 8 sweep 2: affected-set size (paper: small affected sets bound speed-up)",
        &[
            "constant pool",
            "affected/chg",
            "concurrency@32",
            "true speedup",
            "wme-ch/s",
        ],
        &rows,
    );

    // Sweep 3: skew of per-production processing (via class hotness;
    // hotter classes concentrate cost in few productions).
    let mut rows = Vec::new();
    for hot in [0.0f64, 0.8, 1.2, 1.8] {
        let mut spec = base.clone();
        spec.name = format!("hot {hot}");
        spec.hot_exponent = hot;
        let c = capture_spec(spec, opts.cycles, true);
        let r = simulate_psm(&c.trace, &cost, &spec32);
        rows.push(vec![
            f(hot, 1),
            f(c.trace.mean_affected_productions(), 1),
            f(r.concurrency, 2),
            f(r.true_speedup, 2),
            f(r.wme_changes_per_sec, 0),
        ]);
    }
    print_table(
        "Section 8 sweep 3: class-popularity skew (paper: variability caps parallelism)",
        &[
            "hot exponent",
            "affected/chg",
            "concurrency@32",
            "true speedup",
            "wme-ch/s",
        ],
        &rows,
    );
    println!(
        "\npaper expectation: each factor moves exploitable parallelism somewhat, none of \
         them changes the < 10-fold conclusion."
    );
}
