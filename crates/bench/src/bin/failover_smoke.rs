//! End-to-end failover smoke test over the real HTTP replication
//! plane, wired for CI.
//!
//! For each preset given on the command line (default: `ep-soar` and
//! `r1-soar`):
//!
//! 1. boots a [`psm_telemetry::TelemetryServer`] on an ephemeral port
//!    with the `/replicate/*` endpoints serving a shared
//!    [`psm_fault::ReplicationStore`],
//! 2. runs a [`psm_fault::FailoverPair`] whose standby pulls through
//!    [`psm_telemetry::replicate::HttpReplicaSource`] — checkpoints and
//!    WAL segments cross a real socket, not a function call,
//! 3. kills the primary mid-run per [`psm_fault::FaultPlan`] (with
//!    background chaos faults at rate 0.1 hitting it first) and
//!    promotes the standby,
//! 4. gates on: promotion happened at the planned cycle, replication
//!    lag at promotion was 0, and the promoted state (conflict set,
//!    Rete snapshot bytes, working-memory bytes) is byte-identical to
//!    a never-faulted sequential run of the same change stream.
//!
//! Writes `results/failover_report.json` and exits non-zero on any
//! failed gate, so CI can block on it.
//!
//! ```sh
//! cargo run --release -p psm-bench --bin failover_smoke
//! cargo run --release -p psm-bench --bin failover_smoke -- ep-soar vt
//! ```

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ops5::{Instantiation, MatchDelta, Matcher, WmeId, WorkingMemory};
use psm_fault::{
    FailoverPair, FaultPlan, ReplicationConfig, ReplicationStore, SupervisorConfig, Tier,
};
use psm_obs::json::push_escaped;
use psm_obs::Obs;
use psm_telemetry::replicate::{HttpReplicaSource, ReplicaSource};
use psm_telemetry::{TelemetryConfig, TelemetryServer};
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

const CYCLES: u64 = 16;

struct SmokeRun {
    preset: &'static str,
    promoted_at: Option<u64>,
    kill_at: u64,
    lag_at_promotion: u64,
    polls: u64,
    rebases: u64,
    segments_gced: u64,
    full_count: u64,
    delta_count: u64,
    wire_bytes: usize,
    exact: bool,
    elapsed_ms: u128,
    failures: Vec<String>,
}

/// Folds matcher deltas into a conflict-set accumulator so the
/// reference run tracks the same state the supervisor maintains.
struct Collecting<'a> {
    inner: &'a mut ReteMatcher,
    conflict: &'a mut HashSet<Instantiation>,
}

impl Collecting<'_> {
    fn fold(&mut self, d: MatchDelta) {
        for i in &d.removed {
            self.conflict.remove(i);
        }
        for i in &d.added {
            self.conflict.insert(i.clone());
        }
    }
}

impl Matcher for Collecting<'_> {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        let d = self.inner.add_wme(wm, id);
        self.fold(d.clone());
        d
    }
    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        let d = self.inner.remove_wme(wm, id);
        self.fold(d.clone());
        d
    }
    fn algorithm_name(&self) -> &'static str {
        "collecting"
    }
}

fn main() {
    // The chaos plan injects worker panics on purpose; keep their
    // default-hook backtraces out of CI logs.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        if msg.contains("injected fault") || msg.contains("scoped thread panicked") {
            return;
        }
        default_hook(info);
    }));

    let requested: Vec<String> = std::env::args().skip(1).collect();
    let presets: Vec<Preset> = if requested.is_empty() {
        vec![Preset::EpSoar, Preset::R1Soar]
    } else {
        requested
            .iter()
            .map(|name| {
                Preset::all()
                    .into_iter()
                    .find(|p| p.name() == name)
                    .unwrap_or_else(|| {
                        eprintln!("failover_smoke: unknown preset {name}");
                        std::process::exit(2);
                    })
            })
            .collect()
    };

    let mut runs = Vec::new();
    for (i, preset) in presets.iter().enumerate() {
        let run = smoke_run(*preset, 0xFA11 + i as u64, 0x5EED + i as u64);
        let verdict = if run.failures.is_empty() {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "{:<8} {verdict}: promoted at {:?} (kill {}), lag {}, {} polls, {} rebases, \
             {} full + {} delta checkpoints, {} wal segments gced, {} bytes over the wire, \
             {} ms",
            run.preset,
            run.promoted_at,
            run.kill_at,
            run.lag_at_promotion,
            run.polls,
            run.rebases,
            run.full_count,
            run.delta_count,
            run.segments_gced,
            run.wire_bytes,
            run.elapsed_ms,
        );
        for f in &run.failures {
            eprintln!("  gate failed: {f}");
        }
        runs.push(run);
    }

    write_json("results", &runs);

    if runs.iter().any(|r| !r.failures.is_empty()) {
        eprintln!("failover_smoke FAIL");
        std::process::exit(1);
    }
    println!(
        "failover_smoke ok: {} presets byte-exact through HTTP failover",
        runs.len()
    );
}

/// One preset through the full plane: HTTP listener, pull-based
/// standby, planned kill, promotion, byte-parity check.
fn smoke_run(preset: Preset, plan_seed: u64, driver_seed: u64) -> SmokeRun {
    let started = Instant::now();
    let workload = GeneratedWorkload::generate(preset.spec_small()).expect("workload generates");
    // `WorkloadDriver::init` feeds one supervised cycle per initial
    // WME, so the kill lands mid-way through the post-init stream.
    let init_cycles = workload.spec.wm_size as u64;
    let kill_at = init_cycles + CYCLES / 2;
    let plan = Arc::new(
        FaultPlan::randomized(plan_seed, init_cycles + CYCLES, 0.1).with_primary_kill(kill_at),
    );

    let store = Arc::new(ReplicationStore::new(ReplicationConfig {
        max_segment_bytes: 4 * 1024, // force rotation so segments ship
        anchor_every: 4,
    }));
    let obs = Arc::new(Obs::new(0));
    let server = TelemetryServer::start_with_replication(
        Arc::clone(&obs),
        &TelemetryConfig::default(),
        store.clone() as Arc<dyn ReplicaSource>,
    )
    .expect("listener binds");
    let source = Arc::new(HttpReplicaSource::new(
        server.local_addr(),
        Duration::from_secs(5),
    ));

    let config = SupervisorConfig {
        threads: 2,
        backoff: Duration::from_micros(10),
        checkpoint_every: 4,
        ..SupervisorConfig::default()
    };
    let mut pair =
        FailoverPair::with_source(&workload.program, config, Some(plan), store.clone(), source)
            .expect("program compiles");
    pair.set_poll_every(3);
    pair.attach_obs(Arc::clone(&obs));

    let mut driver = WorkloadDriver::new(workload.clone(), driver_seed);
    driver.init(&mut pair);
    for _ in 0..CYCLES {
        let batch = driver.next_batch();
        pair.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
    }

    let report = pair.report();
    let stats = store.stats();
    let mut failures = Vec::new();
    if report.promoted_at != Some(kill_at) {
        failures.push(format!(
            "promotion at {:?}, planned kill at {kill_at}",
            report.promoted_at
        ));
    }
    if report.lag_at_promotion != 0 {
        failures.push(format!(
            "replication lag {} at promotion (must be 0)",
            report.lag_at_promotion
        ));
    }
    if pair.tier() != Tier::Promoted {
        failures.push(format!("finished on tier {:?}, not Promoted", pair.tier()));
    }

    // Byte parity against a never-faulted sequential run of the same
    // change stream on the same compiled network.
    let network = pair.active().network().clone();
    let mut rdriver = WorkloadDriver::new(workload, driver_seed);
    let mut reference = ReteMatcher::from_network(network);
    let mut conflict = HashSet::new();
    {
        let mut r = Collecting {
            inner: &mut reference,
            conflict: &mut conflict,
        };
        rdriver.init(&mut r);
        for _ in 0..CYCLES {
            let batch = rdriver.next_batch();
            let d = r.inner.process(rdriver.working_memory(), &batch);
            r.fold(d);
            rdriver.commit_batch(&batch);
        }
    }
    let mut sorted: Vec<_> = conflict.into_iter().collect();
    sorted.sort_by(|a, b| (a.production, &a.wmes).cmp(&(b.production, &b.wmes)));
    let exact = pair.active().conflict_set() == sorted
        && pair.active().committed_snapshot().as_bytes() == reference.snapshot().as_bytes()
        && pair.active().committed_wm_bytes() == rdriver.working_memory().snapshot_bytes();
    if !exact {
        failures.push("promoted state is not byte-identical to the fault-free run".to_string());
    }

    // Everything the standby saw crossed the socket; the wire volume
    // is a sanity signal that HTTP (not the in-process store) fed it.
    let metrics = obs.metrics.snapshot();
    let wire_bytes = metrics
        .gauges
        .get("replica.bytes_fetched")
        .map_or(0, |&v| v.max(0) as usize);

    server.shutdown();
    SmokeRun {
        preset: preset.name(),
        promoted_at: report.promoted_at,
        kill_at,
        lag_at_promotion: report.lag_at_promotion,
        polls: report.polls,
        rebases: report.rebases,
        segments_gced: stats.segments_gced,
        full_count: stats.full_count,
        delta_count: stats.delta_count,
        wire_bytes,
        exact,
        elapsed_ms: started.elapsed().as_millis(),
        failures,
    }
}

fn write_json(out: &str, runs: &[SmokeRun]) {
    let mut j = String::from("{\"runs\":[");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        j.push_str("{\"preset\":");
        push_escaped(&mut j, r.preset);
        j.push_str(&format!(
            ",\"promoted_at\":{},\"kill_at\":{},\"lag_at_promotion\":{},\"polls\":{},\
             \"rebases\":{},\"segments_gced\":{},\"full_checkpoints\":{},\
             \"delta_checkpoints\":{},\"wire_bytes\":{},\"byte_exact\":{},\
             \"elapsed_ms\":{},\"failures\":[",
            r.promoted_at.map_or("null".to_string(), |c| c.to_string()),
            r.kill_at,
            r.lag_at_promotion,
            r.polls,
            r.rebases,
            r.segments_gced,
            r.full_count,
            r.delta_count,
            r.wire_bytes,
            r.exact,
            r.elapsed_ms,
        ));
        for (k, f) in r.failures.iter().enumerate() {
            if k > 0 {
                j.push(',');
            }
            push_escaped(&mut j, f);
        }
        j.push_str("]}");
    }
    j.push_str("],\"pass\":");
    j.push_str(if runs.iter().all(|r| r.failures.is_empty()) {
        "true"
    } else {
        "false"
    });
    j.push('}');
    let path = format!("{out}/failover_report.json");
    if std::fs::create_dir_all(out).is_ok() && std::fs::write(&path, &j).is_ok() {
        println!("wrote {path}");
    } else {
        eprintln!("failover_smoke: cannot write {path}");
        std::process::exit(1);
    }
}
