//! Section 3.2: the spectrum of state-saving match algorithms, measured.
//!
//! The paper orders the algorithms by how much state they store — naive
//! (none) < TREAT (per-CE memories) < Rete (fixed CE combinations) <
//! Oflazer (all CE combinations) — and argues each end has a cost: the
//! low end recomputes, the high end stores "state that never really gets
//! used". This binary runs all four on an identical change stream and
//! tabulates resident state, work performed, and wall-clock time.

use baselines::{NaiveMatcher, OflazerMatcher, TreatMatcher};
use ops5::Matcher;
use psm_bench::{f, print_table, CliOptions};
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

struct Row {
    algorithm: &'static str,
    resident_state: usize,
    work_units: u64,
    work_kind: &'static str,
    wall_ms: f64,
    conflict_changes: u64,
}

fn drive<M: Matcher>(workload: &GeneratedWorkload, matcher: &mut M, cycles: u64) -> (f64, u64) {
    let mut driver = WorkloadDriver::new(workload.clone(), 21);
    driver.init(matcher);
    let report = driver.run_cycles(matcher, cycles);
    (
        report.match_time.as_secs_f64() * 1e3,
        report.conflict_adds + report.conflict_removes,
    )
}

fn main() {
    let opts = CliOptions::parse(40);
    // Negation-free so the Oflazer matcher participates; small WM so the
    // naive matcher finishes.
    let mut spec = if opts.small {
        Preset::EpSoar.spec_small()
    } else {
        Preset::EpSoar.spec()
    };
    spec.negated_prob = 0.0;
    spec.wm_size = spec.wm_size.min(120);
    let workload = GeneratedWorkload::generate(spec).unwrap();

    let mut rows: Vec<Row> = Vec::new();

    let mut naive = NaiveMatcher::new(&workload.program);
    let (ms, cs) = drive(&workload, &mut naive, opts.cycles);
    rows.push(Row {
        algorithm: "naive (no state)",
        resident_state: 0,
        work_units: naive.stats().ce_match_attempts,
        work_kind: "CE match attempts",
        wall_ms: ms,
        conflict_changes: cs,
    });

    let mut treat = TreatMatcher::compile(&workload.program).unwrap();
    let (ms, cs) = drive(&workload, &mut treat, opts.cycles);
    rows.push(Row {
        algorithm: "treat (alpha only)",
        resident_state: treat.resident_state(),
        work_units: treat.stats().candidates_examined,
        work_kind: "join candidates",
        wall_ms: ms,
        conflict_changes: cs,
    });

    let mut rete = ReteMatcher::compile(&workload.program).unwrap();
    let (ms, cs) = drive(&workload, &mut rete, opts.cycles);
    rows.push(Row {
        algorithm: "rete (fixed combos)",
        resident_state: rete.resident_alpha_entries() + rete.resident_tokens(),
        work_units: rete.stats().pairs_scanned,
        work_kind: "pairs scanned",
        wall_ms: ms,
        conflict_changes: cs,
    });

    let mut oflazer = OflazerMatcher::compile(&workload.program).unwrap();
    let (ms, cs) = drive(&workload, &mut oflazer, opts.cycles);
    rows.push(Row {
        algorithm: "oflazer (all combos)",
        resident_state: oflazer.stats().tuples_resident as usize,
        work_units: oflazer.stats().consistency_tests,
        work_kind: "consistency tests",
        wall_ms: ms,
        conflict_changes: cs,
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                r.resident_state.to_string(),
                format!("{} {}", r.work_units, r.work_kind),
                f(r.wall_ms, 1),
                r.conflict_changes.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Section 3.2 state spectrum ({} cycles, {} rules, WM {})",
            opts.cycles,
            workload.program.productions.len(),
            workload.spec.wm_size
        ),
        &[
            "algorithm",
            "resident state",
            "work",
            "wall ms",
            "CS changes",
        ],
        &table,
    );
    let identical = rows
        .windows(2)
        .all(|w| w[0].conflict_changes == w[1].conflict_changes);
    println!(
        "\nall four algorithms produced {} conflict-set changes: {identical}",
        rows[0].conflict_changes
    );
    println!(
        "paper §3.2: more state => less recomputation, until the state itself becomes the \
         cost (Oflazer stores combinations that never reach the conflict set)."
    );
}
