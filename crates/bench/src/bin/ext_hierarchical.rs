//! Extension (§5): the hierarchical multiprocessor the paper proposes
//! for programs that could use 100–1000 processors. Each cluster is a
//! small PSM; working-memory changes are distributed across clusters.
//! The experiment shows the design only pays off when the workload has
//! enough change-level parallelism (the "parallel firings" Soar
//! variants), confirming the paper's framing of it as a conditional
//! escape hatch rather than the default.

use psm_bench::{capture, f, print_table, CliOptions, Variant};
use psm_sim::{simulate_hierarchical, simulate_psm, CostModel, HierarchicalSpec, PsmSpec};
use workloads::Preset;

fn main() {
    let opts = CliOptions::parse(200);
    let cost = CostModel::default();

    for (label, variant) in [
        ("r1-soar (standard)", opts.variant()),
        ("r1-soar (parallel firings)", Variant::ParallelFirings),
    ] {
        let c = capture(Preset::R1Soar, variant, opts.cycles, true);
        let mut rows = Vec::new();
        // Flat reference machines.
        for p in [32usize, 64] {
            let r = simulate_psm(&c.trace, &cost, &PsmSpec::paper_32().with_processors(p));
            rows.push(vec![
                format!("flat PSM, {p} procs"),
                f(r.concurrency, 2),
                f(r.true_speedup, 2),
                f(r.wme_changes_per_sec, 0),
            ]);
        }
        // Hierarchies of 32-processor clusters.
        for clusters in [2usize, 4, 8, 16, 32] {
            let spec = HierarchicalSpec {
                clusters,
                processors_per_cluster: 32,
                dispatch_latency_us: 5.0,
                node: PsmSpec::paper_32(),
            };
            let r = simulate_hierarchical(&c.trace, &cost, &spec);
            rows.push(vec![
                format!("{clusters} x 32 = {} procs", clusters * 32),
                f(r.concurrency, 2),
                f(r.true_speedup, 2),
                f(r.wme_changes_per_sec, 0),
            ]);
        }
        print_table(
            &format!("Hierarchical PSM on {label}"),
            &["machine", "concurrency", "true speedup", "wme-ch/s"],
            &rows,
        );
    }
    println!(
        "\npaper (§5): beyond 32-64 processors a flat shared bus is impractical; a \
         hierarchy only helps when many WM changes are in flight — i.e. with \
         application-level (parallel-firings) parallelism (§8)."
    );
}
