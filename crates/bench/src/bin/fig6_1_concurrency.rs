//! Figure 6-1: average concurrency as a function of the number of
//! processors, for the six systems plus the parallel-firings variants of
//! the two Soar systems. Simulation assumptions follow the paper:
//! multiple activations of one node in parallel, multiple WM changes in
//! parallel, hardware task scheduler.

use psm_bench::{capture, f, print_table, Captured, CliOptions, Variant};
use psm_sim::{simulate_psm, CostModel, PsmSpec};
use workloads::Preset;

const PROCESSORS: [usize; 9] = [1, 2, 4, 8, 16, 24, 32, 48, 64];

fn main() {
    let opts = CliOptions::parse(200);
    let cost = CostModel::default();

    let mut series: Vec<(String, Captured)> = Vec::new();
    for preset in Preset::all() {
        series.push((
            preset.name().to_string(),
            capture(preset, opts.variant(), opts.cycles, true),
        ));
    }
    for preset in [Preset::R1Soar, Preset::EpSoar] {
        series.push((
            format!("{} (parallel firings)", preset.name()),
            capture(preset, Variant::ParallelFirings, opts.cycles, true),
        ));
    }

    let mut headers: Vec<String> = vec!["system".into()];
    headers.extend(PROCESSORS.iter().map(|p| format!("P={p}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut at32: Vec<f64> = Vec::new();
    for (name, c) in &series {
        let mut row = vec![name.clone()];
        for &p in &PROCESSORS {
            let r = simulate_psm(&c.trace, &cost, &PsmSpec::paper_32().with_processors(p));
            if p == 32 {
                at32.push(r.concurrency);
            }
            row.push(f(r.concurrency, 2));
        }
        rows.push(row);
    }
    opts.maybe_write_csv("fig6_1_concurrency", &header_refs, &rows);
    print_table(
        "Figure 6-1: average concurrency vs number of processors",
        &header_refs,
        &rows,
    );
    let mean = at32.iter().sum::<f64>() / at32.len() as f64;
    println!("\nmean concurrency at P=32: {mean:.2}   (paper: 15.92)");
    println!(
        "paper observation: \"for most production systems 32 processors are more than sufficient\""
    );
}
