//! `psmtop` — a `top`-style terminal dashboard for a running engine,
//! fed entirely by the telemetry plane's `/snapshot` endpoint.
//!
//! Each frame polls `/snapshot`, diffs counters against the previous
//! frame, and renders:
//!
//! * per-worker busy / steal / idle shares (from
//!   `engine.worker.*{worker="N"}` counter deltas),
//! * per-phase latency p50/p99 (reconstructed
//!   [`HistogramSnapshot`]s, windowed between frames when possible),
//! * conflict-set depth and working-memory size gauges,
//! * a live §6 estimate: nominal concurrency ≈ (exec + lock-wait) /
//!   wall, true concurrency ≈ exec / wall, loss factor = their ratio —
//!   the paper's 15.92 / 8.25 = 1.93 decomposition, computed on the
//!   fly. When a DES run has published `sim.*{system=…}` gauges those
//!   exact figures are shown too,
//! * a hot-nodes panel (from `/profile`): the top-8 Rete nodes by
//!   pairs-compared share in the current window, with their measured
//!   join selectivity,
//! * sparkline trends (from `/timeseries`, when the target runs a
//!   history ring + sampler): cycle throughput, worker idle share, and
//!   replica lag per sampling window.
//!
//! ```sh
//! psmtop --demo                      # self-contained: in-process engine + server
//! psmtop --addr 127.0.0.1:9184      # attach to an existing listener
//! psmtop --addr … --once            # one frame, no ANSI clear (CI-friendly)
//! ```
//!
//! `--once` is the headless mode: it polls twice, `--interval-ms`
//! apart, and renders the single *windowed* frame to plain stdout —
//! deltas and shares are over that window, not process lifetime — so
//! CI and `telemetry_smoke` capture a meaningful dashboard without a
//! TTY loop.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use psm_obs::{HistogramSnapshot, Obs, Sampler, HIST_BUCKETS};
use psm_telemetry::client::{http_get, Json};
use psm_telemetry::{TelemetryConfig, TelemetryServer};

struct Options {
    addr: Option<String>,
    interval: Duration,
    once: bool,
    demo: bool,
    frames: Option<u64>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    Options {
        addr: value("--addr"),
        interval: Duration::from_millis(
            value("--interval-ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1000),
        ),
        once: args.iter().any(|a| a == "--once"),
        demo: args.iter().any(|a| a == "--demo"),
        frames: value("--frames").and_then(|v| v.parse().ok()),
    }
}

/// One `/profile` row, keyed by node id in [`Frame::prof_rows`].
struct ProfRow {
    kind: String,
    pairs: u64,
    selectivity: f64,
}

/// One polled `/snapshot` (+ `/profile`), flattened for diffing.
struct Frame {
    at: Instant,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, HistogramSnapshot>,
    prof_rows: BTreeMap<u64, ProfRow>,
    prof_retained: u64,
    prof_overflow: u64,
    prof_enabled: bool,
}

fn parse_frame(body: &str) -> Option<Frame> {
    let j = Json::parse(body)?;
    let m = j.get("metrics")?;
    let mut counters = BTreeMap::new();
    for (k, v) in m.get("counters")?.members() {
        counters.insert(k.clone(), v.as_u64().unwrap_or(0));
    }
    let mut gauges = BTreeMap::new();
    for (k, v) in m.get("gauges")?.members() {
        gauges.insert(k.clone(), v.as_f64().unwrap_or(0.0) as i64);
    }
    let mut hists = BTreeMap::new();
    for (k, v) in m.get("histograms")?.members() {
        let mut h = HistogramSnapshot {
            count: v.get("count").and_then(Json::as_u64).unwrap_or(0),
            sum: v.get("sum").and_then(Json::as_u64).unwrap_or(0),
            ..HistogramSnapshot::default()
        };
        for pair in v.get("buckets").map(Json::items).unwrap_or(&[]) {
            let (Some(i), Some(c)) = (
                pair.idx(0).and_then(Json::as_u64),
                pair.idx(1).and_then(Json::as_u64),
            ) else {
                continue;
            };
            if (i as usize) < HIST_BUCKETS {
                h.buckets[i as usize] = c;
            }
        }
        hists.insert(k.clone(), h);
    }
    Some(Frame {
        at: Instant::now(),
        counters,
        gauges,
        hists,
        prof_rows: BTreeMap::new(),
        prof_retained: 0,
        prof_overflow: 0,
        prof_enabled: false,
    })
}

/// Folds a polled `/profile` body into the frame (no-op on parse
/// failure — the panel simply stays empty).
fn parse_profile(body: &str, frame: &mut Frame) {
    let Some(j) = Json::parse(body) else { return };
    frame.prof_enabled = j.get("capacity").and_then(Json::as_u64).unwrap_or(0) > 0;
    frame.prof_retained = j.get("retained").and_then(Json::as_u64).unwrap_or(0);
    frame.prof_overflow = j.get("overflow").and_then(Json::as_u64).unwrap_or(0);
    for row in j.get("rows").map(Json::items).unwrap_or(&[]) {
        let Some(node) = row.get("node").and_then(Json::as_u64) else {
            continue;
        };
        frame.prof_rows.insert(
            node,
            ProfRow {
                kind: row
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                pairs: row.get("pairs").and_then(Json::as_u64).unwrap_or(0),
                selectivity: row.get("selectivity").and_then(Json::as_f64).unwrap_or(0.0),
            },
        );
    }
}

/// Workers present in the registry, from `engine.worker.tasks{worker=…}`.
fn worker_ids(frame: &Frame) -> Vec<String> {
    let mut ids: Vec<String> = frame
        .counters
        .keys()
        .filter_map(|k| {
            k.strip_prefix("engine.worker.tasks{worker=\"")
                .and_then(|rest| rest.strip_suffix("\"}"))
                .map(str::to_string)
        })
        .collect();
    ids.sort_by_key(|id| id.parse::<u64>().unwrap_or(u64::MAX));
    ids
}

fn worker_counter(frame: &Frame, metric: &str, worker: &str) -> u64 {
    frame
        .counters
        .get(&format!("engine.worker.{metric}{{worker=\"{worker}\"}}"))
        .copied()
        .unwrap_or(0)
}

/// `cur - prev` for one worker counter (0 on first frame or reset).
fn wdelta(prev: Option<&Frame>, cur: &Frame, metric: &str, worker: &str) -> u64 {
    let now = worker_counter(cur, metric, worker);
    let before = prev.map_or(0, |p| worker_counter(p, metric, worker));
    now.saturating_sub(before)
}

/// The latency histogram for `key` windowed to the current frame when a
/// previous frame exists (so quantiles track *recent* behaviour), else
/// cumulative.
fn windowed(prev: Option<&Frame>, cur: &Frame, key: &str) -> HistogramSnapshot {
    let now = cur.hists.get(key).cloned().unwrap_or_default();
    let Some(before) = prev.and_then(|p| p.hists.get(key)) else {
        return now;
    };
    if before.count > now.count {
        return now; // engine restarted; window is meaningless
    }
    let mut h = HistogramSnapshot {
        count: now.count - before.count,
        sum: now.sum.wrapping_sub(before.sum),
        ..HistogramSnapshot::default()
    };
    for i in 0..HIST_BUCKETS {
        h.buckets[i] = now.buckets[i].saturating_sub(before.buckets[i]);
    }
    h
}

/// Eight-level unicode sparkline over `vals`, scaled to their max.
fn sparkline(vals: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = vals.iter().copied().fold(0.0f64, f64::max);
    vals.iter()
        .map(|v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                BARS[(((v / max) * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Sums matching `/timeseries` series per timestamp. A counter family
/// (`engine.worker.tasks{worker=…}`) comes back as one series per
/// label; the sampler stamps them all with the same `t_ms`, so summing
/// by timestamp re-aggregates the family. Counter points are already
/// per-window deltas, so the result reads as a rate series.
fn summed_series(j: &Json, family: &str) -> Vec<(u64, f64)> {
    let mut by_t: BTreeMap<u64, f64> = BTreeMap::new();
    for s in j.get("series").map(Json::items).unwrap_or(&[]) {
        let Some(n) = s.get("name").and_then(Json::as_str) else {
            continue;
        };
        let matches = n == family || (n.starts_with(family) && n[family.len()..].starts_with('{'));
        if !matches {
            continue;
        }
        for p in s.get("points").map(Json::items).unwrap_or(&[]) {
            let (Some(t), Some(v)) = (
                p.idx(0).and_then(Json::as_u64),
                p.idx(1).and_then(Json::as_f64),
            ) else {
                continue;
            };
            *by_t.entry(t).or_insert(0.0) += v;
        }
    }
    by_t.into_iter().collect()
}

fn trend_row(out: &mut String, label: &str, vals: &[f64], cur: String) {
    out.push_str(&format!("{label:<12} {}  cur {cur}\n", sparkline(vals)));
}

/// Builds the sparkline block from a `/timeseries` response, or `None`
/// when the target has no history ring (or nothing to show yet).
fn trends_block(body: &str) -> Option<String> {
    let j = Json::parse(body)?;
    if j.get("enabled").and_then(Json::as_bool) != Some(true) {
        return None;
    }
    let interval_ms = j.get("interval_ms").and_then(Json::as_u64).unwrap_or(0);
    let firings = summed_series(&j, "interp.firings");
    let tasks = summed_series(&j, "engine.worker.tasks");
    let idles = summed_series(&j, "engine.worker.idle_spins");
    let lag = summed_series(&j, "replica.lag");

    let mut out = format!("\ntrends (per {interval_ms} ms sampling window)\n");
    let mut any = false;
    // Cycle throughput: interpreter firings when an Interpreter runs,
    // else worker task completions (driver-based runs).
    let thr = if firings.iter().any(|(_, v)| *v > 0.0) {
        &firings
    } else {
        &tasks
    };
    if !thr.is_empty() {
        let vals: Vec<f64> = thr.iter().map(|(_, v)| *v).collect();
        let cur = vals.last().copied().unwrap_or(0.0);
        trend_row(&mut out, "cycles/win", &vals, format!("{cur:.0}"));
        any = true;
    }
    if !idles.is_empty() {
        let tmap: BTreeMap<u64, f64> = tasks.iter().copied().collect();
        let vals: Vec<f64> = idles
            .iter()
            .map(|(t, idle)| {
                let tk = tmap.get(t).copied().unwrap_or(0.0);
                if idle + tk > 0.0 {
                    idle / (idle + tk)
                } else {
                    0.0
                }
            })
            .collect();
        let cur = vals.last().copied().unwrap_or(0.0);
        trend_row(&mut out, "idle share", &vals, format!("{cur:.3}"));
        any = true;
    }
    if !lag.is_empty() {
        let vals: Vec<f64> = lag.iter().map(|(_, v)| *v).collect();
        let cur = vals.last().copied().unwrap_or(0.0);
        trend_row(&mut out, "replica lag", &vals, format!("{cur:.0}"));
        any = true;
    }
    any.then_some(out)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render(prev: Option<&Frame>, cur: &Frame, addr: &str, clear: bool, trends: Option<&str>) {
    let mut out = String::new();
    if clear {
        out.push_str("\x1b[2J\x1b[H");
    }
    let wall_ns = prev
        .map(|p| cur.at.duration_since(p.at).as_nanos() as u64)
        .unwrap_or(0);
    out.push_str(&format!(
        "psmtop — {addr}  (window {:.1}s)\n\n",
        wall_ns as f64 / 1e9
    ));

    // Per-worker activity.
    let workers = worker_ids(cur);
    if workers.is_empty() {
        out.push_str("workers: none reported yet (no parallel run in registry)\n");
    } else {
        // Pool lifecycle gauges: spawned is per matcher lifetime, so a
        // healthy engine shows it flat at the thread count while
        // batches keep flowing; respawns only move when a worker died.
        let pool = |name: &str| cur.gauges.get(&format!("engine.pool.{name}")).copied();
        if let (Some(spawned), Some(live)) = (pool("spawned"), pool("live")) {
            out.push_str(&format!(
                "pool: {live} live / {spawned} spawned this matcher, {} respawns\n\n",
                pool("respawns").unwrap_or(0)
            ));
        }
        out.push_str("worker     tasks   steals  attempts     busy%    lock%    idle-spins\n");
        let mut exec_total = 0u64;
        let mut lock_total = 0u64;
        for w in &workers {
            let tasks = wdelta(prev, cur, "tasks", w);
            let steals = wdelta(prev, cur, "steals", w);
            let attempts = wdelta(prev, cur, "steal_attempts", w);
            let exec = wdelta(prev, cur, "exec_ns", w);
            let lock = wdelta(prev, cur, "lock_wait_ns", w);
            let spins = wdelta(prev, cur, "idle_spins", w);
            exec_total += exec;
            lock_total += lock;
            let share = |ns: u64| {
                if wall_ns > 0 {
                    format!("{:7.1}%", 100.0 * ns as f64 / wall_ns as f64)
                } else {
                    "      -".to_string()
                }
            };
            out.push_str(&format!(
                "{w:>6}  {tasks:>8}  {steals:>7}  {attempts:>8}  {}  {}  {spins:>12}\n",
                share(exec),
                share(lock)
            ));
        }
        // Live §6 estimate: lock-wait is work the nominal machine counts
        // but the true speed-up loses.
        if wall_ns > 0 && exec_total > 0 {
            let true_c = exec_total as f64 / wall_ns as f64;
            let nominal = (exec_total + lock_total) as f64 / wall_ns as f64;
            out.push_str(&format!(
                "\nlive §6 estimate: nominal concurrency {:.2}, true {:.2}, loss factor {:.2}\n",
                nominal,
                true_c,
                if true_c > 0.0 { nominal / true_c } else { 0.0 }
            ));
        }
    }

    // DES-published exact §6 figures, when a sim run shares the registry.
    let sims: Vec<(String, i64)> = cur
        .gauges
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix("sim.concurrency_milli{system=\"")
                .and_then(|rest| rest.strip_suffix("\"}"))
                .map(|sys| (sys.to_string(), *v))
        })
        .collect();
    for (sys, conc) in &sims {
        let g = |name: &str| {
            cur.gauges
                .get(&format!("{name}{{system=\"{sys}\"}}"))
                .copied()
                .unwrap_or(0)
        };
        out.push_str(&format!(
            "sim[{sys}]: concurrency {:.2}, true speed-up {:.2}, loss factor {:.2}\n",
            *conc as f64 / 1e3,
            g("sim.true_speedup_milli") as f64 / 1e3,
            g("sim.lost_factor_milli") as f64 / 1e3,
        ));
    }

    // Per-phase latency quantiles.
    out.push_str("\nphase       spans       p50       p99      mean\n");
    for (label, key) in [
        ("match", "phase.match_ns"),
        ("select", "phase.select_ns"),
        ("act", "phase.act_ns"),
    ] {
        let h = windowed(prev, cur, key);
        let mean = h.sum.checked_div(h.count).unwrap_or(0);
        out.push_str(&format!(
            "{label:<9} {:>7}  {:>8}  {:>8}  {:>8}\n",
            h.count,
            fmt_ns(h.quantile_bound(0.5)),
            fmt_ns(h.quantile_bound(0.99)),
            fmt_ns(mean)
        ));
    }

    // Hot nodes: top-8 by pairs-compared share, windowed against the
    // previous frame when one exists so the ranking tracks *current*
    // match effort, not lifetime totals.
    if cur.prof_enabled {
        let deltas: Vec<(u64, u64, &ProfRow)> = cur
            .prof_rows
            .iter()
            .map(|(&node, row)| {
                let before = prev
                    .and_then(|p| p.prof_rows.get(&node))
                    .map_or(0, |r| r.pairs);
                (node, row.pairs.saturating_sub(before), row)
            })
            .collect();
        let total: u64 = deltas.iter().map(|(_, d, _)| *d).sum();
        let mut top = deltas;
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.push_str(&format!(
            "\nhot nodes (by pairs compared, {} tracked, {} overflowed)\n",
            cur.prof_retained, cur.prof_overflow
        ));
        out.push_str("node     kind   pairs/win   share     jsel\n");
        for (node, delta, row) in top.iter().take(8) {
            if *delta == 0 && total > 0 {
                break;
            }
            let share = if total > 0 {
                format!("{:5.1}%", 100.0 * *delta as f64 / total as f64)
            } else {
                "     -".to_string()
            };
            out.push_str(&format!(
                "{node:>6}  {:>5}  {delta:>9}  {share}  {:.4}\n",
                row.kind, row.selectivity
            ));
        }
    }

    // Sparkline trends from the history ring, when the target has one.
    if let Some(t) = trends {
        out.push_str(t);
    }

    // Engine state gauges.
    let gauge = |k: &str| cur.gauges.get(k).copied();
    let depth = gauge("interp.conflict_size").or_else(|| gauge("fault.conflict_size"));
    out.push_str(&format!(
        "\nconflict-set depth {}   wm size {}   firings {}   degradation tier {}\n",
        depth.map_or("-".to_string(), |v| v.to_string()),
        gauge("interp.wm_size").map_or("-".to_string(), |v| v.to_string()),
        cur.counters.get("interp.firings").copied().unwrap_or(0),
        gauge("fault.tier").map_or("-".to_string(), |v| v.to_string()),
    ));
    print!("{out}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
}

/// `--demo`: a self-contained live target — a 4-thread parallel engine
/// churning preset cycles in a background thread, publishing into an
/// in-process telemetry server with a history ring sampled at 200 ms
/// (so the sparkline panel has data).
fn spawn_demo() -> (TelemetryServer, Sampler, SocketAddr) {
    use psm_core::{ParallelOptions, ParallelReteMatcher};
    use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

    let obs = Arc::new(Obs::with_history(4096, 16_384, 4096, 64));
    let server = TelemetryServer::start(Arc::clone(&obs), &TelemetryConfig::default())
        .expect("demo listener binds");
    let sampler = Sampler::start(Arc::clone(&obs), Duration::from_millis(200));
    let addr = server.local_addr();
    std::thread::Builder::new()
        .name("psmtop-demo".to_string())
        .spawn(move || {
            let mut seed = 0xD0D0u64;
            loop {
                let workload = GeneratedWorkload::generate(Preset::EpSoar.spec_small())
                    .expect("workload generates");
                let mut matcher = ParallelReteMatcher::compile(
                    &workload.program,
                    ParallelOptions {
                        threads: 4,
                        ..ParallelOptions::default()
                    },
                )
                .expect("engine compiles");
                matcher.attach_obs(Arc::clone(&obs));
                matcher.enable_timing();
                let mut driver = WorkloadDriver::new(workload, seed);
                driver.init(&mut matcher);
                driver.run_cycles(&mut matcher, 200);
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
        })
        .expect("demo thread spawns");
    (server, sampler, addr)
}

fn main() {
    let opts = parse_args();
    let (_demo_server, _demo_sampler, addr) = if opts.demo {
        let (server, sampler, addr) = spawn_demo();
        (Some(server), Some(sampler), addr.to_string())
    } else {
        match &opts.addr {
            Some(a) => (None, None, a.clone()),
            None => {
                eprintln!("usage: psmtop --addr HOST:PORT | --demo  [--interval-ms N] [--once] [--frames N]");
                std::process::exit(2);
            }
        }
    };
    let sock: SocketAddr = match addr.parse() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("psmtop: bad --addr {addr}: {e}");
            std::process::exit(2);
        }
    };

    let mut prev: Option<Frame> = None;
    let mut shown = 0u64;
    if opts.once {
        // Headless mode: take a silent warm frame, wait one interval,
        // and render the second poll windowed against it — a single
        // meaningful frame instead of process-lifetime totals.
        if let Ok((200, body)) = http_get(sock, "/snapshot", Duration::from_secs(5)) {
            if let Some(mut warm) = parse_frame(&body) {
                if let Ok((200, p)) = http_get(sock, "/profile", Duration::from_secs(5)) {
                    parse_profile(&p, &mut warm);
                }
                prev = Some(warm);
            }
        }
        std::thread::sleep(opts.interval);
    }
    loop {
        let frame = match http_get(sock, "/snapshot", Duration::from_secs(5)) {
            Ok((200, body)) => parse_frame(&body),
            Ok((status, _)) => {
                eprintln!("psmtop: /snapshot returned {status}");
                None
            }
            Err(e) => {
                eprintln!("psmtop: {addr}: {e}");
                None
            }
        };
        if let Some(mut cur) = frame {
            if let Ok((200, body)) = http_get(sock, "/profile", Duration::from_secs(5)) {
                parse_profile(&body, &mut cur);
            }
            let trends = http_get(
                sock,
                "/timeseries?metric=interp.firings,engine.worker.tasks,\
                 engine.worker.idle_spins,replica.lag&window=24",
                Duration::from_secs(5),
            )
            .ok()
            .filter(|(status, _)| *status == 200)
            .and_then(|(_, body)| trends_block(&body));
            render(
                prev.as_ref(),
                &cur,
                &addr,
                !opts.once && shown > 0,
                trends.as_deref(),
            );
            prev = Some(cur);
            shown += 1;
        } else if opts.once {
            std::process::exit(1);
        }
        if opts.once || opts.frames.is_some_and(|n| shown >= n) {
            break;
        }
        std::thread::sleep(opts.interval);
    }
}
