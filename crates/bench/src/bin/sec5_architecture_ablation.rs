//! Section 5: justifying the PSM design decisions, by ablation.
//!
//! The paper argues for (1) shared memory with run-time task assignment,
//! (2) high-performance processors with caches, (3) shared buses, and
//! (4) a **hardware task scheduler** ("the serial enqueueing and
//! dequeueing of hundreds of fine-grain node activations ... is expected
//! to become a bottleneck"). This binary quantifies each claim on one
//! captured trace.

use psm_bench::{capture, f, print_table, CliOptions};
use psm_sim::{simulate_psm, CostModel, PsmSpec, Scheduler};
use workloads::Preset;

fn main() {
    let opts = CliOptions::parse(200);
    let cost = CostModel::default();
    let c = capture(Preset::Daa, opts.variant(), opts.cycles, true);
    let base = PsmSpec::paper_32();

    // Claim 4: hardware vs software task scheduling.
    let mut rows = Vec::new();
    let mut spec = base;
    for (name, scheduler) in [
        (
            "hardware (1 bus cycle)",
            Scheduler::Hardware { bus_cycle_us: 0.1 },
        ),
        (
            "software, 50 instr",
            Scheduler::Software {
                overhead_instructions: 50,
            },
        ),
        (
            "software, 100 instr",
            Scheduler::Software {
                overhead_instructions: 100,
            },
        ),
        (
            "software, 200 instr",
            Scheduler::Software {
                overhead_instructions: 200,
            },
        ),
    ] {
        spec.scheduler = scheduler;
        let r = simulate_psm(&c.trace, &cost, &spec);
        rows.push(vec![
            name.to_string(),
            f(r.concurrency, 2),
            f(r.true_speedup, 2),
            f(r.wme_changes_per_sec, 0),
            f(r.sched_overhead_s / r.busy_s * 100.0, 1),
        ]);
    }
    print_table(
        "Section 5 claim 4: task scheduler (P=32)",
        &[
            "scheduler",
            "concurrency",
            "true speedup",
            "wme-ch/s",
            "sched % of busy time",
        ],
        &rows,
    );

    // Hardware-scheduler interference guarantee: per-node exclusive
    // activation vs free same-node parallelism.
    let mut rows = Vec::new();
    for (name, excl) in [
        ("same-node parallel (hashed memories)", false),
        ("per-node exclusive", true),
    ] {
        let mut spec = base;
        spec.per_node_exclusive = excl;
        let r = simulate_psm(&c.trace, &cost, &spec);
        rows.push(vec![
            name.to_string(),
            f(r.concurrency, 2),
            f(r.true_speedup, 2),
            f(r.wme_changes_per_sec, 0),
        ]);
    }
    print_table(
        "Section 5: same-node activation parallelism (assumption 1 of Fig. 6)",
        &[
            "locking granularity",
            "concurrency",
            "true speedup",
            "wme-ch/s",
        ],
        &rows,
    );

    // Claim 3: a single high-speed bus handles ~32 processors given
    // reasonable cache-hit ratios.
    let mut rows = Vec::new();
    for miss in [0.02f64, 0.05, 0.10, 0.20, 0.35] {
        let mut spec = base;
        spec.bus_miss_ratio = miss;
        let r = simulate_psm(&c.trace, &cost, &spec);
        rows.push(vec![
            f(miss * 100.0, 0),
            f(r.bus_utilization * 100.0, 1),
            f(r.true_speedup, 2),
            f(r.wme_changes_per_sec, 0),
        ]);
    }
    print_table(
        "Section 5 claim 3: shared-bus load vs cache miss ratio (P=32)",
        &["miss %", "bus util %", "true speedup", "wme-ch/s"],
        &rows,
    );

    // Claim 2: processor speed matters more than count (weak-processor
    // machines cannot recover via numbers; cf. §7).
    let mut rows = Vec::new();
    for (mips, procs) in [(2.0, 32), (1.0, 64), (0.5, 128), (5.0, 16)] {
        let mut spec = base;
        spec.mips = mips;
        spec.processors = procs;
        let r = simulate_psm(&c.trace, &cost, &spec);
        rows.push(vec![
            format!("{procs} x {mips} MIPS"),
            f(r.concurrency, 2),
            f(r.wme_changes_per_sec, 0),
        ]);
    }
    print_table(
        "Section 5 claim 2: fewer-but-faster beats many-but-weak at equal aggregate MIPS",
        &["machine", "concurrency", "wme-ch/s"],
        &rows,
    );
    println!(
        "\npaper expectations: software scheduling costs a large slice of fine-grain task \
         time; per-node exclusion wastes parallelism; one bus suffices at P=32 with good \
         hit ratios; weak processors cannot be rescued by numbers."
    );
}
