//! Figure 6-2: execution speed (working-memory changes per second) as a
//! function of the number of processors, with 2-MIPS processors —
//! same simulation assumptions as Figure 6-1.

use psm_bench::{capture, f, print_table, Captured, CliOptions, Variant};
use psm_sim::{simulate_psm, CostModel, PsmSpec};
use workloads::Preset;

const PROCESSORS: [usize; 9] = [1, 2, 4, 8, 16, 24, 32, 48, 64];

fn main() {
    let opts = CliOptions::parse(200);
    let cost = CostModel::default();

    let mut series: Vec<(String, Captured)> = Vec::new();
    for preset in Preset::all() {
        series.push((
            preset.name().to_string(),
            capture(preset, opts.variant(), opts.cycles, true),
        ));
    }
    for preset in [Preset::R1Soar, Preset::EpSoar] {
        series.push((
            format!("{} (parallel firings)", preset.name()),
            capture(preset, Variant::ParallelFirings, opts.cycles, true),
        ));
    }

    let mut headers: Vec<String> = vec!["system".into()];
    headers.extend(PROCESSORS.iter().map(|p| format!("P={p}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut at32: Vec<f64> = Vec::new();
    let mut firings32: Vec<f64> = Vec::new();
    for (name, c) in &series {
        let mut row = vec![name.clone()];
        for &p in &PROCESSORS {
            let r = simulate_psm(&c.trace, &cost, &PsmSpec::paper_32().with_processors(p));
            if p == 32 {
                at32.push(r.wme_changes_per_sec);
                firings32.push(r.firings_per_sec);
            }
            row.push(f(r.wme_changes_per_sec, 0));
        }
        rows.push(row);
    }
    opts.maybe_write_csv("fig6_2_speed", &header_refs, &rows);
    print_table(
        "Figure 6-2: execution speed (wme-changes/sec) vs number of processors @ 2 MIPS",
        &header_refs,
        &rows,
    );
    let mean = at32.iter().sum::<f64>() / at32.len() as f64;
    let mean_firings = firings32.iter().sum::<f64>() / firings32.len() as f64;
    println!("\nmean at P=32: {mean:.0} wme-changes/sec, {mean_firings:.0} firings/sec");
    println!("paper: 9400 wme-changes/sec = ~3800 production firings/sec");
}
