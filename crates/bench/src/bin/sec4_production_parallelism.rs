//! Section 4: why fine granularity? Production-level parallelism is
//! bounded at roughly 5-fold despite ~20-40 affected productions per
//! change, because per-production cost is skewed; node-activation
//! parallelism breaks up the expensive productions. This binary computes
//! both unbounded-processor speed-up bounds from unshared traces, plus
//! the sharing loss production parallelism pays.

use psm_bench::{capture, f, print_table, CliOptions};
use psm_sim::{granularity_analysis, CostModel};
use rete::{CompileOptions, Network};
use workloads::{GeneratedWorkload, Preset};

fn main() {
    let opts = CliOptions::parse(200);
    let cost = CostModel::default();

    let mut rows = Vec::new();
    let mut prod_sum = 0.0;
    let mut node_sum = 0.0;
    let mut aff_sum = 0.0;
    let mut n = 0.0;
    for preset in Preset::all() {
        let c = capture(preset, opts.variant(), opts.cycles, false);
        let g = granularity_analysis(&c.trace, &c.network, &cost);
        prod_sum += g.production_speedup;
        node_sum += g.node_speedup;
        aff_sum += g.mean_affected_productions;
        n += 1.0;
        rows.push(vec![
            preset.name().to_string(),
            f(g.mean_affected_productions, 1),
            f(g.production_speedup, 2),
            f(g.node_speedup, 2),
            f(g.node_speedup / g.production_speedup.max(1e-9), 2),
            f(g.production_cost_cv, 2),
        ]);
    }
    rows.push(vec![
        "MEAN".into(),
        f(aff_sum / n, 1),
        f(prod_sum / n, 2),
        f(node_sum / n, 2),
        f(node_sum / prod_sum, 2),
        String::new(),
    ]);
    rows.push(vec![
        "paper".into(),
        "~30".into(),
        "~5".into(),
        "(larger)".into(),
        String::new(),
        "(high)".into(),
    ]);
    print_table(
        "Section 4: unbounded-processor speed-up bounds by granularity",
        &[
            "system",
            "affected/chg",
            "production-par",
            "node-par",
            "node/prod",
            "cost CV",
        ],
        &rows,
    );

    // Sharing loss: production parallelism must give up cross-production
    // node sharing (§4, third bullet).
    let mut share_rows = Vec::new();
    for preset in Preset::all() {
        let spec = if opts.small {
            preset.spec_small()
        } else {
            preset.spec()
        };
        let workload = GeneratedWorkload::generate(spec).unwrap();
        let shared = Network::compile(&workload.program).unwrap();
        let unshared =
            Network::compile_with(&workload.program, CompileOptions { share: false }).unwrap();
        share_rows.push(vec![
            preset.name().to_string(),
            shared.stats.alpha_nodes.to_string(),
            unshared.stats.alpha_nodes.to_string(),
            (shared.stats.joins + shared.stats.negatives).to_string(),
            (unshared.stats.joins + unshared.stats.negatives).to_string(),
            f(
                unshared.stats.alpha_nodes as f64 / shared.stats.alpha_nodes as f64,
                2,
            ),
        ]);
    }
    print_table(
        "Section 4: node sharing lost under production partitioning",
        &[
            "system",
            "alpha (shared)",
            "alpha (unshared)",
            "2-input (shared)",
            "2-input (unshared)",
            "alpha blowup",
        ],
        &share_rows,
    );
    println!(
        "\npaper claims reproduced when production-level speed-up sits near ~5 regardless of \
         the affected-set size, and node-level parallelism exceeds it severalfold."
    );
}
