//! Fault-injection report: how the paper's 32-processor machine and the
//! real supervised engine degrade under injected faults.
//!
//! Two experiments, both fully seeded (same seeds every run):
//!
//! * **Kill sweep** — replay each preset's trace on the §6
//!   32-processor PSM while 1..=8 of the processors fail-stop at the
//!   half-makespan barrier. Reports surviving concurrency and true
//!   speed-up against the fault-free §6 baseline; the paper's
//!   concurrency numbers assume all 32 stay up.
//! * **Supervisor chaos** — run the real parallel engine under a
//!   randomized [`psm_fault::FaultPlan`] (worker panics, dropped tasks,
//!   poisoned locks, transient faults) and report the
//!   [`psm_fault::FaultReport`] counters plus the tier each preset
//!   finished on. Every run is verified against the fault-free
//!   conflict set before it is reported.
//!
//! Artifacts written to `--out DIR` (default `results/`):
//!
//! * `fault_report.json` — both experiments, machine-readable.
//! * `ep-soar.faulted.trace.json` — Chrome trace of a faulted DES run
//!   (4 processors killed + a bus stall), fault marks included.
//!
//! ```sh
//! cargo run --release -p psm-bench --bin fault_report -- --small
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use ops5::{Instantiation, MatchDelta, Matcher, WmeId, WorkingMemory};
use psm_bench::{capture, f, print_table, CliOptions};
use psm_fault::{FaultPlan, ReplicationConfig, ReplicationStore, Supervisor, SupervisorConfig};
use psm_obs::json::{number, push_escaped};
use psm_sim::{
    simulate_psm_faulted, simulate_psm_faulted_timeline, simulate_psm_timeline, CostModel, PsmSpec,
    SimFaults, SimResult,
};
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

const MAX_KILLS: usize = 8;

fn out_dir() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string())
}

struct KillSweep {
    preset: &'static str,
    baseline: SimResult,
    /// `faulted[k-1]` = result with `k` processors killed mid-run.
    faulted: Vec<SimResult>,
}

struct ChaosRun {
    preset: &'static str,
    tier: &'static str,
    report: psm_fault::FaultReport,
    conflict_matches_fault_free: bool,
    /// Wall-clock microseconds for a checkpoint-restore + WAL-replay
    /// drill on the final state.
    recovery_us: u128,
    /// WAL entries that drill replayed.
    recovery_replayed: u64,
    /// Mean size of a full (`PSMC`) checkpoint artifact, bytes.
    full_bytes_mean: u64,
    /// Mean size of a delta (`PSMD`) checkpoint artifact, bytes.
    delta_bytes_mean: u64,
    /// full_bytes_mean / delta_bytes_mean (0 when no deltas shipped).
    delta_ratio: f64,
}

/// Folds matcher deltas into a conflict-set accumulator so the
/// reference run tracks the same state the supervisor maintains.
struct Collecting<'a> {
    inner: &'a mut ReteMatcher,
    conflict: &'a mut HashSet<Instantiation>,
}

impl Collecting<'_> {
    fn fold(&mut self, d: MatchDelta) {
        for i in &d.removed {
            self.conflict.remove(i);
        }
        for i in &d.added {
            self.conflict.insert(i.clone());
        }
    }
}

impl Matcher for Collecting<'_> {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        let d = self.inner.add_wme(wm, id);
        self.fold(d.clone());
        d
    }
    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        let d = self.inner.remove_wme(wm, id);
        self.fold(d.clone());
        d
    }
    fn algorithm_name(&self) -> &'static str {
        "collecting"
    }
}

fn main() {
    // Injected worker panics are caught and recovered by the
    // supervisor; keep their default-hook backtraces out of the report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        if msg.contains("injected fault") || msg.contains("scoped thread panicked") {
            return;
        }
        default_hook(info);
    }));

    let opts = CliOptions::parse(80);
    let out = out_dir();
    let cost = CostModel::default();
    let spec = PsmSpec::paper_32();

    // ---- DES kill sweep -------------------------------------------
    let mut sweeps = Vec::new();
    for preset in Preset::all() {
        let c = capture(preset, opts.variant(), opts.cycles, true);
        let (baseline, _) = simulate_psm_timeline(&c.trace, &cost, &spec);
        let half_us = baseline.makespan_s * 1e6 / 2.0;
        let mut faulted = Vec::new();
        for k in 1..=MAX_KILLS {
            let faults = SimFaults::kill_last_n(k, spec.processors, half_us);
            faulted.push(simulate_psm_faulted(&c.trace, &cost, &spec, &faults));
        }
        sweeps.push(KillSweep {
            preset: preset.name(),
            baseline,
            faulted,
        });

        // One exported faulted schedule, with fault marks visible.
        if preset == Preset::EpSoar {
            let faults = SimFaults::kill_last_n(4, spec.processors, half_us)
                .stall(half_us / 2.0, half_us / 8.0);
            let (_, timeline) = simulate_psm_faulted_timeline(&c.trace, &cost, &spec, &faults);
            let json = timeline
                .to_chrome(1, &format!("psm-32 faulted {}", preset.name()))
                .to_json();
            let path = format!("{out}/{}.faulted.trace.json", preset.name());
            if std::fs::create_dir_all(&out).is_ok() && std::fs::write(&path, json).is_ok() {
                println!("wrote {path}");
            }
        }
    }

    let show = [0usize, 1, 2, 4, 8];
    let headers: Vec<String> = std::iter::once("system".to_string())
        .chain(show.iter().map(|k| format!("conc k={k}")))
        .chain(show.iter().map(|k| format!("speedup k={k}")))
        .collect();
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for s in &sweeps {
        let at = |k: usize| -> &SimResult {
            if k == 0 {
                &s.baseline
            } else {
                &s.faulted[k - 1]
            }
        };
        let mut row = vec![s.preset.to_string()];
        row.extend(show.iter().map(|&k| f(at(k).concurrency, 2)));
        row.extend(show.iter().map(|&k| f(at(k).true_speedup, 2)));
        rows.push(row);
    }
    print_table(
        "graceful degradation: S6 machine with k of 32 processors killed at half-makespan",
        &headers,
        &rows,
    );
    println!(
        "\nkilled processors fail-stop at a cycle barrier; survivors absorb their \
         share, so speed-up degrades roughly with (32-k)/32 plus barrier variance."
    );

    // ---- supervisor chaos summary ---------------------------------
    let mut chaos = Vec::new();
    for (i, preset) in Preset::all().into_iter().enumerate() {
        chaos.push(chaos_run(preset, 0xC4A05 + i as u64));
    }
    let mut rows = Vec::new();
    for c in &chaos {
        let r = &c.report;
        rows.push(vec![
            c.preset.to_string(),
            c.tier.to_string(),
            r.engine_faults.to_string(),
            r.transient_faults.to_string(),
            r.retries.to_string(),
            r.fallbacks.to_string(),
            r.recoveries.to_string(),
            r.checkpoints.to_string(),
            r.wal_replayed.to_string(),
            format!("{} us", c.recovery_us),
            format!("{:.1}", c.full_bytes_mean as f64 / 1024.0),
            format!("{:.1}", c.delta_bytes_mean as f64 / 1024.0),
            f(c.delta_ratio, 1),
            if c.conflict_matches_fault_free {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    print_table(
        "supervised engine under a seeded chaos plan (rate 0.25, 12 cycles)",
        &[
            "system",
            "final tier",
            "engine flt",
            "transient",
            "retries",
            "fallbacks",
            "recoveries",
            "checkpts",
            "wal replay",
            "recovery",
            "full KiB",
            "delta KiB",
            "ratio",
            "exact",
        ],
        &rows,
    );
    println!(
        "\n\"exact\" = recovered conflict set and Rete snapshot are byte-identical \
         to a never-faulted sequential run on the same stream.\n\
         \"recovery\" = wall-clock for a checkpoint-restore + WAL-replay drill; \
         \"full\"/\"delta\" = mean shipped checkpoint artifact sizes (PSMC vs PSMD), \
         \"ratio\" = full/delta."
    );

    write_json(&out, &sweeps, &chaos);
}

/// Runs one preset under a randomized fault plan and verifies the
/// recovered state against a fault-free sequential run.
fn chaos_run(preset: Preset, plan_seed: u64) -> ChaosRun {
    let workload = GeneratedWorkload::generate(preset.spec_small()).expect("workload generates");
    let plan = Arc::new(FaultPlan::randomized(plan_seed, 64, 0.25));
    let config = SupervisorConfig {
        threads: 4,
        backoff: std::time::Duration::from_micros(10),
        checkpoint_every: 4,
        ..SupervisorConfig::default()
    };
    let cycles = 12;

    let mut driver = WorkloadDriver::new(workload.clone(), 0x5EED);
    let mut sup = Supervisor::new(&workload.program, config).expect("program compiles");
    sup.set_fault_plan(Some(plan));
    let store = Arc::new(ReplicationStore::new(ReplicationConfig::default()));
    sup.attach_replication(store.clone());
    driver.init(&mut sup);
    for _ in 0..cycles {
        let batch = driver.next_batch();
        sup.process(driver.working_memory(), &batch);
        driver.commit_batch(&batch);
    }
    let drill = sup.recovery_drill();
    let stats = store.stats();

    // Fault-free reference on the same compiled network.
    let mut rdriver = WorkloadDriver::new(workload, 0x5EED);
    let mut reference = ReteMatcher::from_network(sup.network().clone());
    let mut conflict = HashSet::new();
    {
        let mut r = Collecting {
            inner: &mut reference,
            conflict: &mut conflict,
        };
        rdriver.init(&mut r);
        for _ in 0..cycles {
            let batch = rdriver.next_batch();
            let d = r.inner.process(rdriver.working_memory(), &batch);
            r.fold(d);
            rdriver.commit_batch(&batch);
        }
    }
    let mut sorted: Vec<_> = conflict.into_iter().collect();
    sorted.sort_by(|a, b| (a.production, &a.wmes).cmp(&(b.production, &b.wmes)));
    let exact = sup.conflict_set() == sorted
        && sup.committed_snapshot().as_bytes() == reference.snapshot().as_bytes();

    let full_bytes_mean = stats.full_bytes.checked_div(stats.full_count).unwrap_or(0);
    let delta_bytes_mean = stats
        .delta_bytes
        .checked_div(stats.delta_count)
        .unwrap_or(0);
    ChaosRun {
        preset: preset.name(),
        tier: sup.tier().name(),
        report: sup.report(),
        conflict_matches_fault_free: exact,
        recovery_us: drill.elapsed.as_micros(),
        recovery_replayed: drill.wal_replayed,
        full_bytes_mean,
        delta_bytes_mean,
        delta_ratio: if delta_bytes_mean == 0 {
            0.0
        } else {
            full_bytes_mean as f64 / delta_bytes_mean as f64
        },
    }
}

fn sim_json(r: &SimResult) -> String {
    format!(
        "{{\"concurrency\":{},\"true_speedup\":{},\"makespan_s\":{},\"bus_utilization\":{}}}",
        number(r.concurrency),
        number(r.true_speedup),
        number(r.makespan_s),
        number(r.bus_utilization)
    )
}

fn write_json(out: &str, sweeps: &[KillSweep], chaos: &[ChaosRun]) {
    let mut j = String::from("{\"kill_sweep\":[");
    for (i, s) in sweeps.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        j.push_str("{\"preset\":");
        push_escaped(&mut j, s.preset);
        j.push_str(",\"baseline\":");
        j.push_str(&sim_json(&s.baseline));
        j.push_str(",\"killed\":[");
        for (k, r) in s.faulted.iter().enumerate() {
            if k > 0 {
                j.push(',');
            }
            j.push_str(&format!("{{\"k\":{},\"result\":{}}}", k + 1, sim_json(r)));
        }
        j.push_str("]}");
    }
    j.push_str("],\"chaos\":[");
    for (i, c) in chaos.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        let r = &c.report;
        j.push_str("{\"preset\":");
        push_escaped(&mut j, c.preset);
        j.push_str(",\"final_tier\":");
        push_escaped(&mut j, c.tier);
        j.push_str(&format!(
            ",\"engine_faults\":{},\"transient_faults\":{},\"retries\":{},\"fallbacks\":{},\
             \"recoveries\":{},\"checkpoints\":{},\"wal_replayed\":{},\"deadline_misses\":{},\
             \"worker_respawns\":{},\"recovery_us\":{},\"recovery_replayed\":{},\
             \"full_checkpoint_bytes_mean\":{},\"delta_checkpoint_bytes_mean\":{},\
             \"delta_ratio\":{},\"exact\":{}}}",
            r.engine_faults,
            r.transient_faults,
            r.retries,
            r.fallbacks,
            r.recoveries,
            r.checkpoints,
            r.wal_replayed,
            r.deadline_misses,
            r.worker_respawns,
            c.recovery_us,
            c.recovery_replayed,
            c.full_bytes_mean,
            c.delta_bytes_mean,
            number(c.delta_ratio),
            c.conflict_matches_fault_free
        ));
    }
    j.push_str("]}");
    let path = format!("{out}/fault_report.json");
    if std::fs::create_dir_all(out).is_ok() && std::fs::write(&path, j).is_ok() {
        println!("\nwrote {path}");
    }
}
