//! Interference report: compatibility matrix density + write-set
//! sanitizer cross-check per preset.
//!
//! For every workload preset this binary generates the *acting* variant
//! (rules carry real `remove`/`modify`/`make` RHS actions), computes
//! the inter-production interference relation and parallel-firing
//! compatibility density, then replays the workload with the runtime
//! write-set sanitizer attached and verifies every actual WME touch
//! fell inside the production's static write set. Any sanitizer
//! violation fails the run — that is the CI gate tying the static
//! analysis to the engine's real behavior.
//!
//! Results are printed as a table and written to
//! `results/interference_report.json`; each preset's production
//! dependency graph lands next to it as
//! `results/<preset>.interference.dot`.
//!
//! ```sh
//! cargo run --release -p psm-bench --bin interference_report -- --small
//! ```

use psm_analyze::{analyze_interference, sanitizer_crosscheck};
use psm_bench::{f, print_table, CliOptions};
use psm_obs::json::{number, push_escaped};
use workloads::{GeneratedWorkload, Preset};

fn out_dir() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string())
}

struct Row {
    name: String,
    rules: usize,
    pairs: usize,
    density: f64,
    firings: u64,
    checks: u64,
    violations: usize,
}

fn main() {
    let opts = CliOptions::parse(40);
    let out = out_dir();
    let mut rows: Vec<Row> = Vec::new();
    let mut dots: Vec<(String, String)> = Vec::new();

    for preset in Preset::all() {
        let spec = if opts.small {
            preset.spec_acting()
        } else {
            let mut spec = preset.spec();
            spec.name = format!("{}-acting", spec.name);
            spec.rhs_actions = 0.7;
            spec
        };

        let w = GeneratedWorkload::generate(spec.clone()).expect("preset generates");
        let analysis = analyze_interference(&w.program);
        dots.push((preset.name().to_string(), analysis.to_dot()));

        let outcome = sanitizer_crosscheck(spec, opts.cycles).expect("crosscheck runs");
        for v in &outcome.violations {
            eprintln!(
                "sanitizer violation [{}] {}: {}",
                preset.name(),
                v.production,
                v.detail
            );
        }
        rows.push(Row {
            name: preset.name().to_string(),
            rules: analysis.rules(),
            pairs: analysis.pairs.len(),
            density: analysis.density(),
            firings: outcome.firings,
            checks: outcome.checks,
            violations: outcome.violations.len(),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.rules.to_string(),
                r.pairs.to_string(),
                f(r.density, 3),
                r.firings.to_string(),
                r.checks.to_string(),
                r.violations.to_string(),
            ]
        })
        .collect();
    print_table(
        "interference: compatibility matrix + write-set sanitizer cross-check",
        &[
            "system",
            "rules",
            "conflict pairs",
            "density",
            "firings",
            "checks",
            "violations",
        ],
        &table,
    );

    // JSON artifact for CI and EXPERIMENTS.md.
    let mut json = String::from("{\"schema_version\":1,\"presets\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str("{\"name\":");
        push_escaped(&mut json, &r.name);
        json.push_str(&format!(
            ",\"rules\":{},\"conflicting_pairs\":{}",
            r.rules, r.pairs
        ));
        json.push_str(",\"density\":");
        json.push_str(&format!("{:.6}", r.density));
        json.push_str(&format!(
            ",\"sanitizer\":{{\"firings\":{},\"checks\":{},\"violations\":{}}}",
            r.firings, r.checks, r.violations
        ));
        json.push('}');
    }
    json.push_str("],\"total_firings\":");
    let total_firings: u64 = rows.iter().map(|r| r.firings).sum();
    json.push_str(&number(total_firings as f64));
    json.push('}');
    if std::fs::create_dir_all(&out).is_ok() {
        let path = format!("{out}/interference_report.json");
        if std::fs::write(&path, &json).is_ok() {
            println!("\nwrote {path}");
        }
        for (name, dot) in &dots {
            let path = format!("{out}/{name}.interference.dot");
            if std::fs::write(&path, dot).is_ok() {
                println!("wrote {path}");
            }
        }
    }

    // Gate: the sanitizer must have exercised real firings and found
    // nothing outside the static write sets.
    let violations: usize = rows.iter().map(|r| r.violations).sum();
    if violations > 0 || total_firings == 0 {
        eprintln!("FAIL: {violations} sanitizer violations, {total_firings} total firings");
        std::process::exit(1);
    }
}
