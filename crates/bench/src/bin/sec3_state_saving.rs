//! Section 3.1: state-saving vs non-state-saving match.
//!
//! Two parts: (1) the paper's analytic model with its measured constants
//! (c1 ≈ 1800, c3 ≈ 1100, breakeven (i+d)/s ≈ 0.61); (2) the same
//! comparison measured on our implementations — Rete's incremental work
//! against the naive matcher's recompute work on an identical change
//! stream, plus the measured WM turnover showing real systems sit far
//! below breakeven.

use baselines::NaiveMatcher;
use psm_bench::{capture_spec, f, print_table, CliOptions};
use psm_sim::{CostModel, StateSavingModel};
use rete::ReteMatcher;
use workloads::{Preset, WorkloadDriver};

fn main() {
    let opts = CliOptions::parse(60);
    let model = StateSavingModel::paper();

    // Part 1: the analytic model.
    let mut rows = Vec::new();
    for turnover in [
        0.001,
        0.005,
        0.02,
        0.1,
        0.3,
        model.breakeven_turnover(),
        0.8,
    ] {
        rows.push(vec![
            f(turnover * 100.0, 2),
            f(model.advantage(turnover), 1),
            if model.advantage(turnover) >= 1.0 {
                "state-saving".into()
            } else {
                "non-state-saving".into()
            },
        ]);
    }
    print_table(
        "Section 3.1 analytic model (c1=c2=1800, c3=1100)",
        &["turnover %/cycle", "state-saving advantage", "winner"],
        &rows,
    );
    println!(
        "breakeven turnover: {:.1}% of WM per cycle (paper: 61%)",
        model.breakeven_turnover() * 100.0
    );

    // Part 2: measured on a real workload. The naive matcher is too slow
    // for the full presets, so use the quarter-scale DAA stand-in.
    let spec = if opts.small {
        let mut s = Preset::EpSoar.spec_small();
        s.wm_size = 80;
        s
    } else {
        let mut s = Preset::EpSoar.spec();
        s.wm_size = 160;
        s
    };
    let wm_size = spec.wm_size;
    let workload = workloads::GeneratedWorkload::generate(spec.clone()).unwrap();

    let mut rete_m = ReteMatcher::compile(&workload.program).unwrap();
    let mut d1 = WorkloadDriver::new(workload.clone(), 7);
    d1.init(&mut rete_m);
    let t0 = std::time::Instant::now();
    let rete_report = d1.run_cycles(&mut rete_m, opts.cycles);
    let rete_wall = t0.elapsed();

    let mut naive_m = NaiveMatcher::new(&workload.program);
    let mut d2 = WorkloadDriver::new(workload.clone(), 7);
    d2.init(&mut naive_m);
    let t0 = std::time::Instant::now();
    let naive_report = d2.run_cycles(&mut naive_m, opts.cycles);
    let naive_wall = t0.elapsed();

    // Measured c1: instruction cost per change from the traced run.
    let c = capture_spec(spec, opts.cycles, true);
    let cost = CostModel::default();
    let measured_c1 = cost.mean_change_cost(&c.trace);
    let turnover = rete_report.changes_per_cycle() / wm_size as f64;

    print_table(
        "Section 3.1 measured (identical change streams)",
        &[
            "quantity",
            "rete (state-saving)",
            "naive (non-state-saving)",
        ],
        &[
            vec![
                "wall time / cycle (us)".into(),
                f(rete_wall.as_micros() as f64 / opts.cycles as f64, 1),
                f(naive_wall.as_micros() as f64 / opts.cycles as f64, 1),
            ],
            vec![
                "wme-changes/sec (real)".into(),
                f(rete_report.wme_changes_per_sec(), 0),
                f(naive_report.wme_changes_per_sec(), 0),
            ],
        ],
    );
    println!("\nmeasured c1 (instr/change, cost model): {measured_c1:.0}   (paper: ~1800)");
    println!(
        "measured turnover: {:.2}% of WM per cycle   (paper: <0.5%)",
        turnover * 100.0
    );
    println!(
        "measured state-saving advantage (wall clock): {:.1}x   (paper: ~20x breakeven margin)",
        naive_wall.as_secs_f64() / rete_wall.as_secs_f64()
    );
}
