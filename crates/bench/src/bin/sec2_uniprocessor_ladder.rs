//! Section 2.2: the uniprocessor interpreter speed ladder (Lisp ~8,
//! Bliss ~40, compiled OPS83 ~200, optimized 400-800 wme-changes/s on a
//! VAX-11/780), derived from our measured per-change instruction cost.

use psm_bench::{capture, f, print_table, CliOptions};
use psm_sim::{uniprocessor_ladder, CostModel};
use workloads::Preset;

fn main() {
    let opts = CliOptions::parse(200);
    let cost = CostModel::default();

    // Measure the mean per-change cost over all presets.
    let mut total = 0.0;
    let mut n = 0.0;
    for preset in Preset::all() {
        let c = capture(preset, opts.variant(), opts.cycles, true);
        total += cost.mean_change_cost(&c.trace);
        n += 1.0;
    }
    let mean_cost = total / n;
    println!("measured mean cost: {mean_cost:.0} instructions/change (paper c1: ~1800)");

    let rows: Vec<Vec<String>> = uniprocessor_ladder(mean_cost)
        .into_iter()
        .map(|r| {
            vec![
                r.implementation.to_string(),
                f(r.overhead_factor, 2),
                f(r.wme_changes_per_sec, 0),
                r.paper_reported.to_string(),
            ]
        })
        .collect();
    print_table(
        "Section 2.2: interpreter ladder on a VAX-11/780",
        &[
            "implementation",
            "overhead factor",
            "wme-ch/s (ours)",
            "paper",
        ],
        &rows,
    );
    println!("\nparallel goal (paper): 5000-10000 wme-changes/sec.");
}
