//! Quick calibration probe: measured workload characteristics vs the
//! paper's reference quantities (not itself a paper experiment).

use psm_bench::{capture, f, print_table, CliOptions};
use psm_sim::CostModel;
use workloads::{Characteristics, Preset};

fn main() {
    let opts = CliOptions::parse(100);
    let cost = CostModel::default();
    let mut rows = Vec::new();
    for preset in Preset::all() {
        let t0 = std::time::Instant::now();
        let c = capture(preset, opts.variant(), opts.cycles, true);
        let gen_s = t0.elapsed().as_secs_f64();
        let ch = Characteristics::measure(&c.workload, &c.trace);
        rows.push(vec![
            preset.name().to_string(),
            ch.productions.to_string(),
            f(ch.affected_per_change, 1),
            f(ch.changes_per_cycle, 1),
            f(ch.activations_per_change, 1),
            f(ch.turnover_per_cycle * 100.0, 2),
            f(cost.mean_change_cost(&c.trace), 0),
            if ch.paper_shaped() { "yes" } else { "NO" }.to_string(),
            f(gen_s, 1),
        ]);
    }
    print_table(
        "calibration probe (paper: affected ~30, turnover <0.5%, cost ~1800 instr/change)",
        &[
            "system",
            "prods",
            "affected/chg",
            "chg/cycle",
            "acts/chg",
            "turnover %",
            "instr/chg",
            "paper-shaped",
            "secs",
        ],
        &rows,
    );
}
