//! Pool smoke gate: the persistent worker pool must come up, match,
//! and tear down cleanly at every supported width on every preset.
//!
//! For each `threads` in {2, 8, 32} and every workload preset this
//! compiles a [`ParallelReteMatcher`], drives it through a batch
//! stream, and asserts the pool lifecycle contract:
//!
//! * no worker panics escape (`take_faults() == 0` with no plan set);
//! * the pool spawns exactly `threads` workers for the matcher's whole
//!   lifetime (`spawned == threads`, `respawns == 0`) — the pre-pool
//!   engine spawned `threads × phases` and would fail this instantly;
//! * every configured worker is still live at the end (`live == threads`);
//! * dropping the matcher joins the crew: the process thread count
//!   (from `/proc/self/status`) returns to its pre-run level, so a
//!   deadlocked or leaked worker fails the gate instead of lingering.
//!
//! Deadlocks are caught by the CI job's step timeout: a worker stuck
//! on the phase gate or the drain loop hangs this binary.
//!
//! ```sh
//! cargo run --release -p psm-bench --bin pool_smoke
//! ```

use psm_bench::print_table;
use psm_core::{ParallelOptions, ParallelReteMatcher};
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

const WIDTHS: [usize; 3] = [2, 8, 32];
const CYCLES: u64 = 12;

/// Current thread count of this process, from `/proc/self/status`.
/// Returns `None` off Linux (the join check is then skipped; the
/// lifecycle asserts still run).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Waits briefly for the process thread count to drop back to
/// `baseline`: `Drop` joins the crew synchronously, but the kernel may
/// report an exiting thread for a moment after `join` returns.
fn settled_thread_count(baseline: usize) -> Option<usize> {
    let mut now = process_threads()?;
    for _ in 0..50 {
        if now <= baseline {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        now = process_threads()?;
    }
    Some(now)
}

fn smoke(preset: Preset, threads: usize) -> Vec<String> {
    let workload = GeneratedWorkload::generate(preset.spec_small()).expect("workload generates");
    let baseline = process_threads();

    let mut matcher = ParallelReteMatcher::compile(
        &workload.program,
        ParallelOptions {
            threads,
            ..ParallelOptions::default()
        },
    )
    .expect("program compiles");
    let mut driver = WorkloadDriver::new(workload, 0x5E0C + threads as u64);
    driver.init(&mut matcher);
    driver.run_cycles(&mut matcher, CYCLES);

    assert_eq!(
        matcher.take_faults(),
        0,
        "{} t{threads}: a worker panicked with no fault plan set",
        preset.name()
    );
    let stats = matcher.pool_stats();
    assert_eq!(
        stats.spawned,
        threads as u64,
        "{} t{threads}: pool must spawn exactly once per worker per matcher lifetime",
        preset.name()
    );
    assert_eq!(
        stats.respawns,
        0,
        "{} t{threads}: no worker died, so nothing should have been respawned",
        preset.name()
    );
    assert_eq!(
        stats.live,
        threads,
        "{} t{threads}: final worker count must equal the configured threads",
        preset.name()
    );
    let total = matcher.worker_totals_merged();

    drop(matcher);
    let joined = match baseline {
        Some(before) => {
            let after = settled_thread_count(before).unwrap_or(usize::MAX);
            assert!(
                after <= before,
                "{} t{threads}: {} thread(s) leaked past drop (before {before}, after {after})",
                preset.name(),
                after - before
            );
            "yes".to_string()
        }
        None => "n/a".to_string(),
    };

    vec![
        preset.name().to_string(),
        threads.to_string(),
        total.tasks.to_string(),
        total.steals.to_string(),
        stats.spawned.to_string(),
        stats.live.to_string(),
        joined,
    ]
}

fn main() {
    let mut rows = Vec::new();
    for &threads in &WIDTHS {
        for preset in Preset::all() {
            rows.push(smoke(preset, threads));
        }
    }
    print_table(
        &format!("pool smoke: {CYCLES} cycles per preset, widths {WIDTHS:?}"),
        &[
            "system", "threads", "tasks", "steals", "spawned", "live", "joined",
        ],
        &rows,
    );
    println!(
        "\nall {} runs clean: spawn count == threads per matcher lifetime, \
         no panics, no leaked threads.",
        rows.len()
    );
}
