//! `psmprof` — profiler-driven cost-model calibration over the presets.
//!
//! For each preset this runs a seeded workload under the per-node join
//! profiler, learns measured join selectivities
//! (`tokens_out / pairs_compared`, shrunk toward the static prior for
//! low-count joins), then lets the same run continue for a second
//! window and reports the static model's predicted-vs-measured drift
//! before and after calibration against that holdout. Artifacts:
//!
//! * `results/calibration.json` — the `CalibratedCostParams` records
//!   for every preset (per-join predicted/calibrated/validated values
//!   and error factors).
//! * `results/<preset>.folded` — the calibration run's profile as
//!   folded stacks (`production;node;… weight`), directly consumable by
//!   standard flamegraph tooling.
//!
//! Exits non-zero when any preset's post-calibration drift exceeds the
//! `--gate` factor (default 2.0) — the acceptance bound that replaces
//! the static model's 4–24× error.
//!
//! ```sh
//! cargo run --release -p psm-bench --bin psmprof -- --small
//! cargo run --release -p psm-bench --bin psmprof -- --small --preset vt,mud
//! ```

use psm_analyze::calibrate_workload;
use psm_bench::{f, print_table, CliOptions};
use workloads::Preset;

const CALIBRATION_SEED: u64 = 0xCA11;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let opts = CliOptions::parse(900);
    let args: Vec<String> = std::env::args().collect();
    let out_dir = arg_value(&args, "--out").unwrap_or_else(|| "results".to_string());
    let gate: f64 = arg_value(&args, "--gate")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let filter: Option<Vec<String>> =
        arg_value(&args, "--preset").map(|s| s.split(',').map(|p| p.trim().to_string()).collect());

    let presets: Vec<Preset> = Preset::all()
        .into_iter()
        .filter(|p| {
            filter
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| n == p.name()))
        })
        .collect();
    if presets.is_empty() {
        eprintln!("psmprof: no preset matches --preset filter");
        std::process::exit(2);
    }

    std::fs::create_dir_all(&out_dir).expect("results dir");
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    let mut worst_after: f64 = 1.0;
    for preset in presets {
        let spec = if opts.small {
            preset.spec_small()
        } else {
            preset.spec()
        };
        let report =
            calibrate_workload(spec, opts.cycles, CALIBRATION_SEED).expect("calibration runs");
        let folded_path = format!("{out_dir}/{}.folded", preset.name());
        std::fs::write(&folded_path, &report.folded).expect("writes folded stacks");
        let before = report.max_before_error();
        let after = report.max_after_error();
        worst_after = worst_after.max(after);
        rows.push(vec![
            report.name.clone(),
            report.joins.len().to_string(),
            report.sampled_joins().to_string(),
            f(before, 2),
            f(after, 2),
            if after <= gate { "ok" } else { "DRIFT" }.to_string(),
        ]);
        reports.push(report);
    }

    print_table(
        "cost-model calibration (max per-join jsel error factor, sampled joins)",
        &["workload", "joins", "sampled", "before", "after", "gate"],
        &rows,
    );

    let mut json = format!(
        "{{\"generated_by\":\"psmprof\",\"cycles\":{},\"seed\":{CALIBRATION_SEED},\
         \"gate\":{gate},\"workloads\":[",
        reports.first().map_or(0, |r| r.cycles)
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&r.to_json());
    }
    json.push_str("]}");
    let json_path = format!("{out_dir}/calibration.json");
    std::fs::write(&json_path, &json).expect("writes calibration.json");
    println!("\nwrote {json_path} and per-preset .folded stacks");

    if worst_after > gate {
        eprintln!("psmprof: calibrated drift {worst_after:.2}x exceeds gate {gate:.1}x");
        std::process::exit(1);
    }
    println!("calibrated drift within {gate:.1}x on every preset");
}
