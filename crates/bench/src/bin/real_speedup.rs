//! Real-multicore validation: the paper closes by porting the parallel
//! Rete to a 4-processor VAX-11/784. This binary is our stand-in: run
//! the node-parallel engine and the production-parallel engine on actual
//! cores, thread counts 1..N, and report measured wall-clock speed-up on
//! identical change streams.

use ops5::Matcher;
use psm_bench::{f, print_table, CliOptions};
use psm_core::{ParallelOptions, ParallelReteMatcher, ProductionParallelMatcher};
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

fn run<M: Matcher>(workload: &GeneratedWorkload, matcher: &mut M, cycles: u64) -> f64 {
    let mut driver = WorkloadDriver::new(workload.clone(), 99);
    driver.init(matcher);
    let report = driver.run_cycles(matcher, cycles);
    report.match_time.as_secs_f64()
}

fn main() {
    let opts = CliOptions::parse(400);
    let ncpu = std::thread::available_parallelism().map_or(4, |n| n.get());
    let spec = if opts.small {
        Preset::R1Soar.spec_small()
    } else {
        Preset::R1Soar.spec()
    };
    let workload = GeneratedWorkload::generate(spec).unwrap();

    // Sequential baseline ("best known uniprocessor implementation").
    let mut seq = ReteMatcher::compile(&workload.program).unwrap();
    let seq_time = run(&workload, &mut seq, opts.cycles);

    let mut rows = vec![vec![
        "sequential rete".into(),
        "-".into(),
        f(seq_time * 1e3, 1),
        f(1.0, 2),
    ]];

    let mut threads = vec![1usize, 2, 4];
    if ncpu >= 8 {
        threads.push(8);
    }
    if ncpu > 8 {
        threads.push(ncpu);
    }
    for &t in &threads {
        let mut par = ParallelReteMatcher::compile(
            &workload.program,
            ParallelOptions {
                threads: t,
                share: true,
            },
        )
        .unwrap();
        let time = run(&workload, &mut par, opts.cycles);
        rows.push(vec![
            "node-parallel rete".into(),
            t.to_string(),
            f(time * 1e3, 1),
            f(seq_time / time, 2),
        ]);
    }
    for &t in &threads {
        let mut pp = ProductionParallelMatcher::compile(&workload.program, t).unwrap();
        let time = run(&workload, &mut pp, opts.cycles);
        rows.push(vec![
            "production-parallel".into(),
            t.to_string(),
            f(time * 1e3, 1),
            f(seq_time / time, 2),
        ]);
    }
    print_table(
        &format!(
            "Real-hardware speed-up, {} cycles of r1-soar-like workload ({} cores available)",
            opts.cycles, ncpu
        ),
        &[
            "engine",
            "threads",
            "match time (ms)",
            "speedup vs sequential",
        ],
        &rows,
    );
    println!(
        "\nthe paper's VAX-11/784 had 4 processors; true speed-up on real hardware is \
         expected well below the activation-level bound because tasks are ~50-100 \
         instructions and scheduling is software (no hardware task scheduler here)."
    );
}
