//! Section 7: the architecture comparison table. DADO (Rete and TREAT),
//! NON-VON, Oflazer's machine, and the proposed PSM, all driven by the
//! same measured traces. The reproduction target is the paper's ordering
//! and bands, not the absolute 1986 numbers.

use psm_bench::{capture, f, print_table, CliOptions};
use psm_sim::{
    simulate_dado_rete, simulate_dado_treat, simulate_nonvon, simulate_oflazer_machine,
    simulate_psm, CostModel, PsmSpec,
};
use workloads::Preset;

fn main() {
    let opts = CliOptions::parse(200);
    let cost = CostModel::default();

    let mut acc = [0.0f64; 5];
    let mut rows = Vec::new();
    let mut n = 0.0;
    for preset in Preset::all() {
        // Unshared network: exact per-production attribution for the
        // partitioned tree machines. Costs renormalized to the paper's
        // c1 = 1800 instructions/change so the absolute bands compare.
        let c = capture(preset, opts.variant(), opts.cycles, false);
        let cost = cost.normalized_to(&c.trace, 1800.0);
        let dado = simulate_dado_rete(&c.trace, &c.network, &cost);
        let treat = simulate_dado_treat(&c.trace, &c.network, &cost);
        let nonvon = simulate_nonvon(&c.trace, &c.network, &cost);
        let ofl = simulate_oflazer_machine(&c.trace, &c.network, &cost);
        let psm = simulate_psm(&c.trace, &cost, &PsmSpec::paper_32());
        let vals = [
            dado.wme_changes_per_sec,
            treat.wme_changes_per_sec,
            nonvon.wme_changes_per_sec,
            ofl.wme_changes_per_sec,
            psm.wme_changes_per_sec,
        ];
        for (a, v) in acc.iter_mut().zip(vals) {
            *a += v;
        }
        n += 1.0;
        rows.push(vec![
            preset.name().to_string(),
            f(vals[0], 0),
            f(vals[1], 0),
            f(vals[2], 0),
            f(vals[3], 0),
            f(vals[4], 0),
        ]);
    }
    rows.push(vec![
        "MEAN".into(),
        f(acc[0] / n, 0),
        f(acc[1] / n, 0),
        f(acc[2] / n, 0),
        f(acc[3] / n, 0),
        f(acc[4] / n, 0),
    ]);
    rows.push(vec![
        "paper".into(),
        "~175".into(),
        "~215".into(),
        "~2000".into(),
        "4500-7000".into(),
        "~9400".into(),
    ]);
    print_table(
        "Section 7: wme-changes/sec by architecture",
        &[
            "system",
            "DADO-Rete",
            "DADO-TREAT",
            "NON-VON",
            "Oflazer",
            "PSM-32",
        ],
        &rows,
    );
    println!(
        "\npaper conclusions reproduced when the ordering DADO-Rete < DADO-TREAT < NON-VON \
         < Oflazer <= PSM holds and the tree machines trail by orders of magnitude."
    );
}
