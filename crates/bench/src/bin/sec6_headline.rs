//! Section 6 headline numbers at the paper's 32-processor, 2-MIPS
//! configuration: average concurrency, true speed-up over the best
//! uniprocessor implementation, the lost factor between them, and
//! execution speed.

use psm_bench::{capture, f, print_table, CliOptions, Variant};
use psm_sim::{simulate_psm, CostModel, PsmSpec};
use workloads::Preset;

fn main() {
    let opts = CliOptions::parse(200);
    let cost = CostModel::default();
    let spec = PsmSpec::paper_32();

    let mut rows = Vec::new();
    let mut sums = (0.0, 0.0, 0.0, 0.0, 0.0);
    let mut n = 0.0;
    let mut series: Vec<(String, Variant, Preset)> = Preset::all()
        .into_iter()
        .map(|p| (p.name().to_string(), opts.variant(), p))
        .collect();
    for p in [Preset::R1Soar, Preset::EpSoar] {
        series.push((
            format!("{} (parallel firings)", p.name()),
            Variant::ParallelFirings,
            p,
        ));
    }

    let mut normalized_speed_sum = 0.0;
    for (name, variant, preset) in series {
        let c = capture(preset, variant, opts.cycles, true);
        let r = simulate_psm(&c.trace, &cost, &spec);
        // Also simulate under a cost model renormalized to the paper's
        // c1 = 1800 instructions/change, making the absolute speeds
        // comparable to the published 9400.
        let norm = cost.normalized_to(&c.trace, 1800.0);
        let rn = simulate_psm(&c.trace, &norm, &spec);
        normalized_speed_sum += rn.wme_changes_per_sec;
        rows.push(vec![
            name,
            f(r.concurrency, 2),
            f(r.true_speedup, 2),
            f(r.lost_factor(), 2),
            f(r.wme_changes_per_sec, 0),
            f(r.firings_per_sec, 0),
            f(cost.mean_change_cost(&c.trace), 0),
        ]);
        sums.0 += r.concurrency;
        sums.1 += r.true_speedup;
        sums.2 += r.lost_factor();
        sums.3 += r.wme_changes_per_sec;
        sums.4 += r.firings_per_sec;
        n += 1.0;
    }
    rows.push(vec![
        "MEAN".into(),
        f(sums.0 / n, 2),
        f(sums.1 / n, 2),
        f(sums.2 / n, 2),
        f(sums.3 / n, 0),
        f(sums.4 / n, 0),
        String::new(),
    ]);
    rows.push(vec![
        "paper".into(),
        "15.92".into(),
        "8.25".into(),
        "1.93".into(),
        "9400".into(),
        "~3800".into(),
        "1800".into(),
    ]);
    print_table(
        "Section 6 headline @ P=32, 2 MIPS, hardware scheduler",
        &[
            "system",
            "concurrency",
            "true speedup",
            "lost factor",
            "wme-ch/s",
            "firings/s",
            "instr/chg",
        ],
        &rows,
    );
    println!(
        "\nmean speed with the cost model renormalized to c1=1800 instr/change: {:.0} \
         wme-ch/s (paper: 9400)",
        normalized_speed_sum / n
    );
    println!("paper claim reproduced: true speed-up from parallelism is limited, < 10-fold.");
}
