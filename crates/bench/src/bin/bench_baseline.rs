//! Performance baseline: tier-1 preset throughput and per-phase
//! latency quantiles, written to `results/bench_baseline.json` so
//! future PRs have a perf trajectory to compare against (and CI can
//! archive it as an artifact).
//!
//! Each preset runs `--cycles` driver batches through the sequential
//! Rete matcher. Per-batch latencies land in `psm-obs` histograms:
//! `act` is batch synthesis (the driver playing the firing's RHS),
//! `match` is `Matcher::process`, `select` is batch commit (conflict
//! resolution is trivial in driver runs). The report also measures the
//! telemetry-plane on/off delta — the same preset run bare vs with a
//! live `/metrics` listener, a provenance ring, and registry counters —
//! backing the "near-zero overhead when off" claim in DESIGN.md.
//!
//! ```sh
//! cargo run --release -p psm-bench --bin bench_baseline -- --small
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use ops5::{parse_program, parse_wmes, Interpreter, Matcher};
use psm_bench::trajectory::{
    append_history, fingerprint, git_commit, measure_reps, read_history, unix_now,
    write_trajectory_artifact, PresetTrack, TrajectoryRecord,
};
use psm_bench::{f, print_table, CliOptions, Variant};
use psm_core::{ParallelOptions, ParallelReteMatcher, WorkerStats};
use psm_obs::{HistogramSnapshot, Obs, Sampler};
use psm_telemetry::{TelemetryConfig, TelemetryServer};
use rete::ReteMatcher;
use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

/// Interleaved per-preset reps recorded into the history record; the
/// `perf_gate` binary re-measures the same count so the paired
/// comparison in `psm_analyze::regress` lines rank against rank.
const PERF_GATE_REPS: usize = 7;

fn out_dir() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string())
}

struct PresetBaseline {
    name: &'static str,
    cycles: u64,
    wme_changes: u64,
    elapsed_s: f64,
    wme_changes_per_sec: f64,
    /// Same workload and change stream through the linear-scan
    /// ablation (`ReteMatcher::compile_linear`); the headline number
    /// above uses the hashed production default.
    linear_wme_changes_per_sec: f64,
    firings_per_sec: f64,
    phases: Vec<(&'static str, HistogramSnapshot)>,
}

/// Runs one preset, recording per-phase latencies into `obs`. With
/// `linear` the matcher is the linear-scan ablation; otherwise the
/// hashed production default.
fn run_preset(preset: Preset, variant: Variant, cycles: u64, linear: bool) -> PresetBaseline {
    let spec = match variant {
        Variant::Small => preset.spec_small(),
        _ => preset.spec(),
    };
    let workload = GeneratedWorkload::generate(spec).expect("workload generates");
    let mut matcher = if linear {
        ReteMatcher::compile_linear(&workload.program).expect("compiles")
    } else {
        ReteMatcher::compile(&workload.program).expect("compiles")
    };
    let obs = Obs::new(0);
    let mut driver = WorkloadDriver::new(workload, 0xBA5E);
    driver.init(&mut matcher);

    let act = obs.metrics.histogram("phase.act_ns");
    let match_h = obs.metrics.histogram("phase.match_ns");
    let select = obs.metrics.histogram("phase.select_ns");
    let mut wme_changes = 0u64;
    let mut ran = 0u64;
    let started = Instant::now();
    for _ in 0..cycles {
        let t0 = Instant::now();
        let batch = driver.next_batch();
        act.record(t0.elapsed().as_nanos() as u64);
        if batch.is_empty() {
            break;
        }
        let t0 = Instant::now();
        matcher.process(driver.working_memory(), &batch);
        match_h.record(t0.elapsed().as_nanos() as u64);
        let t0 = Instant::now();
        driver.commit_batch(&batch);
        select.record(t0.elapsed().as_nanos() as u64);
        wme_changes += batch.len() as u64;
        ran += 1;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let snap = obs.metrics.snapshot();
    let phase = |k: &str| snap.histograms.get(k).cloned().unwrap_or_default();
    PresetBaseline {
        name: preset.name(),
        cycles: ran,
        wme_changes,
        elapsed_s,
        wme_changes_per_sec: wme_changes as f64 / elapsed_s.max(1e-12),
        linear_wme_changes_per_sec: 0.0,
        // Each driver batch models one firing's change batch.
        firings_per_sec: ran as f64 / elapsed_s.max(1e-12),
        phases: vec![
            ("match", phase("phase.match_ns")),
            ("select", phase("phase.select_ns")),
            ("act", phase("phase.act_ns")),
        ],
    }
}

/// Scheduler health of the persistent-pool parallel engine on the
/// blocks-world program (small batches — the regime where the old
/// spawn-per-phase design let worker 0 drain everything solo).
struct EngineBaseline {
    threads: usize,
    iterations: usize,
    per_worker: Vec<WorkerStats>,
    /// Threads spawned by the last matcher over its whole lifetime
    /// (must equal `threads`: one spawn per worker, not per phase).
    spawned_per_matcher: u64,
    respawns: u64,
    live: usize,
    elapsed_s: f64,
}

impl EngineBaseline {
    fn totals(&self) -> WorkerStats {
        let mut t = WorkerStats::default();
        for w in &self.per_worker {
            t.merge(w);
        }
        t
    }

    /// Idle polls as a share of all poll outcomes (tasks + idle).
    fn idle_share(&self) -> f64 {
        let t = self.totals();
        t.idle_spins as f64 / (t.tasks + t.idle_spins).max(1) as f64
    }

    fn workers_with_tasks(&self) -> usize {
        self.per_worker.iter().filter(|w| w.tasks > 0).count()
    }

    fn workers_with_steals(&self) -> usize {
        self.per_worker.iter().filter(|w| w.steals > 0).count()
    }
}

/// Idle-share ceiling for the blocks-world run, recalibrated for the
/// persistent pool. The pre-pool seed recorded 0 idle spins *and* 0
/// steals because non-zero workers never participated at all (spawn
/// latency let worker 0 drain every phase solo) — the counters were
/// fake, as ROADMAP noted. Under the pool, all workers participate and
/// measured idle share is ~0.001 on 1 core / small batches; the ceiling
/// leaves headroom for multi-core CI boxes while still catching a
/// return of spin-heavy scheduling.
const IDLE_SHARE_CEILING: f64 = 0.20;

/// Runs the parallel engine on the blocks-world program and asserts the
/// pool's scheduler-health invariants (participation, real steals, one
/// spawn per worker per matcher lifetime). Exits non-zero on violation
/// so the CI bench job gates on them.
fn run_parallel_engine(threads: usize, iterations: usize) -> EngineBaseline {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let src = std::fs::read_to_string(format!("{root}/assets/blocks.ops")).expect("blocks.ops");
    let wm_src = std::fs::read_to_string(format!("{root}/assets/blocks.wm")).expect("blocks.wm");

    let mut per_worker = vec![WorkerStats::default(); threads];
    let mut spawned_per_matcher = 0;
    let mut respawns = 0;
    let mut live = 0;
    let started = Instant::now();
    for _ in 0..iterations {
        let mut program = parse_program(&src).expect("blocks parses");
        let initial = parse_wmes(&wm_src, &mut program.symbols).expect("wmes parse");
        let matcher = ParallelReteMatcher::compile(
            &program,
            ParallelOptions {
                threads,
                share: true,
            },
        )
        .expect("compiles");
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(initial);
        interp.run(10_000).expect("runs to quiescence");
        let m = interp.matcher();
        for (t, w) in per_worker.iter_mut().zip(m.worker_stats()) {
            t.merge(w);
        }
        let pool = m.pool_stats();
        assert_eq!(
            pool.spawned, threads as u64,
            "one spawn per worker per matcher lifetime, not per phase"
        );
        spawned_per_matcher = pool.spawned;
        respawns += pool.respawns;
        live = pool.live;
    }
    let b = EngineBaseline {
        threads,
        iterations,
        per_worker,
        spawned_per_matcher,
        respawns,
        live,
        elapsed_s: started.elapsed().as_secs_f64(),
    };
    // Participation: the worker-0 drain race is fixed — every worker
    // executed work or (at minimum) probed every peer for it.
    for (me, w) in b.per_worker.iter().enumerate() {
        assert!(
            w.tasks > 0 || w.steal_attempts > 0,
            "worker {me} sat out the whole run: {w:?}"
        );
    }
    assert_eq!(
        b.workers_with_tasks(),
        threads,
        "every worker executed tasks (pre-pool seed: worker 0 alone)"
    );
    assert!(
        b.workers_with_steals() >= 2,
        "steals must come from >= 2 distinct workers (pre-pool seed: 0 steals), got {}",
        b.workers_with_steals()
    );
    assert!(
        b.idle_share() <= IDLE_SHARE_CEILING,
        "idle share {} above recalibrated ceiling {IDLE_SHARE_CEILING}",
        b.idle_share()
    );
    assert_eq!(b.live, threads, "no leaked or missing worker threads");
    assert_eq!(b.respawns, 0, "no worker died in a fault-free run");
    b
}

/// Ceiling for the per-node join profiler's marginal overhead on a
/// telemetry-on run (percent). The profiler is meant to stay on in
/// production, so its cost over the rest of the plane must stay small.
const PROFILER_OVERHEAD_CEILING_PCT: f64 = 3.0;

/// Ceiling for the history-ring sampler's marginal overhead on a fully
/// instrumented run (percent). Sampling happens on a background thread
/// off the hot path; at a 5 ms cadence its cost must stay in the noise.
const SAMPLER_OVERHEAD_CEILING_PCT: f64 = 1.0;

/// Measured overheads on one preset:
///
/// * telemetry plane on vs off — bare matcher vs live listener +
///   flight ring + per-batch histogram records,
/// * per-node join profiler on vs the same telemetry-on run with
///   profiling disabled (capacity 0) — the marginal cost of keeping
///   the profiler always on,
/// * history-ring sampler on vs the same profiled run without a ring —
///   the marginal cost of 5 ms-cadence time-series sampling.
///
/// Returns `(off_s, on_s, delta_pct, prof_s, prof_delta_pct,
/// sampled_s, sampler_delta_pct)`.
#[allow(clippy::type_complexity)]
fn overhead_delta(cycles: u64) -> (f64, f64, f64, f64, f64, f64, f64) {
    #[derive(Clone, Copy, PartialEq)]
    enum Config {
        Bare,
        Telemetry,
        Profiled,
        Sampled,
    }
    let spec = Preset::Vt.spec_small();
    let workload = GeneratedWorkload::generate(spec).expect("workload generates");

    let run_once = |config: Config| -> f64 {
        let mut matcher = ReteMatcher::compile(&workload.program).expect("compiles");
        let (_plane, sampler) = if config == Config::Bare {
            (None, None)
        } else {
            let (profile, history) = match config {
                Config::Bare | Config::Telemetry => (0, 0),
                Config::Profiled => (4096, 0),
                Config::Sampled => (4096, 64),
            };
            let obs = Arc::new(Obs::with_history(1024, 4096, profile, history));
            matcher.attach_obs(Arc::clone(&obs));
            let plane = TelemetryServer::start(Arc::clone(&obs), &TelemetryConfig::default())
                .expect("listener binds");
            let sampler =
                (config == Config::Sampled).then(|| Sampler::start(obs, Duration::from_millis(5)));
            (Some(plane), sampler)
        };
        let mut driver = WorkloadDriver::new(workload.clone(), 0xFEED);
        driver.init(&mut matcher);
        let started = Instant::now();
        driver.run_cycles(&mut matcher, cycles);
        let elapsed = started.elapsed().as_secs_f64();
        if let Some(s) = sampler {
            s.stop();
        }
        elapsed
    };

    // Warm up, then measure the three configurations back-to-back per
    // repetition: adjacent runs see the same machine conditions, so
    // slow drift (thermal, noisy neighbours) cancels inside each pair
    // instead of landing on whichever configuration ran during the bad
    // stretch. Deltas are summarized by the *lower quartile* of the
    // per-rep deltas: scheduler noise is additive per run, so the low
    // quantile is the cleanest pairing, while a real overhead
    // regression shifts the whole distribution and still trips the
    // gate. (The median flakes on shared runners — noise spikes in a
    // few reps drag it past a per-cent-scale ceiling.)
    run_once(Config::Bare);
    run_once(Config::Profiled);
    let pct = |base: f64, with: f64| {
        if base > 0.0 {
            100.0 * (with - base) / base
        } else {
            0.0
        }
    };
    let quartile = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 4]
    };
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let (mut offs, mut ons, mut profs, mut sampleds) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let (mut tel_deltas, mut prof_deltas, mut sampler_deltas) =
        (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..9 {
        let off = run_once(Config::Bare);
        let on = run_once(Config::Telemetry);
        let prof = run_once(Config::Profiled);
        let sampled = run_once(Config::Sampled);
        tel_deltas.push(pct(off, on));
        prof_deltas.push(pct(on, prof));
        sampler_deltas.push(pct(prof, sampled));
        offs.push(off);
        ons.push(on);
        profs.push(prof);
        sampleds.push(sampled);
    }
    (
        median(offs),
        median(ons),
        quartile(tel_deltas),
        median(profs),
        quartile(prof_deltas),
        median(sampleds),
        quartile(sampler_deltas),
    )
}

fn phase_json(out: &mut String, phases: &[(&'static str, HistogramSnapshot)]) {
    out.push('{');
    for (i, (name, h)) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"mean_ns\":{}}}",
            h.count,
            h.quantile_bound(0.5),
            h.quantile_bound(0.99),
            h.sum.checked_div(h.count).unwrap_or(0),
        ));
    }
    out.push('}');
}

fn main() {
    let opts = CliOptions::parse(200);
    let out = out_dir();
    let variant = opts.variant();

    let mut rows = Vec::new();
    let mut baselines = Vec::new();
    for preset in Preset::all() {
        // Headline run: hashed join memories (the production default),
        // then the linear-scan ablation on the same workload/stream.
        let mut b = run_preset(preset, variant, opts.cycles, false);
        let lin = run_preset(preset, variant, opts.cycles, true);
        b.linear_wme_changes_per_sec = lin.wme_changes_per_sec;
        rows.push(vec![
            b.name.to_string(),
            b.cycles.to_string(),
            f(b.wme_changes_per_sec, 0),
            f(b.linear_wme_changes_per_sec, 0),
            f(
                b.wme_changes_per_sec / b.linear_wme_changes_per_sec.max(1e-12),
                2,
            ),
            f(b.firings_per_sec, 0),
            b.phases[0].1.quantile_bound(0.5).to_string(),
            b.phases[0].1.quantile_bound(0.99).to_string(),
        ]);
        baselines.push(b);
    }
    print_table(
        &format!(
            "bench_baseline: sequential Rete (hashed default vs linear ablation), {} presets, {} cycles",
            if matches!(variant, Variant::Small) {
                "small"
            } else {
                "full"
            },
            opts.cycles
        ),
        &[
            "system",
            "cycles",
            "hashed/s",
            "linear/s",
            "speedup",
            "firings/s",
            "match p50 ns",
            "match p99 ns",
        ],
        &rows,
    );

    let engine = run_parallel_engine(4, 30);
    let totals = engine.totals();
    println!(
        "\nparallel engine (blocks-world, {} threads, {} iterations): \
         tasks {}, steals {} from {} workers, steal attempts {}, idle share {}, \
         spawns/matcher {} (respawns {})",
        engine.threads,
        engine.iterations,
        totals.tasks,
        totals.steals,
        engine.workers_with_steals(),
        totals.steal_attempts,
        f(engine.idle_share(), 4),
        engine.spawned_per_matcher,
        engine.respawns,
    );

    // Overhead runs need windows long enough (~100 ms) that scheduler
    // jitter stays small against the per-cent deltas being gated.
    let (off_s, on_s, delta_pct, prof_s, prof_delta_pct, sampled_s, sampler_delta_pct) =
        overhead_delta(opts.cycles.clamp(2400, 4800));
    println!(
        "\ntelemetry overhead (vt small): off {} s, on {} s, delta {}%",
        f(off_s, 4),
        f(on_s, 4),
        f(delta_pct, 2)
    );
    println!(
        "profiler overhead (vt small, telemetry on): base {} s, profiled {} s, delta {}% (ceiling {}%)",
        f(on_s, 4),
        f(prof_s, 4),
        f(prof_delta_pct, 2),
        PROFILER_OVERHEAD_CEILING_PCT
    );
    println!(
        "sampler overhead (vt small, 5 ms cadence): base {} s, sampled {} s, delta {}% (ceiling {}%)",
        f(prof_s, 4),
        f(sampled_s, 4),
        f(sampler_delta_pct, 2),
        SAMPLER_OVERHEAD_CEILING_PCT
    );
    if prof_delta_pct > PROFILER_OVERHEAD_CEILING_PCT {
        eprintln!(
            "bench_baseline: profiler overhead {}% above ceiling {}%",
            f(prof_delta_pct, 2),
            PROFILER_OVERHEAD_CEILING_PCT
        );
        std::process::exit(1);
    }
    if sampler_delta_pct > SAMPLER_OVERHEAD_CEILING_PCT {
        eprintln!(
            "bench_baseline: history-ring sampler overhead {}% above ceiling {}%",
            f(sampler_delta_pct, 2),
            SAMPLER_OVERHEAD_CEILING_PCT
        );
        std::process::exit(1);
    }

    let mut json = String::from("{\"bench\":\"bench_baseline\",\"variant\":\"");
    json.push_str(if matches!(variant, Variant::Small) {
        "small"
    } else {
        "full"
    });
    json.push_str(&format!("\",\"cycles\":{},\"presets\":{{", opts.cycles));
    for (i, b) in baselines.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\"{}\":{{\"cycles\":{},\"wme_changes\":{},\"elapsed_s\":{},\"wme_changes_per_sec\":{},\"linear_wme_changes_per_sec\":{},\"firings_per_sec\":{},\"phases\":",
            b.name,
            b.cycles,
            b.wme_changes,
            psm_obs::json::number(b.elapsed_s),
            psm_obs::json::number(b.wme_changes_per_sec),
            psm_obs::json::number(b.linear_wme_changes_per_sec),
            psm_obs::json::number(b.firings_per_sec),
        ));
        phase_json(&mut json, &b.phases);
        json.push('}');
    }
    json.push_str(&format!(
        "}},\"engine\":{{\"program\":\"blocks-world\",\"threads\":{},\"iterations\":{},\
         \"tasks\":{},\"steals\":{},\"steal_attempts\":{},\"idle_spins\":{},\
         \"idle_share\":{},\"idle_share_ceiling\":{},\"workers_with_tasks\":{},\
         \"workers_with_steals\":{},\"spawned_per_matcher\":{},\"respawns\":{},\
         \"live\":{},\"elapsed_s\":{},\"per_worker\":[",
        engine.threads,
        engine.iterations,
        totals.tasks,
        totals.steals,
        totals.steal_attempts,
        totals.idle_spins,
        psm_obs::json::number(engine.idle_share()),
        psm_obs::json::number(IDLE_SHARE_CEILING),
        engine.workers_with_tasks(),
        engine.workers_with_steals(),
        engine.spawned_per_matcher,
        engine.respawns,
        engine.live,
        psm_obs::json::number(engine.elapsed_s),
    ));
    for (i, w) in engine.per_worker.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"worker\":{i},\"tasks\":{},\"steals\":{},\"steal_attempts\":{},\"idle_spins\":{}}}",
            w.tasks, w.steals, w.steal_attempts, w.idle_spins
        ));
    }
    json.push_str(&format!(
        "]}},\"telemetry_overhead\":{{\"off_s\":{},\"on_s\":{},\"delta_pct\":{}}},\
         \"profiler_overhead\":{{\"base_s\":{},\"profiled_s\":{},\"delta_pct\":{},\
         \"ceiling_pct\":{}}},\"sampler_overhead\":{{\"base_s\":{},\"sampled_s\":{},\
         \"delta_pct\":{},\"ceiling_pct\":{}}}}}",
        psm_obs::json::number(off_s),
        psm_obs::json::number(on_s),
        psm_obs::json::number(delta_pct),
        psm_obs::json::number(on_s),
        psm_obs::json::number(prof_s),
        psm_obs::json::number(prof_delta_pct),
        psm_obs::json::number(PROFILER_OVERHEAD_CEILING_PCT),
        psm_obs::json::number(prof_s),
        psm_obs::json::number(sampled_s),
        psm_obs::json::number(sampler_delta_pct),
        psm_obs::json::number(SAMPLER_OVERHEAD_CEILING_PCT)
    ));

    let path = format!("{out}/bench_baseline.json");
    if std::fs::create_dir_all(&out).is_ok() && std::fs::write(&path, &json).is_ok() {
        println!("wrote {path}");
    } else {
        eprintln!("could not write {path}");
        std::process::exit(1);
    }

    // Trajectory: interleaved per-rep samples for the regression gate,
    // appended as one fingerprinted JSONL record, plus the BENCH_10
    // artifact summarizing the whole history.
    let rep_cycles = opts.cycles.clamp(600, 2400);
    let tracks = measure_reps(&Preset::all(), variant, rep_cycles, PERF_GATE_REPS);
    let presets_json: Vec<PresetTrack> = tracks
        .into_iter()
        .map(|(name, reps_s)| {
            let b = baselines.iter().find(|b| b.name == name);
            PresetTrack {
                name,
                wme_changes_per_sec: b.map(|b| b.wme_changes_per_sec).unwrap_or(0.0),
                linear_wme_changes_per_sec: b.map(|b| b.linear_wme_changes_per_sec).unwrap_or(0.0),
                match_p50_ns: b.map(|b| b.phases[0].1.quantile_bound(0.5)).unwrap_or(0),
                match_p99_ns: b.map(|b| b.phases[0].1.quantile_bound(0.99)).unwrap_or(0),
                reps_s,
            }
        })
        .collect();
    let record = TrajectoryRecord {
        ts: unix_now(),
        commit: git_commit(),
        variant: if matches!(variant, Variant::Small) {
            "small".to_string()
        } else {
            "full".to_string()
        },
        rep_cycles,
        fingerprint: fingerprint(),
        presets: presets_json,
        idle_share: engine.idle_share(),
        telemetry_overhead_pct: delta_pct,
        profiler_overhead_pct: prof_delta_pct,
        sampler_overhead_pct: sampler_delta_pct,
    };
    let history_path = format!("{out}/bench_history.jsonl");
    match append_history(&history_path, &record) {
        Ok(()) => println!("appended {history_path} (commit {})", record.commit),
        Err(e) => {
            eprintln!("could not append {history_path}: {e}");
            std::process::exit(1);
        }
    }
    let artifact_path = format!("{out}/BENCH_10.json");
    let history = read_history(&history_path);
    match write_trajectory_artifact(&artifact_path, &history) {
        Ok(()) => println!("wrote {artifact_path} ({} records)", history.len()),
        Err(e) => {
            eprintln!("could not write {artifact_path}: {e}");
            std::process::exit(1);
        }
    }
}
