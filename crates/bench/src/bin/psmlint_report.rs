//! Static-analysis report: lints + cost-model cross-check per preset.
//!
//! For every workload preset this binary lints the generated program,
//! runs the static cost model, cross-checks the model's per-production
//! activation-share predictions against a measured trace, and checks
//! the §3.2 state-spectrum ordering. The real blocks-world program gets
//! the same treatment. Results are printed as tables and written to
//! `results/lint_report.json`.
//!
//! ```sh
//! cargo run --release -p psm-bench --bin psmlint_report
//! ```

use psm_analyze::{crosscheck_blocks, crosscheck_workload, lint_program, Severity};
use psm_bench::{f, print_table, CliOptions};
use psm_obs::json::{number, push_escaped};
use workloads::{GeneratedWorkload, Preset};

fn out_dir() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string())
}

struct Row {
    name: String,
    errors: usize,
    warnings: usize,
    infos: usize,
    treat: f64,
    rete: f64,
    oflazer: f64,
    effective_parallelism: f64,
    max_error_factor: f64,
    ordered: bool,
}

fn main() {
    let opts = CliOptions::parse(40);
    let out = out_dir();
    let mut rows: Vec<Row> = Vec::new();

    for preset in Preset::all() {
        let spec = if opts.small {
            preset.spec_small()
        } else {
            preset.spec()
        };
        let w = GeneratedWorkload::generate(spec.clone()).expect("preset generates");
        let diagnostics = lint_program(&w.program);
        let count = |s: Severity| diagnostics.iter().filter(|d| d.severity == s).count();
        let check = crosscheck_workload(spec, opts.cycles, 7).expect("crosscheck runs");
        rows.push(Row {
            name: preset.name().to_string(),
            errors: count(Severity::Error),
            warnings: count(Severity::Warning),
            infos: count(Severity::Info),
            treat: check.predicted_states.treat,
            rete: check.predicted_states.rete,
            oflazer: check.predicted_states.oflazer,
            effective_parallelism: check.cost.skew.effective_parallelism,
            max_error_factor: check.max_error_factor(),
            ordered: check.predicted_states.ordered(),
        });
    }

    // Real program: blocks world.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    if let (Ok(src), Ok(wm)) = (
        std::fs::read_to_string(format!("{root}/assets/blocks.ops")),
        std::fs::read_to_string(format!("{root}/assets/blocks.wm")),
    ) {
        let program = ops5::parse_program(&src).expect("blocks parses");
        let diagnostics = lint_program(&program);
        let count = |s: Severity| diagnostics.iter().filter(|d| d.severity == s).count();
        let check = crosscheck_blocks(&src, &wm).expect("blocks cross-checks");
        rows.push(Row {
            name: "blocks-world".to_string(),
            errors: count(Severity::Error),
            warnings: count(Severity::Warning),
            infos: count(Severity::Info),
            treat: check.predicted_states.treat,
            rete: check.predicted_states.rete,
            oflazer: check.predicted_states.oflazer,
            effective_parallelism: check.cost.skew.effective_parallelism,
            max_error_factor: check.max_error_factor(),
            ordered: check.predicted_states.ordered(),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}/{}/{}", r.errors, r.warnings, r.infos),
                f(r.treat, 0),
                f(r.rete, 0),
                f(r.oflazer, 0),
                if r.ordered { "yes" } else { "NO" }.to_string(),
                f(r.effective_parallelism, 1),
                f(r.max_error_factor, 2),
            ]
        })
        .collect();
    print_table(
        "static analysis: lints + cost-model cross-check",
        &[
            "system",
            "err/warn/info",
            "treat",
            "rete",
            "oflazer",
            "ordered",
            "eff. parallel",
            "share err x",
        ],
        &table,
    );

    // JSON artifact for CI and EXPERIMENTS.md.
    let mut json = String::from("{\"systems\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str("{\"name\":");
        push_escaped(&mut json, &r.name);
        json.push_str(&format!(
            ",\"errors\":{},\"warnings\":{},\"infos\":{}",
            r.errors, r.warnings, r.infos
        ));
        json.push_str(",\"state\":{\"treat\":");
        json.push_str(&number(r.treat));
        json.push_str(",\"rete\":");
        json.push_str(&number(r.rete));
        json.push_str(",\"oflazer\":");
        json.push_str(&number(r.oflazer));
        json.push_str(",\"ordered\":");
        json.push_str(if r.ordered { "true" } else { "false" });
        json.push_str("},\"effective_parallelism\":");
        json.push_str(&number(r.effective_parallelism));
        json.push_str(",\"max_share_error_factor\":");
        json.push_str(&number(r.max_error_factor));
        json.push('}');
    }
    json.push_str("]}");
    let path = format!("{out}/lint_report.json");
    if std::fs::create_dir_all(&out).is_ok() && std::fs::write(&path, &json).is_ok() {
        println!("\nwrote {path}");
    }

    let errors: usize = rows.iter().map(|r| r.errors).sum();
    let disordered = rows.iter().filter(|r| !r.ordered).count();
    if errors > 0 || disordered > 0 {
        eprintln!("FAIL: {errors} error diagnostics, {disordered} ordering violations");
        std::process::exit(1);
    }
}
