//! Observability report: the §6 loss-factor decomposition driven by the
//! instrumentation stack, plus exported artifacts.
//!
//! For every preset this binary captures a trace, replays it on the
//! paper's 32-processor machine, and decomposes the lost factor
//! (nominal concurrency / true speed-up; the paper measures
//! 15.92 / 8.25 = 1.93) into its §6.3 sources:
//!
//! * **work inflation** — instructions added by the parallel
//!   implementation (reduced node sharing),
//! * **bus contention** — the memory-contention slowdown factor,
//! * **scheduling** — hardware task-scheduler overhead per activation,
//! * **variance (idle)** — processors idling at cycle barriers and on
//!   dependency chains (this one costs concurrency, not lost factor).
//!
//! Artifacts written to `--out DIR` (default `results/`):
//!
//! * `<preset>.trace.json` — Chrome `trace_event` schedule of the
//!   simulated 32-processor run (loads in Perfetto / `chrome://tracing`),
//! * `blocks.events.jsonl` — structured event log from a real
//!   interpreter run of `assets/blocks.ops` with full observability on.
//!
//! ```sh
//! cargo run --release -p psm-bench --bin obs_report -- --small
//! ```

use std::sync::Arc;
use std::time::Instant;

use ops5::{parse_program, parse_wmes, Interpreter};
use psm_bench::{capture, f, print_table, CliOptions};
use psm_core::{ParallelOptions, ParallelReteMatcher};
use psm_obs::{Obs, Phase};
use psm_sim::{simulate_psm_timeline, CostModel, PsmSpec};
use rete::ReteMatcher;
use workloads::{Preset, WorkloadDriver};

/// The eight node-activation kinds, in pipeline order.
const KINDS: [rete::ActivationKind; 8] = [
    rete::ActivationKind::ConstantTest,
    rete::ActivationKind::AlphaMem,
    rete::ActivationKind::JoinRight,
    rete::ActivationKind::JoinLeft,
    rete::ActivationKind::NegativeRight,
    rete::ActivationKind::NegativeLeft,
    rete::ActivationKind::BetaMem,
    rete::ActivationKind::Terminal,
];

/// Aggregates a trace into per-kind activation and work (primitive
/// test) shares — the measured per-phase cost profile of the match.
fn kind_breakdown(name: &str, trace: &rete::Trace) -> (Vec<String>, Vec<String>) {
    let mut count = [0u64; 8];
    let mut tests = [0u64; 8];
    for cycle in &trace.cycles {
        for change in &cycle.changes {
            for a in &change.activations {
                let i = KINDS.iter().position(|k| *k == a.kind).unwrap();
                count[i] += 1;
                tests[i] += a.tests as u64;
            }
        }
    }
    let total_count: u64 = count.iter().sum();
    let total_tests: u64 = tests.iter().sum();
    let pct = |v: u64, total: u64| {
        if total > 0 {
            f(100.0 * v as f64 / total as f64, 1)
        } else {
            "-".to_string()
        }
    };
    let mut kinds = vec![name.to_string()];
    kinds.extend(count.iter().map(|&c| pct(c, total_count)));
    let mut works = vec![name.to_string()];
    works.extend(tests.iter().map(|&t| pct(t, total_tests)));
    (kinds, works)
}

fn out_dir() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string())
}

fn main() {
    let opts = CliOptions::parse(120);
    let out = out_dir();
    let cost = CostModel::default();
    let spec = PsmSpec::paper_32();

    // ---- §6 loss-factor decomposition across the presets ----------
    let headers = [
        "system",
        "concurrency",
        "true speedup",
        "lost factor",
        "inflation x",
        "contention x",
        "sched +",
        "idle %",
    ];
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 7];
    let mut exported = Vec::new();
    let mut kind_rows = Vec::new();
    let mut work_rows = Vec::new();
    for preset in Preset::all() {
        let c = capture(preset, opts.variant(), opts.cycles, true);
        let (kinds, works) = kind_breakdown(preset.name(), &c.trace);
        kind_rows.push(kinds);
        work_rows.push(works);
        let (r, timeline) = simulate_psm_timeline(&c.trace, &cost, &spec);

        // lost = busy/serial = inflation * contention + sched/serial:
        // every busy microsecond is either inflated-and-stalled real
        // work or scheduling overhead.
        let serial_s = r.true_speedup * r.makespan_s;
        let contention = 1.0 / (1.0 - r.bus_utilization);
        let sched_share = if serial_s > 0.0 {
            r.sched_overhead_s / serial_s
        } else {
            0.0
        };
        let idle_pct = 100.0 * (1.0 - r.concurrency / r.processors as f64);
        let recomposed = spec.work_inflation * contention + sched_share;
        assert!(
            (recomposed - r.lost_factor()).abs() < 1e-6,
            "decomposition must recompose: {} vs {}",
            recomposed,
            r.lost_factor()
        );

        rows.push(vec![
            preset.name().to_string(),
            f(r.concurrency, 2),
            f(r.true_speedup, 2),
            f(r.lost_factor(), 2),
            f(spec.work_inflation, 2),
            f(contention, 2),
            f(sched_share, 2),
            f(idle_pct, 1),
        ]);
        for (i, v) in [
            r.concurrency,
            r.true_speedup,
            r.lost_factor(),
            spec.work_inflation,
            contention,
            sched_share,
            idle_pct,
        ]
        .into_iter()
        .enumerate()
        {
            sums[i] += v;
        }

        // Export the simulated schedule as a Chrome trace.
        let trace_json = timeline
            .to_chrome(1, &format!("psm-32 {}", preset.name()))
            .to_json();
        let path = format!("{out}/{}.trace.json", preset.name());
        if std::fs::create_dir_all(&out).is_ok() && std::fs::write(&path, trace_json).is_ok() {
            exported.push(path);
        }
    }
    let n = Preset::all().len() as f64;
    let mut mean = vec!["MEAN".to_string()];
    mean.extend(sums.iter().map(|s| f(s / n, 2)));
    rows.push(mean);
    rows.push(vec![
        "paper".into(),
        "15.92".into(),
        "8.25".into(),
        "1.93".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    print_table(
        "S6 loss-factor decomposition @ P=32, 2 MIPS, hardware scheduler",
        &headers,
        &rows,
    );
    opts.maybe_write_csv("obs_report", &headers, &rows);
    println!(
        "\nlost factor = inflation x contention + sched (checked per row); \
         idle % is the variance loss (costs concurrency, not lost factor)."
    );
    for p in &exported {
        println!("wrote {p}");
    }

    // ---- per-phase (node-kind) cost profile across presets --------
    let kind_headers: Vec<&str> = std::iter::once("system")
        .chain(KINDS.iter().map(|k| k.label()))
        .collect();
    print_table(
        "match-phase profile: % of node activations by kind",
        &kind_headers,
        &kind_rows,
    );
    print_table(
        "match-phase profile: % of primitive tests (work) by kind",
        &kind_headers,
        &work_rows,
    );
    println!(
        "\ntwo-input right activations carry most of the work — the paper's \
         \u{a7}4 case for node-level parallelism over production-level."
    );

    // ---- real blocks-world run with full observability ------------
    blocks_world_section(&out);

    // ---- parallel engine worker counters --------------------------
    engine_section();

    // ---- counters-only overhead check -----------------------------
    overhead_section(opts.cycles.max(60));
}

/// Runs `assets/blocks.ops` to quiescence with phase spans, per-node
/// profiling, and the event ring all enabled, then reports what each
/// layer saw.
fn blocks_world_section(out: &str) {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let (Ok(src), Ok(wm_src)) = (
        std::fs::read_to_string(format!("{root}/assets/blocks.ops")),
        std::fs::read_to_string(format!("{root}/assets/blocks.wm")),
    ) else {
        println!("\n(blocks assets not found; skipping interpreter section)");
        return;
    };
    let mut program = parse_program(&src).expect("blocks.ops parses");
    let initial = parse_wmes(&wm_src, &mut program.symbols).expect("blocks.wm parses");
    let mut matcher = ReteMatcher::compile(&program).expect("blocks compiles");
    matcher.enable_profiling();
    let mut interp = Interpreter::new(program, matcher);
    interp.enable_phase_profiling();
    interp.enable_firing_log();
    interp.insert_all(initial);
    let fired = interp.run(10_000).expect("blocks runs");

    let phases = interp.phase_profile().expect("profiling enabled");
    let mut rows = Vec::new();
    for phase in Phase::ALL {
        let s = phases.snapshot(phase);
        rows.push(vec![
            phase.name().to_string(),
            s.count.to_string(),
            f(s.sum as f64 / 1e3, 1),
            f(s.mean(), 0),
            f(s.quantile_bound(0.99) as f64, 0),
        ]);
    }
    print_table(
        "blocks-world phase profile (real run)",
        &["phase", "spans", "total us", "mean ns", "p99 <= ns"],
        &rows,
    );

    let profile = interp.matcher().profile().expect("profiling enabled");
    let mut rows = Vec::new();
    for h in profile.hot_nodes(5) {
        rows.push(vec![
            h.node.to_string(),
            h.count.to_string(),
            f(h.total_ns as f64 / 1e3, 1),
        ]);
    }
    print_table(
        "blocks-world top-5 hot nodes",
        &["node", "activations", "total us"],
        &rows,
    );

    // Structured events: one per firing, exported as JSONL.
    let obs = Obs::new(4096);
    obs.set_detail(true);
    for (i, inst) in interp.firing_log().iter().enumerate() {
        let name = &interp.program().production(inst.production).name;
        obs.events.emit(
            "firing",
            &[
                ("cycle", (i as u64).into()),
                ("production", name.as_str().into()),
                ("wmes", (inst.wmes.len() as u64).into()),
            ],
        );
    }
    let path = format!("{out}/blocks.events.jsonl");
    if std::fs::create_dir_all(out).is_ok() && std::fs::write(&path, obs.events.to_jsonl()).is_ok()
    {
        println!("\n{fired} firings; wrote {path}");
    }
}

/// Runs the node-parallel engine over a small preset with the obs layer
/// attached and prints the per-worker work-stealing counters.
fn engine_section() {
    let spec = Preset::EpSoar.spec_small();
    let workload = workloads::GeneratedWorkload::generate(spec).expect("workload generates");
    let mut matcher = ParallelReteMatcher::compile(
        &workload.program,
        ParallelOptions {
            threads: 4,
            ..ParallelOptions::default()
        },
    )
    .expect("engine compiles");
    let obs = Arc::new(Obs::new(1024));
    matcher.attach_obs(Arc::clone(&obs));
    matcher.enable_timing();
    let mut driver = WorkloadDriver::new(workload, 0xD1CE);
    driver.init(&mut matcher);
    driver.run_cycles(&mut matcher, 40);

    let mut rows = Vec::new();
    for (i, w) in matcher.worker_stats().iter().enumerate() {
        rows.push(vec![
            i.to_string(),
            w.tasks.to_string(),
            w.steals.to_string(),
            w.steal_attempts.to_string(),
            w.idle_spins.to_string(),
            w.max_queue_depth.to_string(),
            f(w.lock_wait_ns as f64 / 1e3, 1),
            f(w.exec_ns as f64 / 1e3, 1),
        ]);
    }
    let total = matcher.worker_totals_merged();
    rows.push(vec![
        "ALL".into(),
        total.tasks.to_string(),
        total.steals.to_string(),
        total.steal_attempts.to_string(),
        total.idle_spins.to_string(),
        total.max_queue_depth.to_string(),
        f(total.lock_wait_ns as f64 / 1e3, 1),
        f(total.exec_ns as f64 / 1e3, 1),
    ]);
    print_table(
        "parallel engine per-worker counters (ep-soar small, 4 threads, 40 cycles)",
        &[
            "worker",
            "tasks",
            "steals",
            "attempts",
            "idle spins",
            "max depth",
            "lock wait us",
            "exec us",
        ],
        &rows,
    );
    let pool = matcher.pool_stats();
    println!(
        "\npool: {} threads spawned once for the matcher's lifetime \
         ({} respawns, {} live)",
        pool.spawned, pool.respawns, pool.live
    );
    println!("\nmetrics registry snapshot:");
    for line in obs.metrics.snapshot().to_text().lines() {
        println!("  {line}");
    }
}

/// Measures the counters-only observability overhead: the same
/// workload run with and without the obs registry attached (timing and
/// detail layers off). The acceptance bar is <= 5%.
fn overhead_section(cycles: u64) {
    let spec = Preset::EpSoar.spec_small();
    let workload = workloads::GeneratedWorkload::generate(spec).expect("workload generates");
    let options = ParallelOptions {
        threads: 2,
        ..ParallelOptions::default()
    };

    let run_once = |attach: bool| -> f64 {
        let mut matcher =
            ParallelReteMatcher::compile(&workload.program, options).expect("compiles");
        if attach {
            matcher.attach_obs(Arc::new(Obs::new(256)));
        }
        let mut driver = WorkloadDriver::new(workload.clone(), 0xBEEF);
        driver.init(&mut matcher);
        let start = Instant::now();
        driver.run_cycles(&mut matcher, cycles);
        start.elapsed().as_secs_f64()
    };

    // Warm up caches and the thread machinery, then interleave the two
    // configurations so drift hits both equally; compare best-of-5.
    run_once(false);
    run_once(true);
    let mut before = f64::INFINITY;
    let mut after = f64::INFINITY;
    for _ in 0..5 {
        before = before.min(run_once(false));
        after = after.min(run_once(true));
    }
    let overhead = if before > 0.0 {
        100.0 * (after - before) / before
    } else {
        0.0
    };
    println!(
        "\ncounters-only overhead (ep-soar small, {cycles} cycles, best of 5): \
         {:.1} ms bare vs {:.1} ms with obs attached = {overhead:+.1}% (bar: <= 5%)",
        before * 1e3,
        after * 1e3
    );
}
