//! End-to-end smoke test for the live telemetry plane, wired for CI.
//!
//! Runs the real blocks-world program with the flight recorder on, runs
//! a parallel-engine preset into the same registry, boots the HTTP
//! listener on an ephemeral port, and asserts over the wire that:
//!
//! * `/metrics` returns valid Prometheus exposition including per-worker
//!   engine counters and per-phase histogram buckets,
//! * `/healthz` reports engine health as JSON,
//! * `/explain?rule=put-on` reproduces the causal chain (exact WME time
//!   tags) for a real firing,
//! * `/snapshot` returns the full JSON snapshot (with profile table
//!   and history-ring summary),
//! * `/profile` returns the per-node join profile hottest-first and the
//!   `profile.node.*` families reach `/metrics`,
//! * `/timeseries` serves the sampled history ring: index, per-metric
//!   series whose delta decode reproduces the cumulative counter,
//!   labeled families, and window trimming,
//! * `/healthz` carries the replication block (absent standby here, so
//!   `present:false`).
//!
//! Exits non-zero on any failed check, so CI can gate on it. Pass
//! `--serve` to keep the server alive for manual `curl`.
//!
//! ```sh
//! cargo run --release -p psm-bench --bin telemetry_smoke
//! cargo run --release -p psm-bench --bin telemetry_smoke -- --serve
//! ```

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use ops5::{parse_program, parse_wmes, Interpreter};
use psm_bench::{capture, Variant};
use psm_core::{ParallelOptions, ParallelReteMatcher};
use psm_obs::{Obs, Sampler};
use psm_sim::{publish_sim_result, simulate_psm, CostModel, PsmSpec};
use psm_telemetry::client::{http_get, Json};
use psm_telemetry::{TelemetryConfig, TelemetryServer};
use rete::ReteMatcher;
use workloads::{Preset, WorkloadDriver};

fn fail(msg: &str) -> ! {
    eprintln!("telemetry_smoke FAIL: {msg}");
    std::process::exit(1);
}

/// Runs `assets/blocks.ops` to quiescence with provenance recording on.
fn run_blocks_world(obs: &Arc<Obs>) -> u64 {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let src = std::fs::read_to_string(format!("{root}/assets/blocks.ops"))
        .unwrap_or_else(|e| fail(&format!("read blocks.ops: {e}")));
    let wm_src = std::fs::read_to_string(format!("{root}/assets/blocks.wm"))
        .unwrap_or_else(|e| fail(&format!("read blocks.wm: {e}")));
    let mut program = parse_program(&src).expect("blocks.ops parses");
    let initial = parse_wmes(&wm_src, &mut program.symbols).expect("blocks.wm parses");
    let mut matcher = ReteMatcher::compile(&program).expect("blocks compiles");
    matcher.attach_obs(Arc::clone(obs));
    let mut interp = Interpreter::new(program, matcher);
    interp.attach_obs(Arc::clone(obs));
    interp.insert_all(initial);
    interp.run(10_000).expect("blocks runs")
}

/// Runs a small preset on the 4-thread parallel engine so the registry
/// carries `engine.worker.*{worker="N"}` series.
fn run_parallel_preset(obs: &Arc<Obs>) {
    let workload = workloads::GeneratedWorkload::generate(Preset::EpSoar.spec_small())
        .expect("workload generates");
    let mut matcher = ParallelReteMatcher::compile(
        &workload.program,
        ParallelOptions {
            threads: 4,
            ..ParallelOptions::default()
        },
    )
    .expect("engine compiles");
    matcher.attach_obs(Arc::clone(obs));
    matcher.enable_timing();
    let mut driver = WorkloadDriver::new(workload, 0xD1CE);
    driver.init(&mut matcher);
    driver.run_cycles(&mut matcher, 40);
}

/// Replays a short DES run and publishes its §6 figures into the same
/// registry, so `/metrics` carries `sim_*{system="vt"}` gauges.
fn run_sim(obs: &Arc<Obs>) {
    let captured = capture(Preset::Vt, Variant::Small, 20, true);
    let result = simulate_psm(&captured.trace, &CostModel::default(), &PsmSpec::paper_32());
    publish_sim_result(obs, "vt", &result);
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_get(addr, path, Duration::from_secs(5))
        .unwrap_or_else(|e| fail(&format!("GET {path}: {e}")))
}

fn check(cond: bool, what: &str) {
    if cond {
        println!("  ok: {what}");
    } else {
        fail(what);
    }
}

fn main() {
    let serve = std::env::args().any(|a| a == "--serve");

    let obs = Arc::new(Obs::with_history(4096, 65_536, 4096, 128));
    obs.set_detail(true);
    // Sample the registry into the history ring while the workloads
    // run, like a production deployment would.
    let sampler = Sampler::start(Arc::clone(&obs), Duration::from_millis(10));
    let fired = run_blocks_world(&obs);
    run_parallel_preset(&obs);
    run_sim(&obs);
    println!("blocks-world fired {fired} rules; parallel preset + DES ran; starting listener");

    let server = TelemetryServer::start(Arc::clone(&obs), &TelemetryConfig::default())
        .unwrap_or_else(|e| fail(&format!("bind listener: {e}")));
    let addr = server.local_addr();
    println!("listening on http://{addr}/");

    // /metrics: exposition format, per-worker counters, phase buckets.
    let (status, metrics) = get(addr, "/metrics");
    check(status == 200, "/metrics returns 200");
    check(!metrics.is_empty(), "/metrics body is non-empty");
    check(
        metrics.contains("# TYPE engine_worker_tasks counter"),
        "/metrics declares engine_worker_tasks as a counter",
    );
    check(
        metrics.contains("engine_worker_tasks{worker=\"0\"}")
            && metrics.contains("engine_worker_tasks{worker=\"3\"}"),
        "/metrics carries per-worker engine counters",
    );
    check(
        metrics.contains("phase_match_ns_bucket{le="),
        "/metrics carries per-phase histogram buckets",
    );
    check(
        metrics.contains("phase_match_ns_bucket{le=\"+Inf\"}")
            && metrics.contains("phase_match_ns_sum")
            && metrics.contains("phase_match_ns_count"),
        "/metrics histogram families are complete (+Inf, _sum, _count)",
    );
    check(
        metrics.contains("interp_firings"),
        "/metrics carries the firing counter",
    );
    check(
        metrics.contains("sim_concurrency_milli{system=\"vt\"}")
            && metrics.contains("sim_lost_factor_milli{system=\"vt\"}"),
        "/metrics carries the DES \u{a7}6 gauges",
    );

    // /healthz: valid JSON with an overall status.
    let (status, health) = get(addr, "/healthz");
    check(status == 200, "/healthz returns 200");
    let health = Json::parse(&health).unwrap_or_else(|| fail("/healthz is valid JSON"));
    check(
        health.get("status").and_then(Json::as_str) == Some("ok"),
        "/healthz reports status ok for an unsupervised run",
    );
    check(
        health.get("firings").and_then(Json::as_u64) == Some(fired),
        "/healthz firing count matches the interpreter",
    );

    // /explain: causal chain for a real blocks-world firing.
    let (status, explain) = get(addr, "/explain?rule=put-on&instance=0");
    check(status == 200, "/explain?rule=put-on returns 200");
    let explain = Json::parse(&explain).unwrap_or_else(|| fail("/explain is valid JSON"));
    check(
        explain.get("found").and_then(Json::as_bool) == Some(true),
        "/explain finds the put-on firing",
    );
    let tags = explain
        .get("time_tags")
        .unwrap_or_else(|| fail("/explain carries time_tags"));
    check(
        !tags.items().is_empty() && tags.items().iter().all(|t| t.as_u64().is_some()),
        "/explain lists the matched WME time tags",
    );
    check(
        !explain
            .get("records")
            .unwrap_or(&Json::Null)
            .items()
            .is_empty(),
        "/explain reproduces the causal record chain",
    );

    // /snapshot: full registry + events + flight status.
    let (status, snapshot) = get(addr, "/snapshot");
    check(status == 200, "/snapshot returns 200");
    let snapshot = Json::parse(&snapshot).unwrap_or_else(|| fail("/snapshot is valid JSON"));
    check(
        snapshot
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .is_some(),
        "/snapshot carries the metrics registry",
    );
    check(
        snapshot
            .get("flight")
            .and_then(|f| f.get("len"))
            .and_then(Json::as_u64)
            .is_some_and(|n| n > 0),
        "/snapshot shows a populated flight ring",
    );

    // /profile: per-node join profile, hottest first, from real runs.
    let (status, profile) = get(addr, "/profile");
    check(status == 200, "/profile returns 200");
    let profile = Json::parse(&profile).unwrap_or_else(|| fail("/profile is valid JSON"));
    check(
        profile
            .get("capacity")
            .and_then(Json::as_u64)
            .is_some_and(|c| c > 0),
        "/profile reports the configured capacity",
    );
    let rows = profile
        .get("rows")
        .map(Json::items)
        .unwrap_or_else(|| fail("/profile carries rows"));
    check(!rows.is_empty(), "/profile tracked nodes from the runs");
    check(
        rows.iter().all(|r| {
            r.get("node").and_then(Json::as_u64).is_some()
                && r.get("kind").and_then(Json::as_str).is_some()
        }),
        "/profile rows carry node ids and kinds",
    );
    let pairs: Vec<u64> = rows
        .iter()
        .filter_map(|r| r.get("pairs").and_then(Json::as_u64))
        .collect();
    check(
        pairs.windows(2).all(|w| w[0] >= w[1]),
        "/profile rows are sorted hottest-first by pairs compared",
    );
    check(
        metrics.contains("profile_node_pairs_compared{"),
        "/metrics carries the profile.node.* families when the profiler is on",
    );
    check(
        snapshot.get("profile").is_some(),
        "/snapshot embeds the profile table",
    );

    // Give the background sampler time for at least one more pass over
    // the final counter values, then stop it so the series are stable
    // for the decode check below.
    std::thread::sleep(Duration::from_millis(50));
    sampler.stop();

    // /timeseries: index of sampled series.
    let (status, ts) = get(addr, "/timeseries");
    check(status == 200, "/timeseries returns 200");
    let ts = Json::parse(&ts).unwrap_or_else(|| fail("/timeseries is valid JSON"));
    check(
        ts.get("enabled").and_then(Json::as_bool) == Some(true),
        "/timeseries reports the ring enabled",
    );
    check(
        ts.get("samples")
            .and_then(Json::as_u64)
            .is_some_and(|s| s > 0),
        "/timeseries shows the sampler ran",
    );
    check(
        !ts.get("series").map(Json::items).unwrap_or(&[]).is_empty(),
        "/timeseries index lists sampled series",
    );

    // Delta decode: base + Σ window deltas reproduces the cumulative
    // counter (interp.firings is stable once the runs finish).
    let (status, body) = get(addr, "/timeseries?metric=interp.firings");
    check(
        status == 200,
        "/timeseries?metric=interp.firings returns 200",
    );
    let j = Json::parse(&body).unwrap_or_else(|| fail("/timeseries metric query is valid JSON"));
    let series = j.get("series").map(Json::items).unwrap_or(&[]);
    check(series.len() == 1, "metric query returns exactly one series");
    let s = &series[0];
    let base = s.get("base").and_then(Json::as_u64).unwrap_or(0);
    let delta_sum: u64 = s
        .get("points")
        .map(Json::items)
        .unwrap_or(&[])
        .iter()
        .filter_map(|p| p.idx(1).and_then(Json::as_u64))
        .sum();
    let cumulative = snapshot
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("interp.firings"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| fail("snapshot carries interp.firings"));
    check(
        base + delta_sum == cumulative,
        "counter delta decode reproduces the cumulative value",
    );

    // Labeled family + window trimming.
    let (status, body) = get(addr, "/timeseries?metric=engine.worker.tasks&window=1");
    check(status == 200, "/timeseries family query returns 200");
    let j = Json::parse(&body).unwrap_or_else(|| fail("/timeseries family query is valid JSON"));
    let fam = j.get("series").map(Json::items).unwrap_or(&[]);
    check(
        fam.len() >= 4,
        "family query returns one series per worker label",
    );
    check(
        fam.iter()
            .all(|s| s.get("points").map(Json::items).unwrap_or(&[]).len() <= 1),
        "window=1 trims every series to one point",
    );
    check(
        snapshot
            .get("history")
            .and_then(|h| h.get("samples"))
            .and_then(Json::as_u64)
            .is_some_and(|s| s > 0),
        "/snapshot embeds the history-ring summary",
    );

    // Replication block: no standby in this run, visible as such.
    check(
        health
            .get("replication")
            .and_then(|r| r.get("present"))
            .and_then(Json::as_bool)
            == Some(false),
        "/healthz replication block reports no standby",
    );

    let (status, _) = get(addr, "/nope");
    check(status == 404, "unknown paths return 404");

    println!("telemetry_smoke PASS");
    if serve {
        println!("--serve: listener stays up; Ctrl-C to stop");
        loop {
            std::thread::sleep(Duration::from_secs(60));
        }
    }
    server.shutdown();
}
