//! Section 6's lost-factor decomposition: the gap between concurrency
//! (processors kept busy) and true speed-up is attributed to *"(1) extra
//! computation required, as a result of loss of sharing of nodes in the
//! Rete network, (2) the node scheduling overheads, and (3) the
//! synchronization overheads"*. This binary builds the same waterfall by
//! enabling one overhead at a time in the simulator.

use psm_bench::{capture, f, print_table, CliOptions};
use psm_sim::{simulate_psm, CostModel, PsmSpec, Scheduler};
use workloads::Preset;

fn main() {
    let opts = CliOptions::parse(200);
    let cost = CostModel::default();
    let c = capture(Preset::Mud, opts.variant(), opts.cycles, true);

    // Measure the sharing-loss factor from the real networks: extra
    // constant-test and two-input work when sharing is disabled.
    let shared = rete::Network::compile(&c.workload.program).unwrap();
    let unshared =
        rete::Network::compile_with(&c.workload.program, rete::CompileOptions { share: false })
            .unwrap();
    let sharing_inflation = unshared.stats.alpha_nodes as f64 / shared.stats.alpha_nodes as f64;
    // Only part of the work is alpha-side; temper the blowup.
    let work_inflation = 1.0 + (sharing_inflation - 1.0) * 0.3;

    let ideal = PsmSpec {
        processors: 32,
        mips: 2.0,
        scheduler: Scheduler::Hardware { bus_cycle_us: 0.0 },
        per_node_exclusive: false,
        parallel_changes: true,
        bus_miss_ratio: 0.0,
        bus_refs_per_sec: 20.0e6,
        work_inflation: 1.0,
    };

    let stages: Vec<(&str, PsmSpec)> = vec![
        ("ideal (no overheads)", ideal),
        (
            "+ sharing loss",
            PsmSpec {
                work_inflation,
                ..ideal
            },
        ),
        (
            "+ scheduling (hw, 1 bus cycle)",
            PsmSpec {
                work_inflation,
                scheduler: Scheduler::Hardware { bus_cycle_us: 0.1 },
                ..ideal
            },
        ),
        (
            "+ bus contention (5% miss)",
            PsmSpec {
                work_inflation,
                scheduler: Scheduler::Hardware { bus_cycle_us: 0.1 },
                bus_miss_ratio: 0.05,
                ..ideal
            },
        ),
        (
            "+ per-node synchronization",
            PsmSpec {
                work_inflation,
                scheduler: Scheduler::Hardware { bus_cycle_us: 0.1 },
                bus_miss_ratio: 0.05,
                per_node_exclusive: true,
                ..ideal
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut prev_speedup = None::<f64>;
    for (name, spec) in stages {
        let r = simulate_psm(&c.trace, &cost, &spec);
        let delta = prev_speedup.map_or(String::new(), |p| {
            format!("-{:.0}%", (1.0 - r.true_speedup / p) * 100.0)
        });
        prev_speedup = Some(r.true_speedup);
        rows.push(vec![
            name.to_string(),
            f(r.concurrency, 2),
            f(r.true_speedup, 2),
            f(r.lost_factor(), 2),
            delta,
        ]);
    }
    print_table(
        "Section 6 lost-factor waterfall (mud-like trace, P=32)",
        &[
            "configuration",
            "concurrency",
            "true speedup",
            "lost factor",
            "step cost",
        ],
        &rows,
    );
    println!(
        "\nmeasured sharing inflation: alpha nodes x{sharing_inflation:.2} unshared \
         (applied as x{work_inflation:.2} total work)"
    );
    println!(
        "paper: concurrency 15.92 vs true speed-up 8.25 => lost factor 1.93 from these sources."
    );
}
