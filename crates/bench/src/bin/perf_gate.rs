//! Statistical performance-regression gate against the recorded
//! trajectory (`results/bench_history.jsonl`).
//!
//! Re-measures every preset with the same interleaved-rep discipline
//! `bench_baseline` used to record the baseline, then asks
//! `psm_analyze::regress` whether the paired deltas show a *confirmed*
//! regression: median paired delta over the noise floor, a seeded
//! bootstrap CI clear of zero, and a sign criterion, all at once. The
//! design goal is asymmetric: a seeded ≥2× slowdown must always trip,
//! unchanged code must never flake.
//!
//! Cross-host safety: when the baseline's machine fingerprint (CPU
//! count + model string) differs from this host, verdicts are still
//! computed and reported but the gate **warns instead of failing** —
//! different hardware legitimately shifts absolute times.
//!
//! ```sh
//! cargo run --release -p psm-bench --bin perf_gate -- --small
//! # CI self-test: prove the gate trips on a real slowdown
//! PSM_PERF_SLOWDOWN=2.0 cargo run --release -p psm-bench \
//!     --bin perf_gate -- --small --expect-regression
//! ```
//!
//! Exit codes: 0 = ok (or warn-only), 1 = confirmed regression (or a
//! failed `--expect-regression` self-test). Always writes
//! `results/perf_gate.json`.

use psm_analyze::regress::{compare_paired, Comparison, RegressConfig, Verdict};
use psm_bench::trajectory::{
    fingerprint, git_commit, measure_reps, read_history, slowdown_multiplier, Fingerprint,
    TrajectoryRecord,
};
use psm_bench::{f, print_table, CliOptions, Variant};
use workloads::Preset;

fn out_dir() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string())
}

fn fingerprint_json(fp: &Fingerprint) -> String {
    let mut out = format!("{{\"cpus\":{},\"model\":", fp.cpus);
    psm_obs::json::push_escaped(&mut out, &fp.model);
    out.push('}');
    out
}

fn write_report(
    out: &str,
    status: &str,
    baseline: Option<&TrajectoryRecord>,
    comparisons: &[Comparison],
) {
    let mut json = format!("{{\"status\":\"{status}\",\"current\":{{\"commit\":");
    psm_obs::json::push_escaped(&mut json, &git_commit());
    json.push_str(",\"fingerprint\":");
    json.push_str(&fingerprint_json(&fingerprint()));
    json.push_str(&format!(
        ",\"slowdown_multiplier\":{}}}",
        psm_obs::json::number(slowdown_multiplier())
    ));
    json.push_str(",\"baseline\":");
    match baseline {
        Some(b) => {
            json.push_str(&format!("{{\"ts\":{},\"commit\":", b.ts));
            psm_obs::json::push_escaped(&mut json, &b.commit);
            json.push_str(&format!(
                ",\"variant\":\"{}\",\"rep_cycles\":{},\"fingerprint\":",
                b.variant, b.rep_cycles
            ));
            json.push_str(&fingerprint_json(&b.fingerprint));
            json.push('}');
        }
        None => json.push_str("null"),
    }
    json.push_str(",\"comparisons\":[");
    for (i, c) in comparisons.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&c.to_json());
    }
    json.push_str("],\"regressed\":[");
    let mut first = true;
    for c in comparisons {
        if c.verdict == Verdict::Regressed {
            if !first {
                json.push(',');
            }
            psm_obs::json::push_escaped(&mut json, &c.metric);
            first = false;
        }
    }
    json.push_str("]}");
    let path = format!("{out}/perf_gate.json");
    if std::fs::create_dir_all(out).is_ok() && std::fs::write(&path, &json).is_ok() {
        println!("wrote {path}");
    } else {
        eprintln!("could not write {path}");
        std::process::exit(1);
    }
}

fn main() {
    let opts = CliOptions::parse(200);
    let out = out_dir();
    let expect_regression = std::env::args().any(|a| a == "--expect-regression");
    let variant_name = if opts.small { "small" } else { "full" };

    // Latest baseline record matching this variant: records from the
    // other variant measure different workload sizes and never pair.
    let history = read_history(&format!("{out}/bench_history.jsonl"));
    let Some(baseline) = history.iter().rev().find(|r| r.variant == variant_name) else {
        println!(
            "perf_gate: no {variant_name} baseline in {out}/bench_history.jsonl — \
             run bench_baseline first; passing"
        );
        write_report(&out, "no-baseline", None, &[]);
        if expect_regression {
            eprintln!("perf_gate: --expect-regression needs a baseline");
            std::process::exit(1);
        }
        return;
    };

    let current_fp = fingerprint();
    let same_host = current_fp == baseline.fingerprint;
    if !same_host {
        println!(
            "perf_gate: fingerprint mismatch — baseline {} cpus \"{}\" vs current {} cpus \"{}\"; \
             verdicts reported but the gate will only warn",
            baseline.fingerprint.cpus,
            baseline.fingerprint.model,
            current_fp.cpus,
            current_fp.model
        );
    }

    let variant = if opts.small {
        Variant::Small
    } else {
        Variant::Standard
    };
    let reps = baseline
        .presets
        .iter()
        .map(|p| p.reps_s.len())
        .max()
        .unwrap_or(7);
    let mult = slowdown_multiplier();
    if mult > 1.0 {
        println!("perf_gate: PSM_PERF_SLOWDOWN={mult} — measured windows stretched {mult}x");
    }
    let current = measure_reps(&Preset::all(), variant, baseline.rep_cycles, reps);

    let cfg = RegressConfig::default();
    let mut comparisons = Vec::new();
    let mut rows = Vec::new();
    for (name, cur_reps) in &current {
        let Some(base) = baseline.presets.iter().find(|p| &p.name == name) else {
            continue;
        };
        let c = compare_paired(name, &base.reps_s, cur_reps, &cfg);
        rows.push(vec![
            c.metric.clone(),
            format!("{:.1}ms", c.baseline_median * 1e3),
            format!("{:.1}ms", c.current_median * 1e3),
            format!("{:+.1}%", c.median_delta * 100.0),
            format!("[{:+.1}%, {:+.1}%]", c.ci_low * 100.0, c.ci_high * 100.0),
            f(c.frac_slower, 2),
            c.verdict.label().to_string(),
        ]);
        comparisons.push(c);
    }
    print_table(
        &format!(
            "perf_gate: {} presets vs baseline {} ({})",
            variant_name,
            &baseline.commit[..baseline.commit.len().min(10)],
            baseline.variant
        ),
        &[
            "preset", "base med", "cur med", "delta", "95% CI", "frac>", "verdict",
        ],
        &rows,
    );

    let regressed: Vec<&Comparison> = comparisons
        .iter()
        .filter(|c| c.verdict == Verdict::Regressed)
        .collect();

    if expect_regression {
        // Self-test mode: the CI job injects PSM_PERF_SLOWDOWN and
        // requires the gate to confirm it on at least two presets.
        write_report(&out, "self-test", Some(baseline), &comparisons);
        if regressed.len() >= 2 {
            println!(
                "perf_gate self-test: seeded slowdown confirmed on {} presets — gate works",
                regressed.len()
            );
        } else {
            eprintln!(
                "perf_gate self-test FAILED: seeded slowdown confirmed on only {} preset(s), need 2",
                regressed.len()
            );
            std::process::exit(1);
        }
        return;
    }

    let status = if regressed.is_empty() {
        "ok"
    } else if same_host {
        "regressed"
    } else {
        "fingerprint-mismatch"
    };
    write_report(&out, status, Some(baseline), &comparisons);
    if regressed.is_empty() {
        println!("perf_gate: no confirmed regression");
    } else if !same_host {
        println!(
            "perf_gate: {} preset(s) look regressed but the baseline is from different \
             hardware — warning only",
            regressed.len()
        );
    } else {
        eprintln!(
            "perf_gate: CONFIRMED regression on {} preset(s): {}",
            regressed.len(),
            regressed
                .iter()
                .map(|c| c.metric.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }
}
