//! Measured workload characteristics — the quantities the paper's
//! argument rests on, extracted from a captured trace in one call.

use rete::Trace;

use crate::generator::GeneratedWorkload;

/// The measured characteristics of a workload run, alongside the paper's
/// reference bands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Characteristics {
    /// Productions in the program.
    pub productions: usize,
    /// Mean productions affected per WM change (paper: ~30).
    pub affected_per_change: f64,
    /// Mean WM changes per recognize–act cycle (paper: small, 2–6).
    pub changes_per_cycle: f64,
    /// Mean node activations per change.
    pub activations_per_change: f64,
    /// WM turnover per cycle as a fraction of the stable WM size
    /// (paper: < 0.5 %).
    pub turnover_per_cycle: f64,
}

impl Characteristics {
    /// Measures a captured trace of `workload`.
    pub fn measure(workload: &GeneratedWorkload, trace: &Trace) -> Self {
        let changes = trace.total_changes().max(1) as f64;
        Characteristics {
            productions: workload.program.productions.len(),
            affected_per_change: trace.mean_affected_productions(),
            changes_per_cycle: trace.mean_changes_per_cycle(),
            activations_per_change: trace.total_activations() as f64 / changes,
            turnover_per_cycle: trace.mean_changes_per_cycle()
                / workload.spec.wm_size.max(1) as f64,
        }
    }

    /// Whether the run sits in the qualitative bands the paper's
    /// conclusions assume: a small affected set (not the whole rule
    /// base) and a WM turnover far below the §3.1 breakeven.
    pub fn paper_shaped(&self) -> bool {
        self.affected_per_change >= 1.0
            && self.affected_per_change <= self.productions as f64 * 0.25
            && self.turnover_per_cycle < 0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::capture_trace;
    use crate::generator::GeneratedWorkload;
    use crate::presets::Preset;

    #[test]
    fn all_presets_are_paper_shaped() {
        for preset in Preset::all() {
            let w = GeneratedWorkload::generate(preset.spec_small()).unwrap();
            let (trace, _) = capture_trace(&w, 30, 3).unwrap();
            let c = Characteristics::measure(&w, &trace);
            assert!(c.paper_shaped(), "{}: {c:?}", preset.name());
            assert!(c.changes_per_cycle >= 1.0);
            assert!(c.activations_per_change > 1.0);
        }
    }

    #[test]
    fn degenerate_workload_is_flagged() {
        // One class, one constant: every change affects every production.
        let spec = crate::generator::WorkloadSpec {
            classes: 1,
            constants: 1,
            productions: 10,
            wm_size: 10,
            min_changes: 5,
            max_changes: 8,
            negated_prob: 0.0,
            ..crate::generator::WorkloadSpec::default()
        };
        let w = GeneratedWorkload::generate(spec).unwrap();
        let (trace, _) = capture_trace(&w, 10, 3).unwrap();
        let c = Characteristics::measure(&w, &trace);
        assert!(!c.paper_shaped(), "{c:?}");
    }
}
