//! Named presets approximating the paper's six measurement systems.
//!
//! The paper evaluates VT (an elevator configurer), ILOG, MUD (drilling-
//! fluid analysis), DAA (the VLSI Design Automation Assistant), R1-Soar,
//! and Eight-Puzzle-Soar. We do not have those programs; each preset is
//! a synthetic stand-in whose generator knobs are tuned to the published
//! characteristics (production counts from the papers cited in §6;
//! affected-set sizes ~20–40 per change; < 0.5 % WM turnover per cycle;
//! small change batches, larger for the "parallel firings" Soar
//! variants). `EXPERIMENTS.md` records the measured characteristics next
//! to the paper's.

use crate::generator::WorkloadSpec;

/// The six workload presets of Figures 6-1 and 6-2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// VT, the elevator-system configurer (~1322 rules).
    Vt,
    /// ILOG, an inventory/logistics system (~1181 rules).
    Ilog,
    /// MUD, the drilling-fluid consultant (~872 rules).
    Mud,
    /// DAA, the VLSI design automation assistant (~445 rules).
    Daa,
    /// R1-Soar, knowledge-intensive configuration in Soar (~319 rules).
    R1Soar,
    /// Eight-Puzzle-Soar, a small search task in Soar (~62 rules).
    EpSoar,
}

impl Preset {
    /// All presets in the paper's figure order.
    pub fn all() -> [Preset; 6] {
        [
            Preset::Vt,
            Preset::Ilog,
            Preset::Mud,
            Preset::Daa,
            Preset::R1Soar,
            Preset::EpSoar,
        ]
    }

    /// The preset's display name.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Vt => "vt",
            Preset::Ilog => "ilog",
            Preset::Mud => "mud",
            Preset::Daa => "daa",
            Preset::R1Soar => "r1-soar",
            Preset::EpSoar => "ep-soar",
        }
    }

    /// The generator spec for this preset.
    pub fn spec(self) -> WorkloadSpec {
        // Shared shape: ~3 CEs per rule, modest negation, class pool
        // sized so that a change affects a few tens of productions.
        let base = WorkloadSpec {
            min_ces: 2,
            max_ces: 5,
            negated_prob: 0.12,
            remove_fraction: 0.45,
            hot_exponent: 1.1,
            ..WorkloadSpec::default()
        };
        match self {
            Preset::Vt => WorkloadSpec {
                name: "vt".into(),
                productions: 1322,
                classes: 60,
                constants: 8,
                join_values: 80,
                wm_size: 1100,
                min_changes: 3,
                max_changes: 8,
                seed: 101,
                ..base
            },
            Preset::Ilog => WorkloadSpec {
                name: "ilog".into(),
                productions: 1181,
                classes: 55,
                constants: 8,
                join_values: 80,
                wm_size: 850,
                min_changes: 2,
                max_changes: 6,
                seed: 102,
                ..base
            },
            Preset::Mud => WorkloadSpec {
                name: "mud".into(),
                productions: 872,
                classes: 45,
                constants: 7,
                join_values: 70,
                wm_size: 850,
                min_changes: 3,
                max_changes: 8,
                seed: 103,
                ..base
            },
            Preset::Daa => WorkloadSpec {
                name: "daa".into(),
                productions: 445,
                classes: 26,
                constants: 6,
                join_values: 60,
                wm_size: 900,
                min_changes: 3,
                max_changes: 9,
                seed: 104,
                ..base
            },
            Preset::R1Soar => WorkloadSpec {
                name: "r1-soar".into(),
                productions: 319,
                classes: 16,
                constants: 5,
                join_values: 50,
                wm_size: 600,
                min_changes: 3,
                max_changes: 9,
                seed: 105,
                ..base
            },
            Preset::EpSoar => WorkloadSpec {
                name: "ep-soar".into(),
                productions: 62,
                classes: 7,
                constants: 4,
                join_values: 30,
                wm_size: 280,
                min_changes: 2,
                max_changes: 7,
                seed: 106,
                ..base
            },
        }
    }

    /// The "parallel firings" variant of the figure legends: several
    /// rule firings' changes are processed as one batch, multiplying the
    /// changes per cycle (the paper shows these only for R1-Soar and
    /// EP-Soar, the Soar systems that fire rules in parallel).
    pub fn spec_parallel_firings(self) -> WorkloadSpec {
        let mut spec = self.spec();
        spec.name = format!("{}-parallel-firings", spec.name);
        spec.min_changes *= 4;
        spec.max_changes *= 4;
        spec
    }

    /// A reduced-size spec (¼ productions and WM) for fast tests and
    /// quick experiment iterations; preserves all ratios.
    pub fn spec_small(self) -> WorkloadSpec {
        let mut spec = self.spec();
        spec.name = format!("{}-small", spec.name);
        spec.productions = (spec.productions / 4).max(20);
        spec.wm_size = (spec.wm_size / 4).max(60);
        spec.classes = (spec.classes / 2).max(8);
        spec
    }

    /// The small spec with real RHS actions (`rhs_actions` 0.7): rules
    /// remove, modify, and make WMEs instead of matching only. Used by
    /// the interference analysis and the write-set sanitizer
    /// cross-check, which need a non-empty act phase to exercise. The
    /// working memory keeps its full-preset size and the join domain is
    /// tightened so even the smallest rule sets (whose 3–5-way `^a1`
    /// joins rarely align by chance) find real matches to fire on.
    pub fn spec_acting(self) -> WorkloadSpec {
        let mut spec = self.spec_small();
        spec.name = format!("{}-acting", spec.name);
        spec.rhs_actions = 0.7;
        spec.wm_size = self.spec().wm_size;
        spec.join_values = (spec.join_values / 4).max(6);
        spec
    }
}

/// Looks a preset up by name (as printed in figures/reports).
pub fn preset(name: &str) -> Option<Preset> {
    Preset::all().into_iter().find(|p| p.name() == name)
}

/// All preset names in figure order.
pub fn preset_names() -> Vec<&'static str> {
    Preset::all().iter().map(|p| p.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratedWorkload;

    #[test]
    fn lookup_round_trips() {
        for p in Preset::all() {
            assert_eq!(preset(p.name()), Some(p));
        }
        assert_eq!(preset("nope"), None);
        assert_eq!(preset_names().len(), 6);
    }

    #[test]
    fn production_counts_match_published_sizes() {
        assert_eq!(Preset::Vt.spec().productions, 1322);
        assert_eq!(Preset::Ilog.spec().productions, 1181);
        assert_eq!(Preset::Mud.spec().productions, 872);
        assert_eq!(Preset::Daa.spec().productions, 445);
        assert_eq!(Preset::R1Soar.spec().productions, 319);
        assert_eq!(Preset::EpSoar.spec().productions, 62);
    }

    #[test]
    fn parallel_firings_quadruple_batches() {
        let base = Preset::EpSoar.spec();
        let par = Preset::EpSoar.spec_parallel_firings();
        assert_eq!(par.min_changes, base.min_changes * 4);
        assert_eq!(par.max_changes, base.max_changes * 4);
        assert!(par.name.contains("parallel-firings"));
    }

    #[test]
    fn small_variants_generate_quickly_and_match_shape() {
        for p in Preset::all() {
            let spec = p.spec_small();
            let w = GeneratedWorkload::generate(spec.clone()).unwrap();
            assert_eq!(w.program.productions.len(), spec.productions);
        }
    }

    #[test]
    fn ep_soar_full_preset_generates() {
        let w = GeneratedWorkload::generate(Preset::EpSoar.spec()).unwrap();
        assert_eq!(w.program.productions.len(), 62);
    }

    #[test]
    fn ep_soar_full_preset_has_paper_shaped_characteristics() {
        // Calibration guard: the trace characteristics the experiments
        // rely on must stay in the paper's bands (DESIGN.md par. 3).
        let w = GeneratedWorkload::generate(Preset::EpSoar.spec()).unwrap();
        let (trace, _stats) = crate::driver::capture_trace(&w, 40, 5).unwrap();
        let affected = trace.mean_affected_productions();
        assert!(
            (2.0..30.0).contains(&affected),
            "ep-soar affected/change drifted: {affected}"
        );
        let turnover = trace.mean_changes_per_cycle() / w.spec.wm_size as f64;
        assert!(
            turnover < 0.05,
            "turnover should be a small fraction of WM: {turnover}"
        );
    }
}
