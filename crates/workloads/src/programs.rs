//! Real, self-running OPS5 programs.
//!
//! Unlike the synthetic generator (which exercises *match* under
//! controlled distributions), these programs run end-to-end through the
//! recognize–act interpreter: their right-hand sides drive the
//! computation, like the application programs the paper's introduction
//! motivates. They power the examples and the integration tests.

use ops5::{parse_program, parse_wmes, Error, Program, Wme};

/// The classic monkey-and-bananas planning problem.
///
/// A monkey must walk to a ladder, push it under the bananas, climb, and
/// grab. Four rules fire in sequence; `grab` halts the run.
pub const MONKEY_BANANAS: &str = r#"
(p grab
  (goal ^want bananas)
  (bananas ^at <p>)
  (ladder ^at <p>)
  (monkey ^on ladder ^at <p> ^holds nothing)
  -->
  (modify 4 ^holds bananas)
  (write monkey grabs bananas)
  (halt))

(p climb
  (goal ^want bananas)
  (bananas ^at <p>)
  (ladder ^at <p>)
  (monkey ^on floor ^at <p>)
  -->
  (modify 4 ^on ladder)
  (write monkey climbs ladder))

(p push-ladder
  (goal ^want bananas)
  (bananas ^at <p>)
  (ladder ^at { <q> <> <p> })
  (monkey ^on floor ^at <q>)
  -->
  (modify 3 ^at <p>)
  (modify 4 ^at <p>)
  (write monkey pushes ladder to <p>))

(p walk-to-ladder
  (goal ^want bananas)
  (ladder ^at <q>)
  (monkey ^on floor ^at { <r> <> <q> } ^holds nothing)
  -->
  (modify 3 ^at <q>)
  (write monkey walks to <q>))
"#;

/// Builds the monkey-and-bananas program and its initial working memory
/// (monkey at `a`, ladder at `b`, bananas at `c`).
///
/// # Errors
///
/// Returns [`Error`] only if the embedded source fails to parse (a bug).
pub fn monkey_bananas() -> Result<(Program, Vec<Wme>), Error> {
    let mut program = parse_program(MONKEY_BANANAS)?;
    let wmes = parse_wmes(
        r#"
        (goal ^want bananas)
        (bananas ^at c)
        (ladder ^at b)
        (monkey ^on floor ^at a ^holds nothing)
        "#,
        &mut program.symbols,
    )?;
    Ok((program, wmes))
}

/// Transitive closure over an edge relation: derives `reach` facts until
/// quiescence. A negated condition element keeps it terminating.
pub const TRANSITIVE_CLOSURE: &str = r#"
(p tc-init
  (edge ^from <a> ^to <b>)
  - (reach ^from <a> ^to <b>)
  -->
  (make reach ^from <a> ^to <b>))

(p tc-extend
  (reach ^from <a> ^to <b>)
  (edge ^from <b> ^to <c>)
  - (reach ^from <a> ^to <c>)
  -->
  (make reach ^from <a> ^to <c>))
"#;

/// Builds the transitive-closure program plus `edge` WMEs for the given
/// edge list (node ids become integer attribute values).
///
/// # Errors
///
/// Returns [`Error`] only if the embedded source fails to parse (a bug).
pub fn transitive_closure(edges: &[(i64, i64)]) -> Result<(Program, Vec<Wme>), Error> {
    let mut program = parse_program(TRANSITIVE_CLOSURE)?;
    let literals: String = edges
        .iter()
        .map(|(a, b)| format!("(edge ^from {a} ^to {b})\n"))
        .collect();
    let wmes = parse_wmes(&literals, &mut program.symbols)?;
    Ok((program, wmes))
}

/// Rule-based bubble sort: adjacent out-of-order items swap values until
/// no inversion remains. Each firing removes at least one inversion, so
/// the system reaches quiescence with the values sorted.
pub const RULE_SORT: &str = r#"
(p swap-adjacent
  (item ^pos <i> ^val <v>)
  (succ ^of <i> ^is <j>)
  (item ^pos <j> ^val { <w> < <v> })
  -->
  (modify 1 ^val <w>)
  (modify 3 ^val <v>))
"#;

/// Builds the sorting program plus `item`/`succ` WMEs for `values`.
///
/// # Errors
///
/// Returns [`Error`] only if the embedded source fails to parse (a bug).
pub fn rule_sort(values: &[i64]) -> Result<(Program, Vec<Wme>), Error> {
    let mut program = parse_program(RULE_SORT)?;
    let mut literals = String::new();
    for (i, v) in values.iter().enumerate() {
        literals.push_str(&format!("(item ^pos {i} ^val {v})\n"));
        if i + 1 < values.len() {
            literals.push_str(&format!("(succ ^of {i} ^is {})\n", i + 1));
        }
    }
    let wmes = parse_wmes(&literals, &mut program.symbols)?;
    Ok((program, wmes))
}

/// Towers of Hanoi solved with a goal stack under MEA conflict
/// resolution — the classic OPS5 use of `compute` and recency: the most
/// recently created goal is processed first (LIFO), giving the correct
/// depth-first move order.
pub const HANOI: &str = r#"
(p split
  (goal ^atomic no ^disk { <n> > 1 } ^from <f> ^to <t> ^via <v>)
  -->
  (remove 1)
  (make goal ^atomic no ^disk (compute <n> - 1) ^from <v> ^to <t> ^via <f>)
  (make goal ^atomic yes ^disk <n> ^from <f> ^to <t>)
  (make goal ^atomic no ^disk (compute <n> - 1) ^from <f> ^to <v> ^via <t>))

(p base
  (goal ^atomic no ^disk 1 ^from <f> ^to <t>)
  -->
  (remove 1)
  (make goal ^atomic yes ^disk 1 ^from <f> ^to <t>))

(p do-move
  (goal ^atomic yes ^disk <n> ^from <f> ^to <t>)
  (counter ^n <k>)
  -->
  (remove 1)
  (make move ^seq <k> ^disk <n> ^from <f> ^to <t>)
  (modify 2 ^n (compute <k> + 1))
  (write move disk <n> from <f> to <t>))
"#;

/// Builds the Towers of Hanoi program and its initial working memory
/// for `disks` disks on pegs a → c via b. Run it under
/// [`ops5::Strategy::Mea`].
///
/// # Errors
///
/// Returns [`Error`] only if the embedded source fails to parse (a bug).
pub fn hanoi(disks: i64) -> Result<(Program, Vec<Wme>), Error> {
    let mut program = parse_program(HANOI)?;
    let wmes = parse_wmes(
        &format!("(goal ^atomic no ^disk {disks} ^from a ^to c ^via b)\n(counter ^n 0)"),
        &mut program.symbols,
    )?;
    Ok((program, wmes))
}

/// Iterative Fibonacci driven by a single self-modifying rule with
/// `compute` arithmetic; halts when the index reaches the limit.
pub const FIBONACCI: &str = r#"
(p fib-step
  (fib ^i <i> ^a <a> ^b <b>)
  (limit ^n > <i>)
  -->
  (modify 1 ^i (compute <i> + 1) ^a <b> ^b (compute <a> + <b>)))

(p fib-done
  (fib ^i <i> ^a <a>)
  (limit ^n <i>)
  -->
  (write fib <i> is <a>)
  (halt))
"#;

/// Builds the Fibonacci program computing `fib(n)`.
///
/// # Errors
///
/// Returns [`Error`] only if the embedded source fails to parse (a bug).
pub fn fibonacci(n: i64) -> Result<(Program, Vec<Wme>), Error> {
    let mut program = parse_program(FIBONACCI)?;
    let wmes = parse_wmes(
        &format!("(fib ^i 0 ^a 0 ^b 1)\n(limit ^n {n})"),
        &mut program.symbols,
    )?;
    Ok((program, wmes))
}

/// Single-source shortest paths by rule-based relaxation: a wavefront
/// `wave` fact per reached cell carrying its distance, improved
/// Bellman-Ford-style until quiescence. Every firing either reaches a
/// new cell or strictly decreases a distance, so termination is
/// guaranteed and the fixpoint is the true shortest-path distances.
pub const SHORTEST_PATHS: &str = r#"
(p seed
  (start ^cell <c>)
  - (wave ^cell <c>)
  -->
  (make wave ^cell <c> ^d 0 ^next 1))

(p expand
  (wave ^cell <c> ^next <d1>)
  (adj ^from <c> ^to <n>)
  - (wave ^cell <n>)
  -->
  (make wave ^cell <n> ^d <d1> ^next (compute <d1> + 1)))

(p improve
  (wave ^cell <c> ^next <d1>)
  (adj ^from <c> ^to <n>)
  (wave ^cell <n> ^d > <d1>)
  -->
  (modify 3 ^d <d1> ^next (compute <d1> + 1)))
"#;

/// Builds the shortest-paths program over directed `edges` from `start`.
///
/// # Errors
///
/// Returns [`Error`] only if the embedded source fails to parse (a bug).
pub fn shortest_paths(edges: &[(i64, i64)], start: i64) -> Result<(Program, Vec<Wme>), Error> {
    let mut program = parse_program(SHORTEST_PATHS)?;
    let mut literals = format!("(start ^cell {start})\n");
    for (a, b) in edges {
        literals.push_str(&format!("(adj ^from {a} ^to {b})\n"));
    }
    let wmes = parse_wmes(&literals, &mut program.symbols)?;
    Ok((program, wmes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{Interpreter, Strategy, Value};
    use rete::ReteMatcher;

    #[test]
    fn monkey_gets_bananas_in_four_firings() {
        let (program, wmes) = monkey_bananas().unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(wmes);
        let fired = interp.run(20).unwrap();
        assert_eq!(fired, 4, "walk, push, climb, grab");
        assert_eq!(
            interp.output().last().map(String::as_str),
            Some("monkey grabs bananas")
        );
        // The monkey ends up holding the bananas.
        let holds = interp.program().symbols.lookup("holds").unwrap();
        let bananas = interp.program().symbols.lookup("bananas").unwrap();
        assert!(interp
            .working_memory()
            .iter()
            .any(|(_, w, _)| w.get(holds) == Some(Value::Sym(bananas))));
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        // 0 -> 1 -> 2 -> 3: closure has 3 + 2 + 1 = 6 reach facts.
        let (program, wmes) = transitive_closure(&[(0, 1), (1, 2), (2, 3)]).unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(wmes);
        let fired = interp.run(100).unwrap();
        assert_eq!(fired, 6, "one firing per derived reach fact");
        let reach = interp.program().symbols.lookup("reach").unwrap();
        let n = interp
            .working_memory()
            .iter()
            .filter(|(_, w, _)| w.class() == reach)
            .count();
        assert_eq!(n, 6);
    }

    #[test]
    fn transitive_closure_of_a_cycle_terminates() {
        let (program, wmes) = transitive_closure(&[(0, 1), (1, 2), (2, 0)]).unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(wmes);
        let fired = interp.run(200).unwrap();
        // Every ordered pair (including self-reachability): 3×3 = 9.
        assert_eq!(fired, 9);
    }

    #[test]
    fn rule_sort_sorts() {
        let values = [5, 1, 4, 2, 3];
        let (program, wmes) = rule_sort(&values).unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(wmes);
        let fired = interp.run(500).unwrap();
        assert!(fired > 0);
        // Read back items ordered by position.
        let item = interp.program().symbols.lookup("item").unwrap();
        let pos = interp.program().symbols.lookup("pos").unwrap();
        let val = interp.program().symbols.lookup("val").unwrap();
        let mut out: Vec<(i64, i64)> = interp
            .working_memory()
            .iter()
            .filter(|(_, w, _)| w.class() == item)
            .map(|(_, w, _)| match (w.get(pos), w.get(val)) {
                (Some(Value::Int(p)), Some(Value::Int(v))) => (p, v),
                _ => panic!("malformed item"),
            })
            .collect();
        out.sort();
        let sorted: Vec<i64> = out.iter().map(|&(_, v)| v).collect();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
    }

    /// Reference Hanoi move sequence for verification.
    fn hanoi_moves(n: i64, from: char, to: char, via: char, out: &mut Vec<(i64, char, char)>) {
        if n == 0 {
            return;
        }
        hanoi_moves(n - 1, from, via, to, out);
        out.push((n, from, to));
        hanoi_moves(n - 1, via, to, from, out);
    }

    #[test]
    fn hanoi_produces_the_optimal_move_sequence() {
        for disks in 1..=4 {
            let (program, wmes) = hanoi(disks).unwrap();
            let matcher = ReteMatcher::compile(&program).unwrap();
            let mut interp = Interpreter::new(program, matcher);
            interp.set_strategy(Strategy::Mea);
            interp.insert_all(wmes);
            interp.run(10_000).unwrap();

            // Collect moves ordered by ^seq.
            let mv = interp.program().symbols.lookup("move").unwrap();
            let seq = interp.program().symbols.lookup("seq").unwrap();
            let disk = interp.program().symbols.lookup("disk").unwrap();
            let from = interp.program().symbols.lookup("from").unwrap();
            let to = interp.program().symbols.lookup("to").unwrap();
            let peg = |interp: &Interpreter<ReteMatcher>, v: Value| -> char {
                match v {
                    Value::Sym(s) => interp.program().symbols.name(s).chars().next().unwrap(),
                    Value::Int(_) => panic!("peg should be symbolic"),
                }
            };
            let mut moves: Vec<(i64, i64, char, char)> = interp
                .working_memory()
                .iter()
                .filter(|(_, w, _)| w.class() == mv)
                .map(|(_, w, _)| {
                    let s = match w.get(seq).unwrap() {
                        Value::Int(i) => i,
                        _ => panic!(),
                    };
                    let d = match w.get(disk).unwrap() {
                        Value::Int(i) => i,
                        _ => panic!(),
                    };
                    (
                        s,
                        d,
                        peg(&interp, w.get(from).unwrap()),
                        peg(&interp, w.get(to).unwrap()),
                    )
                })
                .collect();
            moves.sort_unstable();
            assert_eq!(moves.len() as i64, (1 << disks) - 1, "2^n - 1 moves");

            let mut expected = Vec::new();
            hanoi_moves(disks, 'a', 'c', 'b', &mut expected);
            let got: Vec<(i64, char, char)> =
                moves.into_iter().map(|(_, d, f, t)| (d, f, t)).collect();
            assert_eq!(got, expected, "disks={disks}");
        }
    }

    #[test]
    fn fibonacci_computes_correctly() {
        let (program, wmes) = fibonacci(10).unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(wmes);
        interp.run(100).unwrap();
        assert_eq!(
            interp.output().last().map(String::as_str),
            Some("fib 10 is 55")
        );
    }

    /// Reference BFS distances.
    fn bfs(edges: &[(i64, i64)], start: i64) -> std::collections::HashMap<i64, i64> {
        let mut dist = std::collections::HashMap::new();
        dist.insert(start, 0i64);
        let mut frontier = vec![start];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &c in &frontier {
                let d = dist[&c];
                for &(a, b) in edges {
                    if a == c && !dist.contains_key(&b) {
                        dist.insert(b, d + 1);
                        next.push(b);
                    }
                }
            }
            frontier = next;
        }
        dist
    }

    fn run_shortest(edges: &[(i64, i64)], start: i64) -> std::collections::HashMap<i64, i64> {
        let (program, wmes) = shortest_paths(edges, start).unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(wmes);
        interp.run(100_000).unwrap();
        let wave = interp.program().symbols.lookup("wave").unwrap();
        let cell = interp.program().symbols.lookup("cell").unwrap();
        let d = interp.program().symbols.lookup("d").unwrap();
        interp
            .working_memory()
            .by_class(wave)
            .map(|(_, w)| match (w.get(cell), w.get(d)) {
                (Some(Value::Int(c)), Some(Value::Int(dd))) => (c, dd),
                _ => panic!("malformed wave fact"),
            })
            .collect()
    }

    #[test]
    fn shortest_paths_on_a_grid_match_bfs() {
        // 4x4 grid, 4-connected, with a wall knocking out two cells so
        // some shortest paths must detour.
        let w = 4i64;
        let blocked = [1i64, 6];
        let mut edges = Vec::new();
        for r in 0..w {
            for c in 0..w {
                let id = r * w + c;
                if blocked.contains(&id) {
                    continue;
                }
                for (dr, dc) in [(0i64, 1i64), (1, 0), (0, -1), (-1, 0)] {
                    let (nr, nc) = (r + dr, c + dc);
                    let nid = nr * w + nc;
                    if (0..w).contains(&nr) && (0..w).contains(&nc) && !blocked.contains(&nid) {
                        edges.push((id, nid));
                    }
                }
            }
        }
        let got = run_shortest(&edges, 0);
        let expected = bfs(&edges, 0);
        assert_eq!(got, expected, "rule-based relaxation equals BFS");
        // The wall forces a detour: cell 2 (row 0) is far beyond its
        // Manhattan distance of 2.
        assert!(got[&2] > 2, "detour expected, got {}", got[&2]);
    }

    #[test]
    fn shortest_paths_ignore_unreachable_cells() {
        let got = run_shortest(&[(0, 1), (1, 2), (7, 8)], 0);
        assert_eq!(got.len(), 3, "only the component of the start");
        assert_eq!(got[&2], 2);
    }

    #[test]
    fn transitive_closure_disconnected_components() {
        let (program, wmes) = transitive_closure(&[(0, 1), (5, 6), (6, 7)]).unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(wmes);
        let fired = interp.run(100).unwrap();
        // Component {0,1}: 1 fact; component {5,6,7}: 2+1 = 3 facts.
        assert_eq!(fired, 4);
    }

    #[test]
    fn rule_sort_single_element_is_quiescent() {
        let (program, wmes) = rule_sort(&[42]).unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(wmes);
        assert_eq!(interp.run(10).unwrap(), 0);
    }

    #[test]
    fn fibonacci_base_case() {
        let (program, wmes) = fibonacci(0).unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(wmes);
        interp.run(10).unwrap();
        assert_eq!(
            interp.output().last().map(String::as_str),
            Some("fib 0 is 0")
        );
    }

    #[test]
    fn rule_sort_already_sorted_is_quiescent() {
        let (program, wmes) = rule_sort(&[1, 2, 3]).unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let mut interp = Interpreter::new(program, matcher);
        interp.insert_all(wmes);
        assert_eq!(interp.run(10).unwrap(), 0);
    }
}
