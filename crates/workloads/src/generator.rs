//! Parameterized synthetic production-system generation.
//!
//! The generator emits OPS5 source text and parses it, so generated
//! workloads exercise the same front end as hand-written programs. The
//! knobs map one-to-one onto the quantities Section 8 of the paper
//! identifies as controlling exploitable parallelism:
//!
//! | knob | paper quantity |
//! |---|---|
//! | `classes`, `hot_exponent`, `constants` | affected productions per WM change |
//! | `min_changes..=max_changes` | WM changes per recognize–act cycle |
//! | `min_ces..=max_ces`, `join_values` | variance of per-production processing |
//! | `wm_size` | stable working-memory size `s` (§3.1 cost model) |

use ops5::{parse_program, Error, Program, SymbolId, Value, Wme};
use psm_obs::Rng64;

/// Parameters of a synthetic production system.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (used in reports).
    pub name: String,
    /// Number of productions to generate.
    pub productions: usize,
    /// Number of WME classes in the vocabulary.
    pub classes: usize,
    /// Size of the constant pool tested by `^a0` (selectivity).
    pub constants: usize,
    /// Domain size of the join attribute `^a1` (join selectivity).
    pub join_values: i64,
    /// Minimum condition elements per production.
    pub min_ces: usize,
    /// Maximum condition elements per production.
    pub max_ces: usize,
    /// Probability that a non-first CE is negated.
    pub negated_prob: f64,
    /// Initial working-memory size.
    pub wm_size: usize,
    /// Minimum WM changes per firing batch.
    pub min_changes: usize,
    /// Maximum WM changes per firing batch.
    pub max_changes: usize,
    /// Fraction of batch changes that are retractions.
    pub remove_fraction: f64,
    /// Class-popularity skew: class `i` is drawn with weight
    /// `1/(i+1)^hot_exponent`. Higher = more affected-set concentration.
    pub hot_exponent: f64,
    /// Probability that a production gets a real RHS action (`remove`,
    /// `modify`, or `make`) instead of an empty match-only RHS. At the
    /// default `0.0` the generator draws **zero** extra RNG values, so
    /// legacy seeds produce byte-identical programs.
    pub rhs_actions: f64,
    /// Generation seed (program structure).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            name: "default".into(),
            productions: 100,
            classes: 20,
            constants: 6,
            join_values: 20,
            min_ces: 2,
            max_ces: 4,
            negated_prob: 0.1,
            wm_size: 200,
            min_changes: 2,
            max_changes: 4,
            remove_fraction: 0.4,
            hot_exponent: 1.0,
            rhs_actions: 0.0,
            seed: 1,
        }
    }
}

/// A generated workload: the parsed program plus everything needed to
/// synthesize a WME stream with the spec's distributions.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// The generated program.
    pub program: Program,
    /// The spec it was generated from.
    pub spec: WorkloadSpec,
    /// Cumulative class weights for sampling.
    class_cdf: Vec<f64>,
    /// Interned `c{i}` class symbols, indexed by class number, so WME
    /// synthesis never re-interns (or clones the symbol table) on the
    /// driver's hot path.
    class_syms: Vec<SymbolId>,
    /// Interned `k{i}` constant symbols, indexed by constant number.
    const_syms: Vec<SymbolId>,
    /// Interned `a0`/`a1`/`a2` attribute symbols.
    attr_syms: [SymbolId; 3],
}

impl GeneratedWorkload {
    /// Generates the program for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the generated source fails to parse — a bug
    /// in the generator, surfaced rather than panicking.
    pub fn generate(spec: WorkloadSpec) -> Result<Self, Error> {
        let mut rng = Rng64::new(spec.seed);
        let mut src = String::new();
        for i in 0..spec.productions {
            src.push_str(&Self::gen_production(&spec, i, &mut rng));
        }
        let mut program = parse_program(&src)?;
        // Pre-intern the full vocabulary so WMEs synthesized later (for
        // classes/constants no production happened to reference) still
        // get stable symbol identities, and cache the ids so `gen_wme`
        // builds elements directly instead of formatting and re-parsing
        // text per WME.
        let class_syms: Vec<SymbolId> = (0..spec.classes)
            .map(|i| program.symbols.intern(&format!("c{i}")))
            .collect();
        let const_syms: Vec<SymbolId> = (0..spec.constants)
            .map(|k| program.symbols.intern(&format!("k{k}")))
            .collect();
        let attr_syms = ["a0", "a1", "a2"].map(|attr| program.symbols.intern(attr));
        let class_cdf = class_cdf(&spec);
        Ok(GeneratedWorkload {
            program,
            spec,
            class_cdf,
            class_syms,
            const_syms,
            attr_syms,
        })
    }

    fn gen_production(spec: &WorkloadSpec, index: usize, rng: &mut Rng64) -> String {
        let n_ces = rng.gen_range(spec.min_ces..=spec.max_ces);
        let mut out = format!("(p gen-{index}\n");
        for ce in 0..n_ces {
            let class = sample_class_raw(spec, rng);
            let negated = ce > 0 && rng.gen_bool(spec.negated_prob);
            let constant = rng.gen_range(0..spec.constants);
            let mut tests = format!("^a0 k{constant}");
            // Join structure: every CE carries the shared variable on
            // `a1`, chaining the whole LHS (binding in CE 0).
            tests.push_str(" ^a1 <j>");
            // Occasionally add a predicate or a second constant for
            // specificity variance.
            match rng.gen_range(0..4) {
                0 => tests.push_str(&format!(" ^a2 > {}", rng.gen_range(0..spec.join_values))),
                1 => tests.push_str(&format!(" ^a2 {}", rng.gen_range(0..spec.join_values))),
                _ => {}
            }
            let neg = if negated { "- " } else { "" };
            out.push_str(&format!("  {neg}(c{class} {tests})\n"));
        }
        out.push_str("  -->\n");
        // Match-only by default: the driver synthesizes WM changes, so
        // the RHS is empty (the paper's simulator also replays match
        // traces without executing RHS code). `rhs_actions` opts rules
        // into real act-phase effects for interference/sanitizer runs.
        // The `> 0.0` guard keeps the RNG stream untouched when off.
        if spec.rhs_actions > 0.0 && rng.gen_bool(spec.rhs_actions) {
            match rng.gen_range(0..3u32) {
                0 => out.push_str("  (remove 1)\n"),
                1 => out.push_str(&format!(
                    "  (modify 1 ^a2 {})\n",
                    rng.gen_range(0..spec.join_values)
                )),
                _ => out.push_str(&format!(
                    "  (make c{} ^a0 k{} ^a1 <j> ^a2 {})\n",
                    sample_class_raw(spec, rng),
                    rng.gen_range(0..spec.constants),
                    rng.gen_range(0..spec.join_values)
                )),
            }
        }
        out.push_str(")\n");
        out
    }

    /// Samples a WME from the workload's class/value distributions.
    pub fn gen_wme(&self, rng: &mut Rng64) -> Wme {
        let class = self.sample_class(rng);
        let constant = rng.gen_range(0..self.spec.constants);
        let j = rng.gen_range(0..self.spec.join_values);
        let j2 = rng.gen_range(0..self.spec.join_values);
        // Built from the symbol ids cached at generation time — the
        // structural twin of parsing "(c{class} ^a0 k{constant} ^a1 {j}
        // ^a2 {j2})", minus the per-WME symbol-table clone and text
        // round-trip that used to dominate batch-synthesis cost.
        // `Wme::new` canonicalizes attribute order, so equality with
        // parsed elements is exact and seeded streams are unchanged.
        Wme::new(
            self.class_syms[class],
            vec![
                (self.attr_syms[0], Value::Sym(self.const_syms[constant])),
                (self.attr_syms[1], Value::Int(j)),
                (self.attr_syms[2], Value::Int(j2)),
            ],
        )
    }

    fn sample_class(&self, rng: &mut Rng64) -> usize {
        let x: f64 = rng.gen_f64();
        self.class_cdf
            .partition_point(|&c| c < x)
            .min(self.spec.classes - 1)
    }

    /// An initial working memory of `spec.wm_size` WMEs.
    pub fn initial_wm(&self, rng: &mut Rng64) -> Vec<Wme> {
        (0..self.spec.wm_size).map(|_| self.gen_wme(rng)).collect()
    }
}

fn class_cdf(spec: &WorkloadSpec) -> Vec<f64> {
    let weights: Vec<f64> = (0..spec.classes)
        .map(|i| 1.0 / ((i + 1) as f64).powf(spec.hot_exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample_class_raw(spec: &WorkloadSpec, rng: &mut Rng64) -> usize {
    let cdf = class_cdf(spec);
    let x: f64 = rng.gen_f64();
    cdf.partition_point(|&c| c < x).min(spec.classes - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        let a = GeneratedWorkload::generate(spec.clone()).unwrap();
        let b = GeneratedWorkload::generate(spec).unwrap();
        assert_eq!(a.program.productions.len(), b.program.productions.len());
        for (x, y) in a.program.productions.iter().zip(&b.program.productions) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.ces, y.ces);
        }
    }

    #[test]
    fn respects_production_count_and_ce_bounds() {
        let spec = WorkloadSpec {
            productions: 50,
            min_ces: 2,
            max_ces: 5,
            ..WorkloadSpec::default()
        };
        let w = GeneratedWorkload::generate(spec).unwrap();
        assert_eq!(w.program.productions.len(), 50);
        for p in &w.program.productions {
            assert!(p.ces.len() >= 2 && p.ces.len() <= 5);
            assert!(!p.ces[0].negated, "first CE never negated");
        }
    }

    #[test]
    fn wmes_have_full_attribute_set() {
        let w = GeneratedWorkload::generate(WorkloadSpec::default()).unwrap();
        let mut rng = Rng64::new(9);
        for _ in 0..20 {
            let wme = w.gen_wme(&mut rng);
            assert_eq!(wme.len(), 3, "a0, a1, a2 all present");
        }
    }

    #[test]
    fn hot_classes_dominate_sampling() {
        let spec = WorkloadSpec {
            classes: 10,
            hot_exponent: 1.5,
            ..WorkloadSpec::default()
        };
        let w = GeneratedWorkload::generate(spec).unwrap();
        let mut rng = Rng64::new(3);
        let mut counts = vec![0usize; 10];
        for _ in 0..2000 {
            counts[w.sample_class(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 4,
            "class 0 should be much hotter: {counts:?}"
        );
    }

    #[test]
    fn zero_negation_spec_has_no_negated_ces() {
        let spec = WorkloadSpec {
            negated_prob: 0.0,
            ..WorkloadSpec::default()
        };
        let w = GeneratedWorkload::generate(spec).unwrap();
        assert!(w
            .program
            .productions
            .iter()
            .all(|p| p.ces.iter().all(|ce| !ce.negated)));
    }

    #[test]
    fn rhs_actions_knob_emits_real_actions() {
        let spec = WorkloadSpec {
            rhs_actions: 1.0,
            ..WorkloadSpec::default()
        };
        let w = GeneratedWorkload::generate(spec).unwrap();
        assert!(w.program.productions.iter().all(|p| !p.actions.is_empty()));
        // Default specs stay match-only (and draw no extra RNG).
        let plain = GeneratedWorkload::generate(WorkloadSpec::default()).unwrap();
        assert!(plain
            .program
            .productions
            .iter()
            .all(|p| p.actions.is_empty()));
        // Action draws happen after each production's LHS, so the very
        // first LHS is identical across the two specs; later ones may
        // diverge because the acting spec consumes extra RNG values.
        assert_eq!(
            plain.program.productions[0].ces,
            w.program.productions[0].ces
        );
    }

    #[test]
    fn initial_wm_has_requested_size() {
        let spec = WorkloadSpec {
            wm_size: 37,
            ..WorkloadSpec::default()
        };
        let w = GeneratedWorkload::generate(spec).unwrap();
        let mut rng = Rng64::new(5);
        assert_eq!(w.initial_wm(&mut rng).len(), 37);
    }

    #[test]
    fn generated_program_compiles_to_rete() {
        let w = GeneratedWorkload::generate(WorkloadSpec::default()).unwrap();
        let net = rete::Network::compile(&w.program).unwrap();
        assert!(net.stats.terminals == 100);
        assert!(net.stats.alpha_nodes > 0);
        // Sharing should be non-trivial with a small vocabulary.
        assert!(net.stats.alpha_nodes < net.stats.alpha_requests);
    }
}
