//! Drives matchers through recognize–act-shaped change batches.
//!
//! The paper's simulator consumes traces "from an actual run of a
//! production system"; our driver produces those runs: each synthetic
//! cycle retracts a few live WMEs and asserts a few new ones (one
//! production firing's worth of changes), feeding the batch to the
//! matcher exactly as the interpreter's act phase would.

use std::time::{Duration, Instant};

use ops5::{Change, Matcher, WmeId, WorkingMemory};
use psm_obs::Rng64;
use rete::{MatchStats, ReteMatcher, Trace};

use crate::generator::GeneratedWorkload;

/// Measured characteristics of a driver run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriverReport {
    /// Cycles (synthetic firings) executed.
    pub cycles: u64,
    /// Working-memory changes processed.
    pub wme_changes: u64,
    /// Conflict-set insertions reported.
    pub conflict_adds: u64,
    /// Conflict-set deletions reported.
    pub conflict_removes: u64,
    /// Wall-clock time in the matcher (excludes batch synthesis).
    pub match_time: Duration,
    /// Live working-memory size at the end.
    pub final_wm_size: usize,
}

impl DriverReport {
    /// Working-memory changes per second of match time — the paper's
    /// headline `wme-changes/sec` metric, here for real execution.
    pub fn wme_changes_per_sec(&self) -> f64 {
        let secs = self.match_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.wme_changes as f64 / secs
        }
    }

    /// Mean WM changes per cycle.
    pub fn changes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.wme_changes as f64 / self.cycles as f64
        }
    }
}

/// A reusable batch driver over one workload.
#[derive(Debug)]
pub struct WorkloadDriver {
    workload: GeneratedWorkload,
    rng: Rng64,
    wm: WorkingMemory,
    live: Vec<WmeId>,
}

impl WorkloadDriver {
    /// Creates a driver with its own change-stream seed (independent of
    /// the program-structure seed).
    pub fn new(workload: GeneratedWorkload, seed: u64) -> Self {
        WorkloadDriver {
            workload,
            rng: Rng64::new(seed),
            wm: WorkingMemory::new(),
            live: Vec::new(),
        }
    }

    /// The workload being driven.
    pub fn workload(&self) -> &GeneratedWorkload {
        &self.workload
    }

    /// The driver's working memory.
    pub fn working_memory(&self) -> &WorkingMemory {
        &self.wm
    }

    /// Populates the initial working memory through `matcher`.
    pub fn init<M: Matcher>(&mut self, matcher: &mut M) {
        let wmes = self.workload.initial_wm(&mut self.rng);
        for wme in wmes {
            let (id, _) = self.wm.add(wme);
            self.live.push(id);
            matcher.add_wme(&self.wm, id);
        }
    }

    /// Synthesizes the next change batch: retractions of live WMEs
    /// followed by fresh assertions. Asserted WMEs are already in the
    /// working memory when this returns; retracted ones stay resolvable
    /// until [`WorkloadDriver::commit_batch`].
    pub fn next_batch(&mut self) -> Vec<Change> {
        let spec = &self.workload.spec;
        let n = self
            .rng
            .gen_range(spec.min_changes..=spec.max_changes)
            .max(1);
        let n_removes = ((n as f64 * spec.remove_fraction).round() as usize).min(self.live.len());
        let mut batch = Vec::with_capacity(n);
        for _ in 0..n_removes {
            let idx = self.rng.gen_range(0..self.live.len());
            batch.push(Change::Remove(self.live.swap_remove(idx)));
        }
        for _ in 0..(n - n_removes) {
            let wme = self.workload.gen_wme(&mut self.rng);
            let (id, _) = self.wm.add(wme);
            self.live.push(id);
            batch.push(Change::Add(id));
        }
        batch
    }

    /// Finalizes a batch: retracted WMEs leave the working memory.
    pub fn commit_batch(&mut self, batch: &[Change]) {
        for change in batch {
            if let Change::Remove(id) = change {
                self.wm.remove(*id);
            }
        }
    }

    /// Runs `cycles` batches through `matcher`, timing only the match
    /// calls.
    pub fn run_cycles<M: Matcher>(&mut self, matcher: &mut M, cycles: u64) -> DriverReport {
        let mut report = DriverReport::default();
        for _ in 0..cycles {
            let batch = self.next_batch();
            let start = Instant::now();
            let delta = matcher.process(&self.wm, &batch);
            report.match_time += start.elapsed();
            self.commit_batch(&batch);
            report.cycles += 1;
            report.wme_changes += batch.len() as u64;
            report.conflict_adds += delta.added.len() as u64;
            report.conflict_removes += delta.removed.len() as u64;
        }
        report.final_wm_size = self.wm.len();
        report
    }
}

/// Runs the sequential Rete matcher over `cycles` batches with tracing
/// enabled (setup excluded) and returns the trace plus aggregate match
/// statistics — the input the `psm-sim` simulator replays.
pub fn capture_trace(
    workload: &GeneratedWorkload,
    cycles: u64,
    seed: u64,
) -> Result<(Trace, MatchStats), ops5::Error> {
    let (trace, stats, _net) =
        capture_trace_with(workload, cycles, seed, rete::CompileOptions::default())?;
    Ok((trace, stats))
}

/// Like [`capture_trace`] but with explicit compile options, also
/// returning the compiled network. Per-production cost attribution in
/// the simulator's machine models needs an *unshared* network
/// (`CompileOptions { share: false }`).
pub fn capture_trace_with(
    workload: &GeneratedWorkload,
    cycles: u64,
    seed: u64,
    options: rete::CompileOptions,
) -> Result<(Trace, MatchStats, std::sync::Arc<rete::Network>), ops5::Error> {
    let mut matcher = ReteMatcher::compile_with(&workload.program, options)?;
    let mut driver = WorkloadDriver::new(workload.clone(), seed);
    driver.init(&mut matcher);
    matcher.enable_tracing();
    let baseline = matcher.stats();
    driver.run_cycles(&mut matcher, cycles);
    let trace = matcher.take_trace();
    let mut stats = matcher.stats();
    // Report only the traced portion of the work.
    stats.changes -= baseline.changes;
    stats.constant_tests -= baseline.constant_tests;
    let network = std::sync::Arc::clone(matcher.network());
    Ok((trace, stats, network))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;
    use baselinesless::DummyCountingMatcher;

    /// A matcher that only counts calls — validates driver mechanics
    /// without a real match algorithm. (Named module avoids a dependency
    /// on the `baselines` crate, which would be circular for dev-deps.)
    mod baselinesless {
        use ops5::{MatchDelta, Matcher, WmeId, WorkingMemory};

        #[derive(Debug, Default)]
        pub struct DummyCountingMatcher {
            pub adds: u64,
            pub removes: u64,
        }

        impl Matcher for DummyCountingMatcher {
            fn add_wme(&mut self, _wm: &WorkingMemory, _id: WmeId) -> MatchDelta {
                self.adds += 1;
                MatchDelta::new()
            }
            fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
                assert!(
                    wm.get(id).is_some(),
                    "contract: removed WME still resolvable during match"
                );
                self.removes += 1;
                MatchDelta::new()
            }
            fn algorithm_name(&self) -> &'static str {
                "dummy"
            }
        }
    }

    fn small_workload() -> GeneratedWorkload {
        GeneratedWorkload::generate(WorkloadSpec {
            productions: 30,
            wm_size: 50,
            ..WorkloadSpec::default()
        })
        .unwrap()
    }

    #[test]
    fn driver_counts_and_contract() {
        let w = small_workload();
        let mut m = DummyCountingMatcher::default();
        let mut d = WorkloadDriver::new(w, 7);
        d.init(&mut m);
        assert_eq!(m.adds, 50);
        let report = d.run_cycles(&mut m, 20);
        assert_eq!(report.cycles, 20);
        assert_eq!(report.wme_changes, m.adds + m.removes - 50);
        assert!(report.changes_per_cycle() >= 1.0);
        assert_eq!(report.final_wm_size, d.working_memory().len());
    }

    #[test]
    fn batches_shrink_and_grow_wm_consistently() {
        let w = small_workload();
        let mut m = DummyCountingMatcher::default();
        let mut d = WorkloadDriver::new(w, 3);
        d.init(&mut m);
        let before = d.working_memory().len();
        let batch = d.next_batch();
        let adds = batch.iter().filter(|c| c.is_add()).count();
        let removes = batch.len() - adds;
        // Adds are already inserted; removes still present.
        assert_eq!(d.working_memory().len(), before + adds);
        d.commit_batch(&batch);
        assert_eq!(d.working_memory().len(), before + adds - removes);
    }

    #[test]
    fn capture_trace_produces_cycles() {
        let w = small_workload();
        let (trace, stats) = capture_trace(&w, 15, 99).unwrap();
        assert_eq!(trace.cycles.len(), 15);
        assert!(trace.total_changes() >= 15);
        assert!(stats.changes as usize == trace.total_changes());
        assert!(trace.total_activations() > 0);
        // Affected productions are recorded for every change.
        let any_affected = trace
            .cycles
            .iter()
            .flat_map(|c| &c.changes)
            .any(|c| !c.affected_productions.is_empty());
        assert!(any_affected);
    }

    #[test]
    fn captured_traces_are_well_formed() {
        use rete::ActivationKind;
        let w = small_workload();
        let (trace, _) = capture_trace(&w, 25, 13).unwrap();
        for cycle in &trace.cycles {
            assert!(!cycle.changes.is_empty());
            for change in &cycle.changes {
                // The first activation of every change is the constant
                // test; all parents precede their children.
                assert_eq!(
                    change.activations.first().map(|a| a.kind),
                    Some(ActivationKind::ConstantTest)
                );
                for (i, act) in change.activations.iter().enumerate() {
                    assert_eq!(act.id as usize, i, "ids are dense");
                    if let Some(p) = act.parent {
                        assert!((p as usize) < i, "parent precedes child");
                        // Memory updates and terminals never spawn from
                        // terminals.
                        assert_ne!(
                            change.activations[p as usize].kind,
                            ActivationKind::Terminal
                        );
                    } else {
                        assert_eq!(act.kind, ActivationKind::ConstantTest);
                    }
                }
            }
        }
    }

    #[test]
    fn driver_is_deterministic_per_seed() {
        let w = small_workload();
        let mut m1 = DummyCountingMatcher::default();
        let mut d1 = WorkloadDriver::new(w.clone(), 11);
        d1.init(&mut m1);
        let r1 = d1.run_cycles(&mut m1, 10);
        let mut m2 = DummyCountingMatcher::default();
        let mut d2 = WorkloadDriver::new(w, 11);
        d2.init(&mut m2);
        let r2 = d2.run_cycles(&mut m2, 10);
        assert_eq!(r1.wme_changes, r2.wme_changes);
        assert_eq!(r1.final_wm_size, r2.final_wm_size);
    }
}
