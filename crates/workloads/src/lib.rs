//! # workloads — production systems to measure
//!
//! The paper's measurements come from six large OPS5 systems built at
//! CMU (VT, ILOG, MUD, DAA, R1-Soar, Eight-Puzzle-Soar). Those programs
//! and their traces are not available, so this crate provides the
//! substitution documented in `DESIGN.md`:
//!
//! * [`generator`] — a parameterized synthetic production-system
//!   generator whose knobs control exactly the quantities the paper's
//!   conclusions rest on: affected productions per change (~30), working-
//!   memory turnover per cycle (< 0.5 %), changes per firing, and the
//!   skew of per-production processing cost.
//! * [`presets`] — six named parameter sets approximating the published
//!   characteristics of the six systems (plus "parallel firings"
//!   variants with larger change batches).
//! * [`driver`] — drives a matcher through recognize–act-shaped change
//!   batches and reports measured characteristics; also captures Rete
//!   node-activation traces for the `psm-sim` simulator.
//! * [`programs`] — small *real* OPS5 programs (monkey-and-bananas,
//!   transitive closure, rule-based sorting) that run end-to-end through
//!   the interpreter, used by the examples and integration tests.
//! * [`fixtures`] — deliberately defective programs, one per
//!   `psm-analyze` lint code, gating the analyzer in CI.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod driver;
pub mod fixtures;
pub mod generator;
pub mod presets;
pub mod programs;
pub mod report;

pub use driver::{capture_trace, capture_trace_with, DriverReport, WorkloadDriver};
pub use fixtures::DefectFixture;
pub use generator::{GeneratedWorkload, WorkloadSpec};
pub use presets::{preset, preset_names, Preset};
pub use report::Characteristics;
