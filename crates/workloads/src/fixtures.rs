//! Seeded-defect fixture programs for the static analyzer.
//!
//! Each fixture is a tiny program carrying exactly one deliberate defect
//! and the `psm-analyze` lint code expected to flag it. The CI gate runs
//! `psmlint --fixtures` over this set and fails unless every fixture
//! triggers its expected code — a regression net for the analyzer itself.
//!
//! Every fixture is OPS5 source text. Defects the *strict* parser
//! rejects (PSM001's unbound RHS variable, PSM010's undeclared
//! attribute) round-trip through the lenient parser instead — the same
//! mode `psmlint` uses, which keeps the defect in the AST so the lints
//! can report it.

use ops5::Program;

/// A defect-seeded program and the lint code expected to fire on it.
pub struct DefectFixture {
    /// Fixture name (stable, used in reports).
    pub name: &'static str,
    /// The `psm-analyze` lint code that must be reported.
    pub expected_code: &'static str,
    /// Builds the program (parsing text or constructing the AST).
    pub build: fn() -> Program,
}

impl std::fmt::Debug for DefectFixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DefectFixture")
            .field("name", &self.name)
            .field("expected_code", &self.expected_code)
            .finish()
    }
}

fn parse(src: &str) -> Program {
    ops5::parse_program(src).expect("fixture source parses")
}

fn parse_lenient(src: &str) -> Program {
    ops5::parse_program_lenient(src).expect("fixture source parses leniently")
}

/// PSM001: an RHS `make` reads a variable no positive CE binds. The
/// strict parser rejects this in text, exactly as real OPS5 did, so the
/// fixture parses leniently — the variable is interned with an empty
/// binding site, the shape a buggy rule *generator* would produce.
fn unbound_rhs_var() -> Program {
    parse_lenient("(p unbound-rhs (a ^x 1) --> (make out ^x <v>))")
}

fn unbound_pred_var() -> Program {
    // `> <v>` before any binding occurrence of <v>: parses, but the
    // network compiler rejects it. The lint catches it without compiling.
    parse("(p unbound-pred (a ^x > <v>) --> (halt))")
}

fn contradictory_ce() -> Program {
    // x > 5 and x < 3 can never hold together.
    parse("(p contradiction (a ^x { > 5 < 3 }) --> (halt))")
}

fn unsatisfiable_join() -> Program {
    // <v> is pinned to 1 in the first CE and to 2 in the second.
    parse("(p bad-join (a ^x { <v> 1 }) (b ^x { <v> 2 }) --> (halt))")
}

fn dead_negation() -> Program {
    // The negated CE can never match, so the negation is a no-op.
    parse("(p dead-neg (a ^x <v>) - (b ^y { > 5 < 3 }) --> (halt))")
}

fn never_fireable() -> Program {
    // The negated pattern is implied by the first CE: whenever the
    // positive CE matches some WME, that same WME satisfies the negated
    // CE, so the negation count is never zero.
    parse("(p never-fires (a ^x <v>) - (a ^x <v>) --> (halt))")
}

fn duplicate_lhs() -> Program {
    parse(
        "(p first (a ^x <v>) (b ^y <v>) --> (halt))\n\
         (p second (a ^x <q>) (b ^y <q>) --> (remove 1))",
    )
}

fn subsumed_production() -> Program {
    // `broad`'s LHS is a prefix of `narrow`'s: broad fires whenever
    // narrow's prefix matches.
    parse(
        "(p broad (a ^x <v>) (b ^y <v>) --> (halt))\n\
         (p narrow (a ^x <v>) (b ^y <v>) (c ^z <v>) --> (halt))",
    )
}

fn unused_variable() -> Program {
    // <u> is bound at a.y and never read again.
    parse("(p unused (a ^x <v> ^y <u>) (b ^x <v>) --> (halt))")
}

/// PSM010: the strict parser rejects an attribute a `literalize` never
/// declared, so the fixture parses leniently — the mode `psmlint` uses so
/// it can report *every* undeclared attribute instead of halting at one.
fn undeclared_attribute() -> Program {
    parse_lenient(
        "(literalize a x)\n\
         (p undeclared (a ^x 1 ^y 2) --> (make a ^z 3))",
    )
}

fn conflicting_writers() -> Program {
    // Both rules retract the same `slot` WMEs at identical specificity:
    // conflict resolution cannot order them, so serial and parallel
    // schedules may diverge.
    parse(
        "(p racer-one (slot ^id 1) --> (modify 1 ^id 2))\n\
         (p racer-two (slot ^id < 2) --> (remove 1))",
    )
}

fn self_retrigger() -> Program {
    // The modify re-asserts the WME with ^busy yes intact; the rewritten
    // WME gets a fresh time tag and re-matches the LHS forever.
    parse("(p spinner (counter ^busy yes) --> (modify 1 ^tick 1))")
}

fn dead_rule() -> Program {
    // `item` is program-created, but only ever with ^state raw: no RHS
    // write can satisfy the consumer's ^state cooked test.
    parse(
        "(p producer (src ^go yes) --> (make item ^state raw))\n\
         (p dead-consumer (item ^state cooked) --> (halt))",
    )
}

fn shadowed_rule() -> Program {
    // Whenever `precise` matches, `broad-shadowed` matches too and loses
    // LEX specificity ordering.
    parse(
        "(p broad-shadowed (task ^kind build) --> (make log ^of broad))\n\
         (p precise (task ^kind build ^urgent yes) --> (make log ^of precise))",
    )
}

fn negated_retract() -> Program {
    // The rule removes a `junk` WME while also requiring a `junk`
    // pattern absent: the retract overlaps the negation's guarantee.
    parse(
        "(p sweeper (goal ^act clean) (junk ^size 3) - (junk ^kind live) \
         --> (remove 2))",
    )
}

/// All seeded-defect fixtures, one per lint code.
pub fn all() -> Vec<DefectFixture> {
    vec![
        DefectFixture {
            name: "unbound-rhs-var",
            expected_code: "PSM001",
            build: unbound_rhs_var,
        },
        DefectFixture {
            name: "unbound-pred-var",
            expected_code: "PSM002",
            build: unbound_pred_var,
        },
        DefectFixture {
            name: "contradictory-ce",
            expected_code: "PSM003",
            build: contradictory_ce,
        },
        DefectFixture {
            name: "unsatisfiable-join",
            expected_code: "PSM004",
            build: unsatisfiable_join,
        },
        DefectFixture {
            name: "dead-negation",
            expected_code: "PSM005",
            build: dead_negation,
        },
        DefectFixture {
            name: "never-fireable",
            expected_code: "PSM006",
            build: never_fireable,
        },
        DefectFixture {
            name: "duplicate-lhs",
            expected_code: "PSM007",
            build: duplicate_lhs,
        },
        DefectFixture {
            name: "subsumed-production",
            expected_code: "PSM008",
            build: subsumed_production,
        },
        DefectFixture {
            name: "unused-variable",
            expected_code: "PSM009",
            build: unused_variable,
        },
        DefectFixture {
            name: "undeclared-attribute",
            expected_code: "PSM010",
            build: undeclared_attribute,
        },
        DefectFixture {
            name: "conflicting-writers",
            expected_code: "PSM011",
            build: conflicting_writers,
        },
        DefectFixture {
            name: "self-retrigger",
            expected_code: "PSM012",
            build: self_retrigger,
        },
        DefectFixture {
            name: "dead-rule",
            expected_code: "PSM013",
            build: dead_rule,
        },
        DefectFixture {
            name: "shadowed-rule",
            expected_code: "PSM014",
            build: shadowed_rule,
        },
        DefectFixture {
            name: "negated-retract",
            expected_code: "PSM015",
            build: negated_retract,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_cover_distinct_codes() {
        let fixtures = all();
        let mut codes: Vec<_> = fixtures.iter().map(|f| f.expected_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), fixtures.len(), "one fixture per code");
        for fx in &fixtures {
            let program = (fx.build)();
            assert!(!program.productions.is_empty(), "{} is empty", fx.name);
        }
    }

    #[test]
    fn text_fixtures_pass_the_parser_but_psm002_fails_to_compile() {
        // PSM002's defect is exactly what Network::compile rejects; the
        // fixture documents that the lint sees it *before* compilation.
        let program = (all()[1].build)();
        assert!(rete::Network::compile(&program).is_err());
    }

    #[test]
    fn unbound_rhs_fixture_needs_the_lenient_parser() {
        let src = "(p r (a ^x 1) --> (make out ^x <v>))";
        assert!(
            ops5::parse_program(src).is_err(),
            "strict parser must reject unbound RHS vars"
        );
        assert!(ops5::parse_program_lenient(src).is_ok());
    }

    #[test]
    fn undeclared_attribute_fixture_needs_the_lenient_parser() {
        let src = "(literalize a x)\n(p undeclared (a ^x 1 ^y 2) --> (make a ^z 3))";
        assert!(
            ops5::parse_program(src).is_err(),
            "strict parser rejects undeclared attributes"
        );
        assert!(ops5::parse_program_lenient(src).is_ok());
    }
}
